"""Property-based tests (hypothesis) on core invariants.

Covers: codec roundtrips over arbitrary integer columns, order/equality
preservation of direct codes, packing, window scheduling conservation, and
quantization losslessness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.compression.bitstream import delta_codeword_ints, delta_codeword_invert
from repro.errors import CodecNotApplicable
from repro.stream.quantize import dequantize, quantize
from repro.stream.window import WindowScheduler, WindowSpec
from repro.types import pack_int_array, unpack_int_array

# columns of arbitrary int64 values (bounded to keep codecs applicable)
int_columns = st.lists(
    st.integers(min_value=-(1 << 40), max_value=1 << 40), min_size=1, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.int64))

nonneg_columns = st.lists(
    st.integers(min_value=0, max_value=(1 << 31) - 2), min_size=1, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.int64))


def _roundtrip(codec_name, values):
    codec = get_codec(codec_name)
    try:
        cc = codec.compress(values)
    except CodecNotApplicable:
        return  # hypothesis found an inapplicable column: fine
    np.testing.assert_array_equal(codec.decompress(cc), values)


@settings(max_examples=60, deadline=None)
@given(values=int_columns)
@pytest.mark.parametrize(
    "codec_name",
    ["identity", "ns", "nsv", "bd", "rle", "dict", "bitmap", "gzip"],
)
def test_roundtrip_any_ints(codec_name, values):
    _roundtrip(codec_name, values)


@settings(max_examples=60, deadline=None)
@given(values=nonneg_columns)
@pytest.mark.parametrize("codec_name", ["eg", "ed"])
def test_roundtrip_nonneg(codec_name, values):
    _roundtrip(codec_name, values)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=1 << 28), min_size=2, max_size=100
    )
)
@pytest.mark.parametrize("codec_name", ["ns", "bd", "dict", "ed", "eg"])
def test_direct_codes_preserve_order(codec_name, values):
    values = np.asarray(values, dtype=np.int64)
    codec = get_codec(codec_name)
    cc = codec.compress(values)
    codes = codec.direct_codes(cc)
    lt_values = values[:, None] < values[None, :]
    lt_codes = codes[:, None] < codes[None, :]
    assert (lt_values == lt_codes).all()


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=1, max_value=(1 << 52) - 1), min_size=1, max_size=64
    )
)
def test_delta_codeword_bijection(values):
    arr = np.asarray(values, dtype=np.int64)
    codes, _ = delta_codeword_ints(arr)
    np.testing.assert_array_equal(delta_codeword_invert(codes), arr)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=50),
    width=st.integers(min_value=1, max_value=8),
)
def test_packing_roundtrip_property(values, width):
    arr = np.asarray(values, dtype=np.int64)
    packed = pack_int_array(arr, width)
    np.testing.assert_array_equal(unpack_int_array(packed, width, arr.size), arr)
    assert packed.size == arr.size * width


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=50),
    slide=st.integers(min_value=1, max_value=60),
    batch_sizes=st.lists(
        st.integers(min_value=0, max_value=120), min_size=1, max_size=12
    ),
)
def test_window_scheduler_matches_oracle(size, slide, batch_sizes):
    """Feeding batch-by-batch must produce exactly the windows a single
    whole-stream pass would, with consistent merged coordinates."""
    scheduler = WindowScheduler(WindowSpec.count(size, slide))
    total = sum(batch_sizes)
    expected = [(s, s + size) for s in range(0, max(total - size + 1, 0), slide)]

    produced = []
    consumed = 0  # global index of merged[0] for the current feed
    for n in batch_sizes:
        layout = scheduler.feed(n)
        merged_origin = consumed - layout.carry
        for (s, e) in layout.windows:
            produced.append((merged_origin + s, merged_origin + e))
        consumed += n
        # retained tail + skip bookkeeping must never lose tuples
        assert 0 <= layout.retain_start <= layout.carry + n
    assert produced == expected


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
    decimals=st.integers(min_value=0, max_value=4),
)
def test_quantize_roundtrip(values, decimals):
    arr = np.round(np.asarray(values, dtype=np.float64), decimals)
    stored = quantize(arr, decimals)
    np.testing.assert_allclose(
        dequantize(stored, decimals), arr, atol=10.0 ** (-decimals) / 2
    )


@settings(max_examples=40, deadline=None)
@given(values=int_columns)
def test_compressed_nbytes_accounting(values):
    """ratio * nbytes must reconstruct the uncompressed size exactly."""
    for name in ("ns", "bd", "dict"):
        codec = get_codec(name)
        cc = codec.compress(values)
        assert cc.ratio == pytest.approx((values.size * 8) / cc.nbytes)
