"""Tests for the AST invariant analyzer (``python -m repro lint``).

Each rule gets must-flag and must-pass fixture snippets laid out in a
temporary project tree mirroring the real checkout (the rules are
path-conditioned, so fixture files live at the same relative paths the
contracts apply to).  On top of the per-rule cases: waiver-comment
handling, baseline round-trips, stale-entry detection, CLI exit codes
(0 clean / 1 findings / 2 usage) and a self-check that the real
repository is clean — the same invocation CI gates on.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    load_project,
    run_analysis,
    write_baseline,
)
from repro.analysis.project import parse_waiver_tags
from repro.cli import main
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parents[1]

MINIMAL = {"src/repro/placeholder.py": "X = 1\n"}


def make_project(tmp_path, files):
    """Write ``files`` (relpath -> source) under a tmp project root."""
    merged = dict(MINIMAL)
    merged.update(files)
    for relpath, text in merged.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


def run(tmp_path, files, **kwargs):
    return run_analysis(make_project(tmp_path, files), **kwargs)


def rules_of(report):
    return sorted({f.rule for f in report.findings})


# ----- CSD001 decode-discipline ----------------------------------------


class TestDecodeDiscipline:
    def test_flags_decode_on_direct_path(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(column, x):\n"
                    "    return column.decode(x)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert rules_of(report) == ["CSD001"]
        assert report.findings[0].line == 2

    def test_flags_codec_decompress_in_server(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/core/server.py": (
                    "def f(codec, cc):\n"
                    "    return codec.decompress(cc)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert rules_of(report) == ["CSD001"]

    def test_cache_receiver_is_sanctioned(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/core/server.py": (
                    "def f(self, codec, cc):\n"
                    "    return self.cache.decompress(codec, cc)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean

    def test_waiver_comment_silences(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(column, x):\n"
                    "    return column.decode(x)"
                    "  # lint: force-decode (one value per window)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean
        assert len(report.waived) == 1

    def test_outside_direct_path_not_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/stream/foo.py": (
                    "def f(column, x):\n"
                    "    return column.decode(x)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean


# ----- CSD002 scalar-parity --------------------------------------------

GOOD_KERNELS = '''\
import scalar_ref


def using_scalar_reference():
    return False


def rle_runs(values):
    if using_scalar_reference():
        return scalar_ref.rle_runs(values)
    return values
'''

GOOD_SCALAR = "def rle_runs(values):\n    return values\n"
GOOD_TESTS = (
    "from repro.compression import kernels, scalar_ref\n\n\n"
    "def test_pair():\n"
    "    assert kernels.rle_runs([]) == scalar_ref.rle_runs([])\n"
)


def scalar_parity_project(
    kernels=GOOD_KERNELS, scalar=GOOD_SCALAR, tests=GOOD_TESTS
):
    return {
        "src/repro/compression/kernels.py": kernels,
        "src/repro/compression/scalar_ref.py": scalar,
        "tests/test_vectorized_kernels.py": tests,
    }


class TestScalarParity:
    def test_clean_pair_passes(self, tmp_path):
        report = run(tmp_path, scalar_parity_project(), rule_ids=["CSD002"])
        assert report.clean

    def test_missing_dispatch_flagged(self, tmp_path):
        kernels = GOOD_KERNELS + "\n\ndef lonely(values):\n    return values\n"
        report = run(
            tmp_path, scalar_parity_project(kernels=kernels),
            rule_ids=["CSD002"],
        )
        assert rules_of(report) == ["CSD002"]
        assert "no" in report.findings[0].message
        assert "lonely" in report.findings[0].message

    def test_dispatch_to_missing_oracle_flagged(self, tmp_path):
        kernels = GOOD_KERNELS.replace(
            "scalar_ref.rle_runs", "scalar_ref.gone"
        )
        report = run(
            tmp_path, scalar_parity_project(kernels=kernels),
            rule_ids=["CSD002"],
        )
        assert rules_of(report) == ["CSD002"]
        assert "does not exist" in report.findings[0].message

    def test_pair_missing_from_tests_flagged(self, tmp_path):
        report = run(
            tmp_path,
            scalar_parity_project(tests="def test_nothing():\n    pass\n"),
            rule_ids=["CSD002"],
        )
        assert rules_of(report) == ["CSD002"]
        assert "not exercised" in report.findings[0].message

    def test_waiver_on_def_line_above(self, tmp_path):
        kernels = GOOD_KERNELS + (
            "\n\n# lint: scalar-parity (helper shared by both modes)\n"
            "def helper(values):\n    return values\n"
        )
        report = run(
            tmp_path, scalar_parity_project(kernels=kernels),
            rule_ids=["CSD002"],
        )
        assert report.clean
        assert len(report.waived) == 1


# ----- CSD003 determinism ----------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n\nT = time.time()\n",
            "import time as t\n\nT = t.time_ns()\n",
            "from datetime import datetime\n\nT = datetime.now()\n",
            "import datetime\n\nT = datetime.datetime.utcnow()\n",
            "import random\n\nX = random.random()\n",
            "from random import randint\n",
            "import numpy as np\n\nR = np.random.default_rng()\n",
            "import numpy as np\n\nnp.random.seed(0)\n",
            "import numpy\n\nX = numpy.random.randint(3)\n",
        ],
    )
    def test_flags(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/core/foo.py": snippet},
            rule_ids=["CSD003"],
        )
        assert rules_of(report) == ["CSD003"], snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n\nT = time.perf_counter()\n",
            "import numpy as np\n\nR = np.random.default_rng(42)\n",
            "import numpy as np\n\nR = np.random.default_rng(seed=7)\n",
            "def f(rng):\n    return rng.integers(0, 10)\n",
        ],
    )
    def test_passes(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/core/foo.py": snippet},
            rule_ids=["CSD003"],
        )
        assert report.clean, snippet

    def test_allowlisted_files_exempt(self, tmp_path):
        files = {
            "src/repro/cli.py": "import time\n\nT = time.time()\n",
            "src/repro/bench/runner.py": (
                "import datetime\n\nT = datetime.datetime.now()\n"
            ),
        }
        report = run(tmp_path, files, rule_ids=["CSD003"])
        assert report.clean

    def test_tests_out_of_scope(self, tmp_path):
        report = run(
            tmp_path,
            {"tests/test_foo.py": "import time\n\nT = time.time()\n"},
            rule_ids=["CSD003"],
        )
        assert report.clean


# ----- CSD004 exception-taxonomy ---------------------------------------

ERRORS_MODULE = '''\
class ReproError(Exception):
    pass


class CodecError(ReproError):
    pass


class CodecNotApplicable(CodecError):
    pass
'''


class TestExceptionTaxonomy:
    def test_wire_raising_valueerror_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/wire/fmt.py": (
                    "def f():\n    raise ValueError('nope')\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]
        assert "ValueError" in report.findings[0].message

    def test_wire_subclass_allowed(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/wire/fmt.py": (
                    "class WireFormatError(Exception):\n    pass\n\n\n"
                    "class FrameError(WireFormatError):\n    pass\n\n\n"
                    "def f():\n    raise FrameError('bad frame')\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_compression_taxonomy_via_errors_module(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/errors.py": ERRORS_MODULE,
                "src/repro/compression/codec.py": (
                    "def f():\n    raise CodecNotApplicable('negatives')\n"
                ),
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_compression_raising_outside_taxonomy_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/errors.py": ERRORS_MODULE,
                "src/repro/compression/codec.py": (
                    "def f():\n    raise RuntimeError('oops')\n"
                ),
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]

    def test_reraise_variable_allowed(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/wire/fmt.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except KeyError as exc:\n"
                    "        raise exc\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_bare_except_flagged_anywhere(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/stream/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except:\n"
                    "        raise\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]
        assert "bare" in report.findings[0].message

    def test_swallowed_exception_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "benchmarks/helper.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except Exception:\n"
                    "        pass\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]
        assert "swallows" in report.findings[0].message

    def test_handled_broad_except_allowed(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/oracle/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        return g()\n"
                    "    except Exception:\n"
                    "        return None\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_waiver_silences_swallow(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/oracle/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except Exception:"
                    "  # lint: broad-except (best effort)\n"
                    "        pass\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean
        assert len(report.waived) == 1


# ----- CSD005 virtual-time ---------------------------------------------


class TestVirtualTime:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n",
            "import datetime\n",
            "from time import sleep\n",
            "from datetime import datetime\n",
        ],
    )
    def test_flags_wall_clock_imports(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/net/chan.py": snippet},
            rule_ids=["CSD005"],
        )
        assert rules_of(report) == ["CSD005"], snippet

    def test_math_import_fine(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/net/chan.py": "import math\nimport struct\n"},
            rule_ids=["CSD005"],
        )
        assert report.clean

    def test_time_outside_net_is_not_this_rules_business(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/core/foo.py": "import time\n"},
            rule_ids=["CSD005"],
        )
        assert report.clean


# ----- CSD006 bench-registration ---------------------------------------

GOOD_BENCH = '''\
from repro.bench import register


def run_bench():
    return 1


SPEC = register(name="demo", suite="paper", fn=run_bench)
'''


class TestBenchRegistration:
    def test_registered_script_passes(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": GOOD_BENCH},
            rule_ids=["CSD006"],
        )
        assert report.clean

    def test_missing_spec_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": "def run_bench():\n    return 1\n"},
            rule_ids=["CSD006"],
        )
        assert rules_of(report) == ["CSD006"]
        assert "SPEC" in report.findings[0].message

    def test_spec_not_a_register_call_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": "SPEC = 3\n"},
            rule_ids=["CSD006"],
        )
        assert rules_of(report) == ["CSD006"]

    def test_spec_missing_suite_keyword_flagged(self, tmp_path):
        bench = GOOD_BENCH.replace(', suite="paper"', "")
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": bench},
            rule_ids=["CSD006"],
        )
        assert rules_of(report) == ["CSD006"]
        assert "suite" in report.findings[0].message

    def test_non_bench_files_ignored(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/common.py": "HELPER = True\n"},
            rule_ids=["CSD006"],
        )
        assert report.clean


# ----- CSD007 supervised-recovery ---------------------------------------


class TestSupervision:
    @pytest.mark.parametrize(
        "handler",
        [
            "except ReproError:",
            "except CodecError as exc:",
            "except WireFormatError:",
            "except Exception:",
            "except (ValueError, TransportError):",
            "except:",
        ],
    )
    def test_flags_engine_handlers_in_serve(self, tmp_path, handler):
        report = run(
            tmp_path,
            {
                "src/repro/serve/session.py": (
                    "def f(session):\n"
                    "    try:\n"
                    "        session.step()\n"
                    f"    {handler}\n"
                    "        return None\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert rules_of(report) == ["CSD007"], handler

    def test_supervised_waiver_passes(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/serve/supervisor.py": (
                    "def f(runner):\n"
                    "    try:\n"
                    "        return runner.step()\n"
                    "    except ReproError as exc:  "
                    "# lint: supervised the one recovery point\n"
                    "        return contain(runner, exc)\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert report.clean

    def test_serve_error_handler_is_fine(self, tmp_path):
        # ServeError marks serving-layer misuse, not an engine fault
        report = run(
            tmp_path,
            {
                "src/repro/serve/admission.py": (
                    "def f(x):\n"
                    "    try:\n"
                    "        return parse(x)\n"
                    "    except (ServeError, KeyError):\n"
                    "        return None\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert report.clean

    @pytest.mark.parametrize(
        "snippet", ["import time\n", "from datetime import datetime\n"]
    )
    def test_flags_wall_clock_imports(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/serve/clock.py": snippet},
            rule_ids=["CSD007"],
        )
        assert rules_of(report) == ["CSD007"], snippet

    def test_handlers_outside_serve_not_this_rules_business(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/core/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        return g()\n"
                    "    except Exception:\n"
                    "        raise\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert report.clean


# ----- CSD008 optimizer-purity ------------------------------------------

PURE_RULES = '''\
class RewriteRule:
    def apply(self, root, ctx):
        return root, None


class PruneRule(RewriteRule):
    def rewrite(self, root, ctx):
        return root


class FuseRule(RewriteRule):
    def rewrite(self, root, ctx):
        return root


RULES = (PruneRule(), FuseRule())
'''


class TestOptimizerPurity:
    def test_pure_rules_module_is_clean(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": PURE_RULES},
            rule_ids=["CSD008"],
        )
        assert report.clean

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n",
            "import datetime\n",
            "import random\n",
            "from time import perf_counter\n",
            "from random import shuffle\n",
        ],
    )
    def test_flags_wall_clock_and_entropy_imports(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/optimizer/cost.py": snippet},
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"], snippet

    @pytest.mark.parametrize(
        "call", ["decompress", "decode", "decode_codes", "decode_all"]
    )
    def test_flags_decode_calls_at_plan_time(self, tmp_path, call):
        report = run(
            tmp_path,
            {
                "src/repro/optimizer/rules.py": (
                    f"def rewrite(col):\n    return col.{call}()\n"
                )
            },
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"], call

    def test_flags_unregistered_rule_subclass(self, tmp_path):
        source = PURE_RULES + (
            "\n\nclass SneakyRule(RewriteRule):\n"
            "    def rewrite(self, root, ctx):\n"
            "        return root\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"]
        assert "SneakyRule" in report.findings[0].message

    def test_flags_subclasses_with_no_rules_table(self, tmp_path):
        source = (
            "class RewriteRule:\n    pass\n\n"
            "class LoneRule(RewriteRule):\n    pass\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"]
        assert "no static RULES table" in report.findings[0].message

    def test_flags_computed_rules_table(self, tmp_path):
        source = (
            "class RewriteRule:\n    pass\n\n"
            "class PruneRule(RewriteRule):\n    pass\n\n"
            "RULES = tuple([PruneRule()])\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert "CSD008" in rules_of(report)
        assert any(
            "tuple literal" in f.message for f in report.findings
        )

    def test_flags_non_literal_table_entry(self, tmp_path):
        source = (
            "class RewriteRule:\n    pass\n\n"
            "class PruneRule(RewriteRule):\n    pass\n\n"
            "_instance = PruneRule()\n"
            "RULES = (_instance,)\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert "CSD008" in rules_of(report)

    def test_decode_elsewhere_is_not_this_rules_business(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/stream/feed.py": (
                    "def f(col):\n    return col.decode()\n"
                )
            },
            rule_ids=["CSD008"],
        )
        assert report.clean


# ----- waiver parsing ---------------------------------------------------


class TestWaiverParsing:
    def test_single_tag(self):
        assert parse_waiver_tags("# lint: force-decode") == {"force-decode"}

    def test_tags_with_justification(self):
        tags = parse_waiver_tags(
            "# lint: broad-except, force-decode — shrink must not crash"
        )
        assert tags == {"broad-except", "force-decode"}

    def test_disable_tag(self):
        assert parse_waiver_tags("# lint: disable=CSD003") == {
            "disable=CSD003"
        }

    def test_not_a_waiver(self):
        assert parse_waiver_tags("# regular comment") == set()

    def test_disable_silences_rule(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(c, x):\n"
                    "    return c.decode(x)  # lint: disable=CSD001\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean

    def test_unrelated_tag_does_not_silence(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(c, x):\n"
                    "    return c.decode(x)  # lint: broad-except\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert not report.clean


# ----- baseline ---------------------------------------------------------

VIOLATION = {
    "src/repro/operators/foo.py": (
        "def f(column, x):\n    return column.decode(x)\n"
    )
}


class TestBaseline:
    def test_round_trip(self, tmp_path):
        root = make_project(tmp_path, VIOLATION)
        report = run_analysis(root, rule_ids=["CSD001"])
        assert len(report.findings) == 1
        baseline = tmp_path / "lint-baseline.json"
        write_baseline(baseline, report.findings)
        again = run_analysis(root, rule_ids=["CSD001"])
        assert again.clean
        assert len(again.baselined) == 1

    def test_baseline_is_line_insensitive(self, tmp_path):
        root = make_project(tmp_path, VIOLATION)
        write_baseline(
            tmp_path / "lint-baseline.json",
            run_analysis(root, rule_ids=["CSD001"]).findings,
        )
        path = root / "src/repro/operators/foo.py"
        path.write_text("import numpy as np\n\n\n" + path.read_text())
        report = run_analysis(root, rule_ids=["CSD001"])
        assert report.clean
        assert len(report.baselined) == 1

    def test_stale_entry_is_a_finding(self, tmp_path):
        root = make_project(tmp_path, VIOLATION)
        write_baseline(
            tmp_path / "lint-baseline.json",
            run_analysis(root, rule_ids=["CSD001"]).findings,
        )
        (root / "src/repro/operators/foo.py").write_text("X = 1\n")
        report = run_analysis(root, rule_ids=["CSD001"])
        assert not report.clean
        assert report.findings[0].rule == "CSD000"
        assert "stale" in report.findings[0].message
        assert report.stale_entries

    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        root = make_project(tmp_path, {})
        (root / "lint-baseline.json").write_text("{not json")
        with pytest.raises(AnalysisError):
            run_analysis(root)

    def test_missing_baseline_is_empty(self, tmp_path):
        root = make_project(tmp_path, {})
        assert run_analysis(root, rule_ids=["CSD001"]).clean


# ----- engine / misc ----------------------------------------------------


class TestEngine:
    def test_parse_error_is_a_finding(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/core/broken.py": "def f(:\n"},
            rule_ids=["CSD001"],
        )
        assert not report.clean
        assert report.findings[0].rule == "CSD000"
        assert "parse" in report.findings[0].message

    def test_unknown_rule_raises(self, tmp_path):
        root = make_project(tmp_path, {})
        with pytest.raises(AnalysisError):
            run_analysis(root, rule_ids=["CSD999"])

    def test_pycache_ignored(self, tmp_path):
        root = make_project(
            tmp_path,
            {"src/repro/__pycache__/foo.py": "import time\ntime.time()\n"},
        )
        project = load_project(root)
        assert all("__pycache__" not in f.relpath for f in project.files)

    def test_empty_project_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_project(tmp_path)

    def test_json_doc_shape(self, tmp_path):
        report = run(tmp_path, VIOLATION, rule_ids=["CSD001"])
        doc = report.to_doc()
        assert doc["clean"] is False
        assert doc["findings"][0]["rule"] == "CSD001"
        assert json.loads(json.dumps(doc)) == doc


# ----- CLI --------------------------------------------------------------


class TestLintCLI:
    def test_exit_zero_on_clean_project(self, tmp_path, capsys):
        root = make_project(tmp_path, {})
        assert main(["lint", "--root", str(root)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = make_project(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "CSD001" in out
        assert "FAIL" in out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        root = make_project(tmp_path, {})
        assert main(["lint", "--root", str(root), "--rule", "CSD999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_single_rule_selection(self, tmp_path):
        root = make_project(
            tmp_path,
            dict(VIOLATION, **{"src/repro/net/chan.py": "import time\n"}),
        )
        assert main(["lint", "--root", str(root), "--rule", "CSD005"]) == 1

    def test_json_output(self, tmp_path, capsys):
        root = make_project(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "CSD001"

    def test_list_rules(self, tmp_path, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "CSD001", "CSD002", "CSD003", "CSD004", "CSD005", "CSD006",
            "CSD007", "CSD008", "CSD009", "CSD010", "CSD011", "CSD012",
        ):
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_project(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root), "--write-baseline"]) == 0
        assert (root / "lint-baseline.json").exists()
        assert main(["lint", "--root", str(root)]) == 0


# ----- the repository itself is clean -----------------------------------


class TestRepositoryContracts:
    """The same check CI runs: the real repo has zero new findings."""

    def test_repo_is_clean(self):
        report = run_analysis(REPO_ROOT)
        assert report.clean, "\n".join(report.format_lines())

    def test_all_twelve_rules_ran(self):
        report = run_analysis(REPO_ROOT)
        assert len(report.rules) >= 12

    def test_repo_baseline_stays_near_empty(self):
        baseline = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text()
        )
        # grandfathered findings need an inline-documented reason each;
        # keep the list from regrowing silently
        assert len(baseline["entries"]) <= 2
        for entry in baseline["entries"]:
            assert entry["reason"].strip()


# ----- CSD009-CSD012: interprocedural graph rules ------------------------


HELPER_DECODE = {
    # the operator itself never decodes; a one-hop helper does it on
    # its behalf -- CSD001's per-file scan cannot see this
    "src/repro/operators/filter2.py": (
        "from repro.util.expand import expand\n\n\n"
        "def scan(col):\n"
        "    return expand(col)\n"
    ),
    "src/repro/util/expand.py": (
        "def expand(col):\n"
        "    return col.codec.decode(col.payload)\n"
    ),
}


class TestDecodeTaint:
    def test_helper_hop_decode_flagged(self, tmp_path):
        report = run(tmp_path, HELPER_DECODE, rule_ids=["CSD009"])
        findings = [f for f in report.findings if f.rule == "CSD009"]
        assert len(findings) == 1
        assert findings[0].path == "src/repro/util/expand.py"
        # the witness chain from the entry point rides in the message
        assert "scan" in findings[0].message

    def test_csd001_misses_the_helper_hop(self, tmp_path):
        """The blind spot CSD009 exists to close."""
        report = run(tmp_path, HELPER_DECODE, rule_ids=["CSD001"])
        assert report.clean

    def test_cache_routed_helper_passes(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/filter2.py": (
                    "from repro.util.expand import expand\n\n\n"
                    "def scan(col, cache):\n"
                    "    return expand(col, cache)\n"
                ),
                "src/repro/util/expand.py": (
                    "def expand(col, cache):\n"
                    "    return cache.decompress(col)\n"
                ),
            },
            rule_ids=["CSD009"],
        )
        assert report.clean

    def test_codec_package_is_sanctioned(self, tmp_path):
        """Propagation cuts at the layer whose job is decoding."""
        report = run(
            tmp_path,
            {
                "src/repro/operators/filter2.py": (
                    "from repro.compression.rle import expand\n\n\n"
                    "def scan(col):\n"
                    "    return expand(col)\n"
                ),
                "src/repro/compression/rle.py": (
                    "def expand(col):\n"
                    "    return col.codec.decode(col.payload)\n"
                ),
            },
            rule_ids=["CSD009"],
        )
        assert report.clean

    def test_waiver_at_the_helper_site(self, tmp_path):
        files = dict(HELPER_DECODE)
        files["src/repro/util/expand.py"] = (
            "def expand(col):\n"
            "    # lint: force-decode bounded, one value\n"
            "    return col.codec.decode(col.payload)\n"
        )
        report = run(tmp_path, files, rule_ids=["CSD009"])
        assert report.clean
        assert report.waived


class TestWallClockEscape:
    def test_transitive_wall_clock_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/serve/loop.py": (
                    "from repro.util.pacing import pace\n\n\n"
                    "def tick(session):\n"
                    "    return pace(session)\n"
                ),
                "src/repro/util/pacing.py": (
                    "import time\n\n\n"
                    "def pace(session):\n"
                    "    return time.sleep(0.1)\n"
                ),
            },
            rule_ids=["CSD010"],
        )
        findings = [f for f in report.findings if f.rule == "CSD010"]
        assert len(findings) == 1
        assert findings[0].path == "src/repro/util/pacing.py"
        assert "tick" in findings[0].message

    def test_virtual_clock_helper_passes(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/serve/loop.py": (
                    "from repro.util.pacing import pace\n\n\n"
                    "def tick(session, clock):\n"
                    "    return pace(session, clock)\n"
                ),
                "src/repro/util/pacing.py": (
                    "def pace(session, clock):\n"
                    "    return clock.advance(1)\n"
                ),
            },
            rule_ids=["CSD010"],
        )
        assert report.clean

    def test_helper_not_reached_from_entry_paths_passes(self, tmp_path):
        # wall clock in a helper only the CLI calls is CSD005/CSD007's
        # allowlist decision, not an escape from the serving layer
        report = run(
            tmp_path,
            {
                "src/repro/util/pacing.py": (
                    "import time\n\n\n"
                    "def pace(session):\n"
                    "    return time.sleep(0.1)\n"
                ),
            },
            rule_ids=["CSD010"],
        )
        assert report.clean


WIRE_RERAISE = {
    # regression fixture for CSD004's documented blind spot: the helper
    # module re-raises an untyped Exception on behalf of a wire function
    "src/repro/wire/frames.py": (
        "from repro.util.checks import ensure_magic\n\n\n"
        "def read_frame(buf):\n"
        "    ensure_magic(buf)\n"
        "    return buf[4:]\n"
    ),
    "src/repro/util/checks.py": (
        "def ensure_magic(buf):\n"
        "    if buf[:4] != b'CSDB':\n"
        "        raise Exception('bad magic')\n"
    ),
}


class TestExceptionFlow:
    def test_csd004_misses_the_helper_reraise(self, tmp_path):
        """The old per-package rule is blind across the module boundary."""
        report = run(tmp_path, WIRE_RERAISE, rule_ids=["CSD004"])
        assert report.clean

    def test_csd011_catches_it_with_the_call_chain(self, tmp_path):
        report = run(tmp_path, WIRE_RERAISE, rule_ids=["CSD011"])
        findings = [f for f in report.findings if f.rule == "CSD011"]
        assert len(findings) == 1
        assert findings[0].path == "src/repro/util/checks.py"
        assert "read_frame" in findings[0].message

    def test_typed_taxonomy_helper_passes(self, tmp_path):
        files = dict(WIRE_RERAISE)
        files["src/repro/errors.py"] = (
            "class ReproError(Exception):\n    pass\n\n\n"
            "class WireFormatError(ReproError):\n    pass\n"
        )
        files["src/repro/util/checks.py"] = (
            "from repro.errors import WireFormatError\n\n\n"
            "def ensure_magic(buf):\n"
            "    if buf[:4] != b'CSDB':\n"
            "        raise WireFormatError('bad magic')\n"
        )
        report = run(tmp_path, files, rule_ids=["CSD011"])
        assert report.clean

    def test_control_flow_raises_stay_allowed(self, tmp_path):
        files = dict(WIRE_RERAISE)
        files["src/repro/util/checks.py"] = (
            "def ensure_magic(buf):\n"
            "    raise NotImplementedError\n"
        )
        report = run(tmp_path, files, rule_ids=["CSD011"])
        assert report.clean


class TestCheckpointPurity:
    def test_thread_attribute_in_session_graph_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/serve/session2.py": (
                    "import threading\n\n\n"
                    "class TenantSession:\n"
                    "    def __init__(self):\n"
                    "        self.lock = threading.Lock()\n"
                ),
            },
            rule_ids=["CSD012"],
        )
        findings = [f for f in report.findings if f.rule == "CSD012"]
        assert len(findings) == 1
        assert "lock" in findings[0].message

    def test_nested_wall_clock_attribute_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/serve/session2.py": (
                    "from repro.core.gadget import Gadget\n\n\n"
                    "class TenantSession:\n"
                    "    def __init__(self):\n"
                    "        self.gadget: Gadget = Gadget()\n"
                ),
                "src/repro/core/gadget.py": (
                    "import time\n\n\n"
                    "class Gadget:\n"
                    "    def __init__(self):\n"
                    "        self.born = time.time()\n"
                ),
            },
            rule_ids=["CSD012"],
        )
        findings = [f for f in report.findings if f.rule == "CSD012"]
        assert findings, "nested wall-clock attribute must be reached"
        assert any("gadget" in f.message for f in findings)

    def test_plain_state_passes(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/serve/session2.py": (
                    "class TenantSession:\n"
                    "    def __init__(self):\n"
                    "        self.cursor: int = 0\n"
                    "        self.outputs: list = []\n"
                ),
            },
            rule_ids=["CSD012"],
        )
        assert report.clean


class TestGraphExportCLI:
    def test_graph_json_export(self, tmp_path, capsys):
        root = make_project(tmp_path, HELPER_DECODE)
        code = main(["lint", "--root", str(root), "--graph", "json"])
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema_version"] >= 1
        assert doc["coverage"]["ratio"] == 1.0
        # the CSD009 flow annotates its edges
        tainted = [e for e in doc["edges"] if e.get("taints")]
        assert any("decode-taint" in e["taints"] for e in tainted)
        assert code == 1  # the fixture has a finding

    def test_graph_dot_export_to_file(self, tmp_path, capsys):
        root = make_project(tmp_path, {})
        out_path = tmp_path / "graph.dot"
        code = main(
            [
                "lint", "--root", str(root),
                "--graph", "dot", "--graph-out", str(out_path),
            ]
        )
        assert code == 0
        text = out_path.read_text()
        assert text.startswith("digraph callgraph")

    def test_cache_file_written_and_reused(self, tmp_path, capsys):
        root = make_project(tmp_path, {})
        cache = tmp_path / "cache.json"
        assert main(
            ["lint", "--root", str(root), "--cache", str(cache)]
        ) == 0
        assert cache.exists()
        capsys.readouterr()  # drop the first run's summary line
        assert main(
            ["lint", "--root", str(root), "--cache", str(cache), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cache"]["misses"] == 0
        assert doc["cache"]["hits"] > 0

    def test_no_cache_leaves_no_file(self, tmp_path):
        root = make_project(tmp_path, {})
        assert main(["lint", "--root", str(root), "--no-cache"]) == 0
        assert not (root / ".lint-cache.json").exists()
