"""Tests for the AST invariant analyzer (``python -m repro lint``).

Each rule gets must-flag and must-pass fixture snippets laid out in a
temporary project tree mirroring the real checkout (the rules are
path-conditioned, so fixture files live at the same relative paths the
contracts apply to).  On top of the per-rule cases: waiver-comment
handling, baseline round-trips, stale-entry detection, CLI exit codes
(0 clean / 1 findings / 2 usage) and a self-check that the real
repository is clean — the same invocation CI gates on.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    load_project,
    run_analysis,
    write_baseline,
)
from repro.analysis.project import parse_waiver_tags
from repro.cli import main
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parents[1]

MINIMAL = {"src/repro/placeholder.py": "X = 1\n"}


def make_project(tmp_path, files):
    """Write ``files`` (relpath -> source) under a tmp project root."""
    merged = dict(MINIMAL)
    merged.update(files)
    for relpath, text in merged.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


def run(tmp_path, files, **kwargs):
    return run_analysis(make_project(tmp_path, files), **kwargs)


def rules_of(report):
    return sorted({f.rule for f in report.findings})


# ----- CSD001 decode-discipline ----------------------------------------


class TestDecodeDiscipline:
    def test_flags_decode_on_direct_path(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(column, x):\n"
                    "    return column.decode(x)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert rules_of(report) == ["CSD001"]
        assert report.findings[0].line == 2

    def test_flags_codec_decompress_in_server(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/core/server.py": (
                    "def f(codec, cc):\n"
                    "    return codec.decompress(cc)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert rules_of(report) == ["CSD001"]

    def test_cache_receiver_is_sanctioned(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/core/server.py": (
                    "def f(self, codec, cc):\n"
                    "    return self.cache.decompress(codec, cc)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean

    def test_waiver_comment_silences(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(column, x):\n"
                    "    return column.decode(x)"
                    "  # lint: force-decode (one value per window)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean
        assert len(report.waived) == 1

    def test_outside_direct_path_not_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/stream/foo.py": (
                    "def f(column, x):\n"
                    "    return column.decode(x)\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean


# ----- CSD002 scalar-parity --------------------------------------------

GOOD_KERNELS = '''\
import scalar_ref


def using_scalar_reference():
    return False


def rle_runs(values):
    if using_scalar_reference():
        return scalar_ref.rle_runs(values)
    return values
'''

GOOD_SCALAR = "def rle_runs(values):\n    return values\n"
GOOD_TESTS = (
    "from repro.compression import kernels, scalar_ref\n\n\n"
    "def test_pair():\n"
    "    assert kernels.rle_runs([]) == scalar_ref.rle_runs([])\n"
)


def scalar_parity_project(
    kernels=GOOD_KERNELS, scalar=GOOD_SCALAR, tests=GOOD_TESTS
):
    return {
        "src/repro/compression/kernels.py": kernels,
        "src/repro/compression/scalar_ref.py": scalar,
        "tests/test_vectorized_kernels.py": tests,
    }


class TestScalarParity:
    def test_clean_pair_passes(self, tmp_path):
        report = run(tmp_path, scalar_parity_project(), rule_ids=["CSD002"])
        assert report.clean

    def test_missing_dispatch_flagged(self, tmp_path):
        kernels = GOOD_KERNELS + "\n\ndef lonely(values):\n    return values\n"
        report = run(
            tmp_path, scalar_parity_project(kernels=kernels),
            rule_ids=["CSD002"],
        )
        assert rules_of(report) == ["CSD002"]
        assert "no" in report.findings[0].message
        assert "lonely" in report.findings[0].message

    def test_dispatch_to_missing_oracle_flagged(self, tmp_path):
        kernels = GOOD_KERNELS.replace(
            "scalar_ref.rle_runs", "scalar_ref.gone"
        )
        report = run(
            tmp_path, scalar_parity_project(kernels=kernels),
            rule_ids=["CSD002"],
        )
        assert rules_of(report) == ["CSD002"]
        assert "does not exist" in report.findings[0].message

    def test_pair_missing_from_tests_flagged(self, tmp_path):
        report = run(
            tmp_path,
            scalar_parity_project(tests="def test_nothing():\n    pass\n"),
            rule_ids=["CSD002"],
        )
        assert rules_of(report) == ["CSD002"]
        assert "not exercised" in report.findings[0].message

    def test_waiver_on_def_line_above(self, tmp_path):
        kernels = GOOD_KERNELS + (
            "\n\n# lint: scalar-parity (helper shared by both modes)\n"
            "def helper(values):\n    return values\n"
        )
        report = run(
            tmp_path, scalar_parity_project(kernels=kernels),
            rule_ids=["CSD002"],
        )
        assert report.clean
        assert len(report.waived) == 1


# ----- CSD003 determinism ----------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n\nT = time.time()\n",
            "import time as t\n\nT = t.time_ns()\n",
            "from datetime import datetime\n\nT = datetime.now()\n",
            "import datetime\n\nT = datetime.datetime.utcnow()\n",
            "import random\n\nX = random.random()\n",
            "from random import randint\n",
            "import numpy as np\n\nR = np.random.default_rng()\n",
            "import numpy as np\n\nnp.random.seed(0)\n",
            "import numpy\n\nX = numpy.random.randint(3)\n",
        ],
    )
    def test_flags(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/core/foo.py": snippet},
            rule_ids=["CSD003"],
        )
        assert rules_of(report) == ["CSD003"], snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n\nT = time.perf_counter()\n",
            "import numpy as np\n\nR = np.random.default_rng(42)\n",
            "import numpy as np\n\nR = np.random.default_rng(seed=7)\n",
            "def f(rng):\n    return rng.integers(0, 10)\n",
        ],
    )
    def test_passes(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/core/foo.py": snippet},
            rule_ids=["CSD003"],
        )
        assert report.clean, snippet

    def test_allowlisted_files_exempt(self, tmp_path):
        files = {
            "src/repro/cli.py": "import time\n\nT = time.time()\n",
            "src/repro/bench/runner.py": (
                "import datetime\n\nT = datetime.datetime.now()\n"
            ),
        }
        report = run(tmp_path, files, rule_ids=["CSD003"])
        assert report.clean

    def test_tests_out_of_scope(self, tmp_path):
        report = run(
            tmp_path,
            {"tests/test_foo.py": "import time\n\nT = time.time()\n"},
            rule_ids=["CSD003"],
        )
        assert report.clean


# ----- CSD004 exception-taxonomy ---------------------------------------

ERRORS_MODULE = '''\
class ReproError(Exception):
    pass


class CodecError(ReproError):
    pass


class CodecNotApplicable(CodecError):
    pass
'''


class TestExceptionTaxonomy:
    def test_wire_raising_valueerror_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/wire/fmt.py": (
                    "def f():\n    raise ValueError('nope')\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]
        assert "ValueError" in report.findings[0].message

    def test_wire_subclass_allowed(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/wire/fmt.py": (
                    "class WireFormatError(Exception):\n    pass\n\n\n"
                    "class FrameError(WireFormatError):\n    pass\n\n\n"
                    "def f():\n    raise FrameError('bad frame')\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_compression_taxonomy_via_errors_module(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/errors.py": ERRORS_MODULE,
                "src/repro/compression/codec.py": (
                    "def f():\n    raise CodecNotApplicable('negatives')\n"
                ),
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_compression_raising_outside_taxonomy_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/errors.py": ERRORS_MODULE,
                "src/repro/compression/codec.py": (
                    "def f():\n    raise RuntimeError('oops')\n"
                ),
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]

    def test_reraise_variable_allowed(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/wire/fmt.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except KeyError as exc:\n"
                    "        raise exc\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_bare_except_flagged_anywhere(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/stream/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except:\n"
                    "        raise\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]
        assert "bare" in report.findings[0].message

    def test_swallowed_exception_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "benchmarks/helper.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except Exception:\n"
                    "        pass\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert rules_of(report) == ["CSD004"]
        assert "swallows" in report.findings[0].message

    def test_handled_broad_except_allowed(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/oracle/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        return g()\n"
                    "    except Exception:\n"
                    "        return None\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean

    def test_waiver_silences_swallow(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/oracle/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except Exception:"
                    "  # lint: broad-except (best effort)\n"
                    "        pass\n"
                )
            },
            rule_ids=["CSD004"],
        )
        assert report.clean
        assert len(report.waived) == 1


# ----- CSD005 virtual-time ---------------------------------------------


class TestVirtualTime:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n",
            "import datetime\n",
            "from time import sleep\n",
            "from datetime import datetime\n",
        ],
    )
    def test_flags_wall_clock_imports(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/net/chan.py": snippet},
            rule_ids=["CSD005"],
        )
        assert rules_of(report) == ["CSD005"], snippet

    def test_math_import_fine(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/net/chan.py": "import math\nimport struct\n"},
            rule_ids=["CSD005"],
        )
        assert report.clean

    def test_time_outside_net_is_not_this_rules_business(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/core/foo.py": "import time\n"},
            rule_ids=["CSD005"],
        )
        assert report.clean


# ----- CSD006 bench-registration ---------------------------------------

GOOD_BENCH = '''\
from repro.bench import register


def run_bench():
    return 1


SPEC = register(name="demo", suite="paper", fn=run_bench)
'''


class TestBenchRegistration:
    def test_registered_script_passes(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": GOOD_BENCH},
            rule_ids=["CSD006"],
        )
        assert report.clean

    def test_missing_spec_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": "def run_bench():\n    return 1\n"},
            rule_ids=["CSD006"],
        )
        assert rules_of(report) == ["CSD006"]
        assert "SPEC" in report.findings[0].message

    def test_spec_not_a_register_call_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": "SPEC = 3\n"},
            rule_ids=["CSD006"],
        )
        assert rules_of(report) == ["CSD006"]

    def test_spec_missing_suite_keyword_flagged(self, tmp_path):
        bench = GOOD_BENCH.replace(', suite="paper"', "")
        report = run(
            tmp_path,
            {"benchmarks/bench_demo.py": bench},
            rule_ids=["CSD006"],
        )
        assert rules_of(report) == ["CSD006"]
        assert "suite" in report.findings[0].message

    def test_non_bench_files_ignored(self, tmp_path):
        report = run(
            tmp_path,
            {"benchmarks/common.py": "HELPER = True\n"},
            rule_ids=["CSD006"],
        )
        assert report.clean


# ----- CSD007 supervised-recovery ---------------------------------------


class TestSupervision:
    @pytest.mark.parametrize(
        "handler",
        [
            "except ReproError:",
            "except CodecError as exc:",
            "except WireFormatError:",
            "except Exception:",
            "except (ValueError, TransportError):",
            "except:",
        ],
    )
    def test_flags_engine_handlers_in_serve(self, tmp_path, handler):
        report = run(
            tmp_path,
            {
                "src/repro/serve/session.py": (
                    "def f(session):\n"
                    "    try:\n"
                    "        session.step()\n"
                    f"    {handler}\n"
                    "        return None\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert rules_of(report) == ["CSD007"], handler

    def test_supervised_waiver_passes(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/serve/supervisor.py": (
                    "def f(runner):\n"
                    "    try:\n"
                    "        return runner.step()\n"
                    "    except ReproError as exc:  "
                    "# lint: supervised the one recovery point\n"
                    "        return contain(runner, exc)\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert report.clean

    def test_serve_error_handler_is_fine(self, tmp_path):
        # ServeError marks serving-layer misuse, not an engine fault
        report = run(
            tmp_path,
            {
                "src/repro/serve/admission.py": (
                    "def f(x):\n"
                    "    try:\n"
                    "        return parse(x)\n"
                    "    except (ServeError, KeyError):\n"
                    "        return None\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert report.clean

    @pytest.mark.parametrize(
        "snippet", ["import time\n", "from datetime import datetime\n"]
    )
    def test_flags_wall_clock_imports(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/serve/clock.py": snippet},
            rule_ids=["CSD007"],
        )
        assert rules_of(report) == ["CSD007"], snippet

    def test_handlers_outside_serve_not_this_rules_business(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/core/foo.py": (
                    "def f():\n"
                    "    try:\n"
                    "        return g()\n"
                    "    except Exception:\n"
                    "        raise\n"
                )
            },
            rule_ids=["CSD007"],
        )
        assert report.clean


# ----- CSD008 optimizer-purity ------------------------------------------

PURE_RULES = '''\
class RewriteRule:
    def apply(self, root, ctx):
        return root, None


class PruneRule(RewriteRule):
    def rewrite(self, root, ctx):
        return root


class FuseRule(RewriteRule):
    def rewrite(self, root, ctx):
        return root


RULES = (PruneRule(), FuseRule())
'''


class TestOptimizerPurity:
    def test_pure_rules_module_is_clean(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": PURE_RULES},
            rule_ids=["CSD008"],
        )
        assert report.clean

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n",
            "import datetime\n",
            "import random\n",
            "from time import perf_counter\n",
            "from random import shuffle\n",
        ],
    )
    def test_flags_wall_clock_and_entropy_imports(self, tmp_path, snippet):
        report = run(
            tmp_path,
            {"src/repro/optimizer/cost.py": snippet},
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"], snippet

    @pytest.mark.parametrize(
        "call", ["decompress", "decode", "decode_codes", "decode_all"]
    )
    def test_flags_decode_calls_at_plan_time(self, tmp_path, call):
        report = run(
            tmp_path,
            {
                "src/repro/optimizer/rules.py": (
                    f"def rewrite(col):\n    return col.{call}()\n"
                )
            },
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"], call

    def test_flags_unregistered_rule_subclass(self, tmp_path):
        source = PURE_RULES + (
            "\n\nclass SneakyRule(RewriteRule):\n"
            "    def rewrite(self, root, ctx):\n"
            "        return root\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"]
        assert "SneakyRule" in report.findings[0].message

    def test_flags_subclasses_with_no_rules_table(self, tmp_path):
        source = (
            "class RewriteRule:\n    pass\n\n"
            "class LoneRule(RewriteRule):\n    pass\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert rules_of(report) == ["CSD008"]
        assert "no static RULES table" in report.findings[0].message

    def test_flags_computed_rules_table(self, tmp_path):
        source = (
            "class RewriteRule:\n    pass\n\n"
            "class PruneRule(RewriteRule):\n    pass\n\n"
            "RULES = tuple([PruneRule()])\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert "CSD008" in rules_of(report)
        assert any(
            "tuple literal" in f.message for f in report.findings
        )

    def test_flags_non_literal_table_entry(self, tmp_path):
        source = (
            "class RewriteRule:\n    pass\n\n"
            "class PruneRule(RewriteRule):\n    pass\n\n"
            "_instance = PruneRule()\n"
            "RULES = (_instance,)\n"
        )
        report = run(
            tmp_path,
            {"src/repro/optimizer/rules.py": source},
            rule_ids=["CSD008"],
        )
        assert "CSD008" in rules_of(report)

    def test_decode_elsewhere_is_not_this_rules_business(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/stream/feed.py": (
                    "def f(col):\n    return col.decode()\n"
                )
            },
            rule_ids=["CSD008"],
        )
        assert report.clean


# ----- waiver parsing ---------------------------------------------------


class TestWaiverParsing:
    def test_single_tag(self):
        assert parse_waiver_tags("# lint: force-decode") == {"force-decode"}

    def test_tags_with_justification(self):
        tags = parse_waiver_tags(
            "# lint: broad-except, force-decode — shrink must not crash"
        )
        assert tags == {"broad-except", "force-decode"}

    def test_disable_tag(self):
        assert parse_waiver_tags("# lint: disable=CSD003") == {
            "disable=CSD003"
        }

    def test_not_a_waiver(self):
        assert parse_waiver_tags("# regular comment") == set()

    def test_disable_silences_rule(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(c, x):\n"
                    "    return c.decode(x)  # lint: disable=CSD001\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert report.clean

    def test_unrelated_tag_does_not_silence(self, tmp_path):
        report = run(
            tmp_path,
            {
                "src/repro/operators/foo.py": (
                    "def f(c, x):\n"
                    "    return c.decode(x)  # lint: broad-except\n"
                )
            },
            rule_ids=["CSD001"],
        )
        assert not report.clean


# ----- baseline ---------------------------------------------------------

VIOLATION = {
    "src/repro/operators/foo.py": (
        "def f(column, x):\n    return column.decode(x)\n"
    )
}


class TestBaseline:
    def test_round_trip(self, tmp_path):
        root = make_project(tmp_path, VIOLATION)
        report = run_analysis(root, rule_ids=["CSD001"])
        assert len(report.findings) == 1
        baseline = tmp_path / "lint-baseline.json"
        write_baseline(baseline, report.findings)
        again = run_analysis(root, rule_ids=["CSD001"])
        assert again.clean
        assert len(again.baselined) == 1

    def test_baseline_is_line_insensitive(self, tmp_path):
        root = make_project(tmp_path, VIOLATION)
        write_baseline(
            tmp_path / "lint-baseline.json",
            run_analysis(root, rule_ids=["CSD001"]).findings,
        )
        path = root / "src/repro/operators/foo.py"
        path.write_text("import numpy as np\n\n\n" + path.read_text())
        report = run_analysis(root, rule_ids=["CSD001"])
        assert report.clean
        assert len(report.baselined) == 1

    def test_stale_entry_is_a_finding(self, tmp_path):
        root = make_project(tmp_path, VIOLATION)
        write_baseline(
            tmp_path / "lint-baseline.json",
            run_analysis(root, rule_ids=["CSD001"]).findings,
        )
        (root / "src/repro/operators/foo.py").write_text("X = 1\n")
        report = run_analysis(root, rule_ids=["CSD001"])
        assert not report.clean
        assert report.findings[0].rule == "CSD000"
        assert "stale" in report.findings[0].message
        assert report.stale_entries

    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        root = make_project(tmp_path, {})
        (root / "lint-baseline.json").write_text("{not json")
        with pytest.raises(AnalysisError):
            run_analysis(root)

    def test_missing_baseline_is_empty(self, tmp_path):
        root = make_project(tmp_path, {})
        assert run_analysis(root, rule_ids=["CSD001"]).clean


# ----- engine / misc ----------------------------------------------------


class TestEngine:
    def test_parse_error_is_a_finding(self, tmp_path):
        report = run(
            tmp_path,
            {"src/repro/core/broken.py": "def f(:\n"},
            rule_ids=["CSD001"],
        )
        assert not report.clean
        assert report.findings[0].rule == "CSD000"
        assert "parse" in report.findings[0].message

    def test_unknown_rule_raises(self, tmp_path):
        root = make_project(tmp_path, {})
        with pytest.raises(AnalysisError):
            run_analysis(root, rule_ids=["CSD999"])

    def test_pycache_ignored(self, tmp_path):
        root = make_project(
            tmp_path,
            {"src/repro/__pycache__/foo.py": "import time\ntime.time()\n"},
        )
        project = load_project(root)
        assert all("__pycache__" not in f.relpath for f in project.files)

    def test_empty_project_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_project(tmp_path)

    def test_json_doc_shape(self, tmp_path):
        report = run(tmp_path, VIOLATION, rule_ids=["CSD001"])
        doc = report.to_doc()
        assert doc["clean"] is False
        assert doc["findings"][0]["rule"] == "CSD001"
        assert json.loads(json.dumps(doc)) == doc


# ----- CLI --------------------------------------------------------------


class TestLintCLI:
    def test_exit_zero_on_clean_project(self, tmp_path, capsys):
        root = make_project(tmp_path, {})
        assert main(["lint", "--root", str(root)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = make_project(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "CSD001" in out
        assert "FAIL" in out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        root = make_project(tmp_path, {})
        assert main(["lint", "--root", str(root), "--rule", "CSD999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_single_rule_selection(self, tmp_path):
        root = make_project(
            tmp_path,
            dict(VIOLATION, **{"src/repro/net/chan.py": "import time\n"}),
        )
        assert main(["lint", "--root", str(root), "--rule", "CSD005"]) == 1

    def test_json_output(self, tmp_path, capsys):
        root = make_project(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "CSD001"

    def test_list_rules(self, tmp_path, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "CSD001", "CSD002", "CSD003", "CSD004", "CSD005", "CSD006",
        ):
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_project(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root), "--write-baseline"]) == 0
        assert (root / "lint-baseline.json").exists()
        assert main(["lint", "--root", str(root)]) == 0


# ----- the repository itself is clean -----------------------------------


class TestRepositoryContracts:
    """The same check CI runs: the real repo has zero new findings."""

    def test_repo_is_clean(self):
        report = run_analysis(REPO_ROOT)
        assert report.clean, "\n".join(report.format_lines())

    def test_all_six_rules_ran(self):
        report = run_analysis(REPO_ROOT)
        assert len(report.rules) >= 6

    def test_repo_baseline_stays_near_empty(self):
        baseline = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text()
        )
        # grandfathered findings need an inline-documented reason each;
        # keep the list from regrowing silently
        assert len(baseline["entries"]) <= 2
        for entry in baseline["entries"]:
            assert entry["reason"].strip()
