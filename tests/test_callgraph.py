"""Tests for the interprocedural layer: summaries, call graph, dataflow.

The call-graph builder gets dedicated coverage on the Python shapes
that defeat naive resolution — decorated functions, ``functools.
partial`` bindings, methods dispatched through the ``Codec`` ABC,
lambdas parked in ``RULES`` tables, and ``importlib`` indirection
(documented as a known-imprecise edge and asserted as such).  On top:
summary-cache hit/invalidation behavior, the taint engine's sanitizer
cut, the class-attribute closure, and the real repository's graph
coverage floor (the ``--graph`` acceptance bar).
"""

import json
from pathlib import Path

from repro.analysis import (
    build_callgraph,
    default_root,
    load_project,
)
from repro.analysis.callgraph import GRAPH_SCHEMA_VERSION
from repro.analysis.dataflow import (
    attribute_closure,
    external_sink,
    find_flows,
)
from repro.analysis.summaries import (
    SummaryCache,
    file_digest,
    module_imports,
    module_name_for,
    summarize_file,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

MINIMAL = {"src/repro/placeholder.py": "X = 1\n"}


def make_project(tmp_path, files):
    merged = dict(MINIMAL)
    merged.update(files)
    for relpath, text in merged.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return load_project(tmp_path)


def graph_of(tmp_path, files):
    return build_callgraph(make_project(tmp_path, files))


def edge_set(graph):
    return {(e.caller, e.callee) for e in graph.edges}


def node(graph, suffix):
    """The unique function node whose qualname ends with ``suffix``."""
    matches = [q for q in graph.functions if q.endswith(suffix)]
    assert len(matches) == 1, (suffix, matches)
    return matches[0]


# ----- summaries --------------------------------------------------------


class TestSummaries:
    def test_module_name_for(self):
        assert module_name_for("src/repro/core/engine.py") == "repro.core.engine"
        assert module_name_for("src/repro/wire/__init__.py") == "repro.wire"
        assert module_name_for("tests/test_x.py") == "tests.test_x"

    def test_relative_imports_resolve_against_package(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "src/repro/a/b.py": (
                    "from .helpers import f\nfrom ..core import g\n"
                ),
            },
        )
        sf = project.file("src/repro/a/b.py")
        aliases = module_imports(sf.tree, "repro.a.b", is_package=False)
        assert aliases["f"] == "repro.a.helpers.f"
        assert aliases["g"] == "repro.core.g"

    def test_property_setter_pairs_stay_distinct_nodes(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "class C:\n"
                    "    @property\n"
                    "    def v(self):\n"
                    "        return 1\n"
                    "    @v.setter\n"
                    "    def v(self, value):\n"
                    "        self._v = value\n"
                )
            },
        )
        pair = [q for q in graph.functions if ".C.v" in q]
        assert len(pair) == 2

    def test_text_codec_decode_marked(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "def f(raw, col, codes):\n"
                    "    name = raw.decode('utf-8')\n"
                    "    vals = col.decode(codes)\n"
                    "    return name, vals\n"
                )
            },
        )
        doc = summarize_file(project.file("src/repro/core/x.py"))
        sites = doc["functions"][1]["sites"]
        flags = {s["path"]: s.get("strcodec", False) for s in sites}
        assert flags["raw.decode"] is True
        assert flags["col.decode"] is False

    def test_digest_covers_version(self):
        assert file_digest("x = 1\n") != file_digest("x = 2\n")


class TestSummaryCache:
    def test_hit_miss_and_invalidation(self, tmp_path):
        project = make_project(
            tmp_path, {"src/repro/core/x.py": "def f():\n    return 1\n"}
        )
        cache_path = tmp_path / "cache.json"
        cache = SummaryCache(cache_path)
        build_callgraph(project, cache)
        assert cache.misses == len(project.files)
        assert cache.hits == 0
        cache.save()
        assert cache_path.is_file()

        # warm run: everything hits
        warm = SummaryCache(cache_path)
        build_callgraph(load_project(tmp_path), warm)
        assert warm.hits == len(project.files)
        assert warm.misses == 0

        # edit one file: only that file re-summarizes
        (tmp_path / "src/repro/core/x.py").write_text(
            "def f():\n    return 2\n"
        )
        edited = SummaryCache(cache_path)
        build_callgraph(load_project(tmp_path), edited)
        assert edited.misses == 1
        assert edited.hits == len(project.files) - 1

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        project = make_project(tmp_path, {})
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{ not json")
        cache = SummaryCache(cache_path)
        build_callgraph(project, cache)
        assert cache.hits == 0
        assert cache.misses == len(project.files)


# ----- call-graph construction -----------------------------------------


class TestCallGraphShapes:
    def test_cross_module_call_through_import(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/helpers.py": "def expand(col):\n    return col\n",
                "src/repro/core/main.py": (
                    "from .helpers import expand\n"
                    "def run(col):\n    return expand(col)\n"
                ),
            },
        )
        assert (
            node(graph, "main.<module>.run"),
            node(graph, "helpers.<module>.expand"),
        ) in edge_set(graph)

    def test_decorated_function_keeps_node_and_decorator_edge(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "def wraps(fn):\n"
                    "    return fn\n"
                    "@wraps\n"
                    "def work():\n"
                    "    return inner()\n"
                    "def inner():\n"
                    "    return 1\n"
                )
            },
        )
        edges = edge_set(graph)
        work = node(graph, ".work")
        kinds = {
            (e.caller, e.callee): e.kind
            for e in graph.edges
        }
        assert kinds[(work, node(graph, ".wraps"))] == "decorator"
        assert (work, node(graph, ".inner")) in edges

    def test_functools_partial_target_is_a_partial_edge(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "from functools import partial\n"
                    "def handler(a, b):\n"
                    "    return a + b\n"
                    "def bind():\n"
                    "    return partial(handler, 1)\n"
                )
            },
        )
        match = [
            e
            for e in graph.edges
            if e.caller == node(graph, ".bind")
            and e.callee == node(graph, ".handler")
            and e.kind == "partial"
        ]
        assert match, [e.to_doc() for e in graph.edges]

    def test_codec_abc_method_dispatch(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/compression/base.py": (
                    "class Codec:\n"
                    "    def decode(self, codes):\n"
                    "        raise NotImplementedError\n"
                ),
                "src/repro/compression/rle.py": (
                    "from .base import Codec\n"
                    "class RLECodec(Codec):\n"
                    "    def decode(self, codes):\n"
                    "        return codes\n"
                ),
                "src/repro/core/use.py": (
                    "from ..compression.base import Codec\n"
                    "def materialize(codec: Codec, codes):\n"
                    "    return codec.decode(codes)\n"
                ),
            },
        )
        caller = node(graph, "use.<module>.materialize")
        callees = {e.callee for e in graph.callees(caller)}
        # annotated-receiver dispatch reaches the ABC method AND the
        # project override (virtual dispatch, not just static)
        assert node(graph, "base.<module>.Codec.decode") in callees
        assert node(graph, "rle.<module>.RLECodec.decode") in callees

    def test_self_method_resolves_through_hierarchy(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 1\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.shared()\n"
                )
            },
        )
        assert (
            node(graph, ".Child.run"),
            node(graph, ".Base.shared"),
        ) in edge_set(graph)

    def test_typed_self_attribute_receiver(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/cachemod.py": (
                    "class DecodeCache:\n"
                    "    def decompress(self, col):\n"
                    "        return col\n"
                ),
                "src/repro/core/srv.py": (
                    "from .cachemod import DecodeCache\n"
                    "class Server:\n"
                    "    def __init__(self):\n"
                    "        self.cache = DecodeCache()\n"
                    "    def process(self, col):\n"
                    "        return self.cache.decompress(col)\n"
                ),
            },
        )
        assert (
            node(graph, ".Server.process"),
            node(graph, ".DecodeCache.decompress"),
        ) in edge_set(graph)

    def test_lambda_in_rules_table_links_helper(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/rules.py": (
                    "def helper(v):\n"
                    "    return v + 1\n"
                    "RULES = {\n"
                    "    'inc': lambda v: helper(v),\n"
                    "}\n"
                )
            },
        )
        lam = [q for q, n in graph.functions.items() if n.is_lambda]
        assert len(lam) == 1
        # module body references the lambda; the lambda calls the helper
        assert (node(graph, "rules.<module>"), lam[0]) in edge_set(graph)
        assert (lam[0], node(graph, ".helper")) in edge_set(graph)

    def test_importlib_indirection_is_marked_dynamic(self, tmp_path):
        """Known-imprecise edge: dynamic dispatch is flagged, not faked."""
        graph = graph_of(
            tmp_path,
            {
                "src/repro/serve/spec.py": (
                    "import importlib\n"
                    "def query_config(module_name):\n"
                    "    mod = importlib.import_module(module_name)\n"
                    "    return mod.QUERIES\n"
                )
            },
        )
        qc = graph.function(node(graph, ".query_config"))
        assert qc.dynamic is True
        # no fabricated call edges out of the dynamic site
        assert all(
            e.kind in ("ref",) or e.callee != e.caller
            for e in graph.callees(qc.qualname)
        )

    def test_ambient_method_names_skip_cha(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "class Table:\n"
                    "    def get(self, k):\n"
                    "        return k\n"
                    "def use(d):\n"
                    "    return d.get('x')\n"
                )
            },
        )
        # d.get() must NOT wire into Table.get via CHA: 'get' is ambient
        assert (
            node(graph, ".use"),
            node(graph, ".Table.get"),
        ) not in edge_set(graph)

    def test_unknown_receiver_falls_back_to_cha(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "class Pipe:\n"
                    "    def advance_cursor(self):\n"
                    "        return 1\n"
                    "def drive(thing):\n"
                    "    return thing.advance_cursor()\n"
                )
            },
        )
        match = [
            e
            for e in graph.edges
            if e.caller == node(graph, ".drive") and e.kind == "cha"
        ]
        assert [e.callee for e in match] == [node(graph, ".Pipe.advance_cursor")]

    def test_external_calls_are_tracked(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "import time\n"
                    "def now():\n"
                    "    return time.time()\n"
                )
            },
        )
        n = graph.function(node(graph, ".now"))
        assert ("time.time", 3) in n.externals


class TestGraphQueries:
    FILES = {
        "src/repro/core/x.py": (
            "def a():\n"
            "    return b()\n"
            "def b():\n"
            "    return c()\n"
            "def c():\n"
            "    return 1\n"
        )
    }

    def test_reachable_and_witness_path(self, tmp_path):
        graph = graph_of(tmp_path, self.FILES)
        a, b, c = (node(graph, f".{x}") for x in "abc")
        parents = graph.reachable([a])
        assert set(parents) >= {a, b, c}
        assert graph.path_to(parents, c) == [a, b, c]

    def test_sanitizer_cuts_propagation(self, tmp_path):
        graph = graph_of(tmp_path, self.FILES)
        a, b, c = (node(graph, f".{x}") for x in "abc")
        parents = graph.reachable([a], stop={b})
        assert b in parents  # the sanitizer itself is still visible
        assert c not in parents  # but nothing beyond it

    def test_class_descendants(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "class Root(Exception):\n    pass\n"
                    "class Mid(Root):\n    pass\n"
                    "class Leaf(Mid):\n    pass\n"
                    "class Other(Exception):\n    pass\n"
                )
            },
        )
        allowed = graph.class_descendants(["Root"])
        assert {"Root", "Mid", "Leaf"} <= allowed
        assert "Other" not in allowed


# ----- exports ----------------------------------------------------------


class TestGraphExports:
    def test_json_doc_schema(self, tmp_path):
        graph = graph_of(tmp_path, TestGraphQueries.FILES)
        doc = graph.to_doc()
        assert doc["schema_version"] == GRAPH_SCHEMA_VERSION
        assert json.loads(json.dumps(doc)) == doc
        for key in ("modules", "functions", "classes", "edges", "coverage"):
            assert key in doc
        fn = doc["functions"][0]
        for key in ("qualname", "module", "path", "line", "kind", "dynamic"):
            assert key in fn
        assert doc["coverage"]["ratio"] == 1.0

    def test_dot_export_renders_taints(self, tmp_path):
        graph = graph_of(tmp_path, TestGraphQueries.FILES)
        a, b = node(graph, ".a"), node(graph, ".b")
        dot = graph.to_dot({(a, b): {"decode-taint"}})
        assert dot.startswith("digraph callgraph {")
        assert "decode-taint" in dot
        assert "color=red" in dot

    def test_edge_taints_in_json(self, tmp_path):
        graph = graph_of(tmp_path, TestGraphQueries.FILES)
        a, b = node(graph, ".a"), node(graph, ".b")
        doc = graph.to_doc({(a, b): {"wall-clock-escape"}})
        tainted = [e for e in doc["edges"] if e["taints"]]
        assert tainted and tainted[0]["taints"] == ["wall-clock-escape"]


# ----- dataflow ---------------------------------------------------------


class TestDataflow:
    def test_external_sink_flow_with_sanitizer(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/core/x.py": (
                    "import time\n"
                    "def entry():\n"
                    "    return clean()\n"
                    "def entry2():\n"
                    "    return dirty()\n"
                    "def clean():\n"
                    "    return dirty()\n"
                    "def dirty():\n"
                    "    return time.time()\n"
                )
            },
        )
        facts = external_sink(lambda p: p == "time.time")
        entry = node(graph, ".entry")
        clean = node(graph, ".clean")
        flows = find_flows(graph, [entry], facts, sanitizers={clean})
        assert flows == []
        flows = find_flows(graph, [node(graph, ".entry2")], facts)
        assert len(flows) == 1
        assert flows[0].detail == "time.time"
        assert flows[0].path[-1] == node(graph, ".dirty")

    def test_attribute_closure_markers_and_detached(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "src/repro/serve/x.py": (
                    "import threading\n"
                    "class Inner:\n"
                    "    def __init__(self, stream):\n"
                    "        self.hook = lambda: 1\n"
                    "        self.lock = threading.Lock()\n"
                    "class Root:\n"
                    "    def __init__(self):\n"
                    "        self.inner = Inner(None)\n"
                    "        self.skipped = iter(())\n"
                )
            },
        )
        found = attribute_closure(
            graph,
            "Root",
            detached={("Root", "skipped")},
            unpicklable_type_roots=("threading.",),
        )
        problems = {(f.attr_path, f.problem) for f in found}
        assert ("inner.hook", "lambda") in problems
        assert ("inner.lock", "unpicklable:threading") in problems
        assert not any(f.attr_path == "skipped" for f in found)


# ----- the real repository ----------------------------------------------


class TestRepositoryGraph:
    def test_coverage_floor(self):
        graph = build_callgraph(load_project(default_root(REPO_ROOT)))
        cov = graph.coverage()
        assert cov["functions_defined"] > 500
        # the --graph acceptance bar: >= 95% of src/repro definitions
        assert cov["ratio"] >= 0.95, cov

    def test_known_dynamic_edge_is_documented_imprecise(self):
        """TenantSpec.query_config dispatches through importlib; the
        graph must mark it dynamic rather than fake a call edge."""
        graph = build_callgraph(load_project(default_root(REPO_ROOT)))
        dynamic = [
            q
            for q, n in graph.functions.items()
            if n.dynamic and "TenantSpec" in q
        ]
        assert dynamic, "TenantSpec importlib indirection lost its marker"
