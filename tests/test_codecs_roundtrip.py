"""Cross-codec invariants: roundtrip, applicability, ratio accounting."""

import numpy as np
import pytest

from repro.compression import (
    CompressedColumn,
    all_codec_names,
    default_pool,
    get_codec,
)
from repro.errors import CodecError, CodecNotApplicable
from repro.stats import ColumnStats

ALL_CODECS = sorted(all_codec_names())
SHAPES = [
    "constant",
    "small_range",
    "wide_range",
    "negatives",
    "runs",
    "monotone",
    "binary",
    "single",
    "with_zero",
    "extremes",
]


def _compress_or_skip(codec, values):
    stats = ColumnStats.from_values(values)
    if not codec.applicable(stats):
        pytest.skip(f"{codec.name} not applicable to this column")
    try:
        return codec.compress(values)
    except CodecNotApplicable:
        pytest.skip(f"{codec.name} rejected this column at compress time")


@pytest.mark.parametrize("codec_name", ALL_CODECS)
@pytest.mark.parametrize("shape", SHAPES)
class TestRoundtrip:
    def test_roundtrip_exact(self, codec_name, shape, column_shapes):
        codec = get_codec(codec_name)
        values = column_shapes[shape]
        cc = _compress_or_skip(codec, values)
        np.testing.assert_array_equal(codec.decompress(cc), values)

    def test_compressed_metadata_consistent(self, codec_name, shape, column_shapes):
        codec = get_codec(codec_name)
        values = column_shapes[shape]
        cc = _compress_or_skip(codec, values)
        assert cc.codec == codec_name
        assert cc.n == values.size
        assert cc.nbytes > 0
        assert cc.payload.dtype == np.uint8


@pytest.mark.parametrize("codec_name", ALL_CODECS)
class TestCodecContract:
    def test_rejects_empty_column(self, codec_name):
        codec = get_codec(codec_name)
        with pytest.raises(CodecNotApplicable):
            codec.compress(np.zeros(0, dtype=np.int64))

    def test_rejects_2d_input(self, codec_name):
        codec = get_codec(codec_name)
        with pytest.raises(CodecError):
            codec.compress(np.zeros((4, 4), dtype=np.int64))

    def test_rejects_foreign_column(self, codec_name):
        codec = get_codec(codec_name)
        foreign = CompressedColumn(
            codec="definitely_not_this", n=1, payload=np.zeros(8, dtype=np.uint8)
        )
        with pytest.raises(CodecError):
            codec.decompress(foreign)

    def test_lazy_eager_classification(self, codec_name):
        # Table I: EG/ED/NS/NSV eager; BD/RLE/DICT/Bitmap lazy
        codec = get_codec(codec_name)
        eager = {"eg", "ed", "ns", "nsv", "identity"}
        lazy = {
            "bd",
            "rle",
            "dict",
            "bitmap",
            "plwah",
            "gzip",
            "deltachain",
            "dict+rle",
            "delta+ns",
            "bd+nsv",
            "dict+bitmap",
        }
        if codec_name in eager:
            assert not codec.is_lazy
        elif codec_name in lazy:
            assert codec.is_lazy

    def test_beta_classification(self, codec_name):
        # Sec. V: NSV, RLE, Bitmap (and the extensions) need decompression
        codec = get_codec(codec_name)
        beta_one = {
            "nsv",
            "rle",
            "bitmap",
            "plwah",
            "gzip",
            "deltachain",
            "dict+rle",
            "delta+ns",
            "bd+nsv",
            "dict+bitmap",
        }
        assert codec.needs_decompression == (codec_name in beta_one)

    def test_beta_one_codecs_have_no_capabilities(self, codec_name):
        codec = get_codec(codec_name)
        if codec.needs_decompression:
            assert codec.capabilities == frozenset()


@pytest.mark.parametrize(
    # gzip and plwah have heuristic estimates, not Sec. V formulas;
    # cascades compose estimates on *approximate* transformed statistics
    # and are tracked by their own tolerance test in test_cascades.py
    "codec_name",
    [n for n in ALL_CODECS if n not in ("gzip", "plwah") and "+" not in n],
)
@pytest.mark.parametrize("shape", ["small_range", "runs", "monotone"])
def test_estimate_tracks_achieved_ratio(codec_name, shape, column_shapes):
    """The Sec. V analytic ratios must predict the payload-only ratio."""
    codec = get_codec(codec_name)
    values = column_shapes[shape]
    stats = ColumnStats.from_values(values)
    if not codec.applicable(stats):
        pytest.skip("not applicable")
    cc = codec.compress(values)
    estimated = codec.estimate_ratio(stats)
    achieved_payload = (values.size * 8) / cc.payload.nbytes
    # the analytic formulas ignore per-batch metadata; payload ratio should
    # be within 40% of the estimate for these regular shapes
    assert estimated == pytest.approx(achieved_payload, rel=0.4)


def test_registry_lists_all_codecs():
    names = all_codec_names()
    for expected in (
        "eg",
        "ed",
        "ns",
        "nsv",
        "bd",
        "rle",
        "dict",
        "bitmap",
        "plwah",
        "gzip",
        "identity",
    ):
        assert expected in names


def test_registry_unknown_codec():
    with pytest.raises(CodecError):
        get_codec("snappy")


def test_default_pool_contents():
    names = {c.name for c in default_pool()}
    assert names == {"identity", "eg", "ed", "ns", "nsv", "bd", "rle", "dict", "bitmap"}
    with_plwah = {c.name for c in default_pool(include_plwah=True)}
    assert with_plwah == names | {"plwah"}


@pytest.mark.parametrize("codec_name", ["eg", "ed"])
def test_elias_codecs_reject_negatives(codec_name, column_shapes):
    codec = get_codec(codec_name)
    stats = ColumnStats.from_values(column_shapes["negatives"])
    assert not codec.applicable(stats)
    with pytest.raises(CodecNotApplicable):
        codec.compress(column_shapes["negatives"])
