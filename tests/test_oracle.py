"""Tests of the differential oracle itself (repro.oracle).

The fast tests here run bounded campaigns so the tier-1 suite stays
quick; the full-size campaigns carry the ``slow`` marker and run in the
``-m slow`` lane (see docs/testing.md).
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.compression.registry import PAPER_POOL
from repro.core.profiler import OPERATOR_KINDS, CoverageMatrix
from repro.oracle import (
    CampaignConfig,
    DifferentialConfig,
    WorkloadGenerator,
    load_case,
    replay_file,
    run_campaign,
    run_case,
    save_case,
    shrink_case,
)
from repro.oracle.differential import (
    PATH_DIRECT,
    compare_results,
    compress_case_batch,
)
from repro.sql.executor import QueryResult
from repro.sql.parser import parse
from repro.sql.unparse import to_sql


# ----- generator -------------------------------------------------------


class TestWorkloadGenerator:
    def test_deterministic(self):
        a = WorkloadGenerator(7)
        b = WorkloadGenerator(7)
        for i in range(10):
            ca, cb = a.case(i), b.case(i)
            assert ca.sql == cb.sql
            assert len(ca.batches) == len(cb.batches)
            for ba, bb in zip(ca.batches, cb.batches):
                assert sorted(ba) == sorted(bb)
                for name in ba:
                    np.testing.assert_array_equal(ba[name], bb[name])

    def test_seeds_differ(self):
        sqls = {WorkloadGenerator(seed).case(0).sql for seed in range(8)}
        assert len(sqls) > 1

    def test_every_case_plans_and_unparses_roundtrip(self):
        gen = WorkloadGenerator(5)
        for case in gen.cases(40):
            case.plan()  # raises on an invalid query
            script = parse(case.sql)
            assert script.main == case.query, case.sql

    def test_covers_all_plan_shapes(self):
        from repro.sql.planner import JoinPlan, PassthroughPlan, WindowAggPlan

        shapes = {type(case.plan()) for case in WorkloadGenerator(1).cases(40)}
        assert {WindowAggPlan, PassthroughPlan, JoinPlan} <= shapes

    def test_timestamps_monotone(self):
        for case in WorkloadGenerator(2).cases(10):
            previous = None
            for batch in case.batches:
                ts = batch["ts"]
                assert np.all(np.diff(ts) >= 0)
                if previous is not None:
                    assert ts[0] >= previous
                previous = int(ts[-1])


# ----- differential executor -------------------------------------------


class TestDifferential:
    def test_pinned_codec_with_identity_fallback(self):
        case = WorkloadGenerator(0).case(0)
        cb = compress_case_batch(case.to_batches()[0], "eg")
        assert set(cb.choices.values()) <= {"eg", "identity"}
        cb_base = compress_case_batch(case.to_batches()[0], None)
        assert set(cb_base.choices.values()) == {"identity"}

    def test_compare_results_tolerates_row_order(self):
        a = QueryResult(
            columns={"k": np.array([1, 2]), "v": np.array([0.5, 1.5])},
            n_rows=2,
        )
        b = QueryResult(
            columns={"k": np.array([2, 1]), "v": np.array([1.5 + 1e-12, 0.5])},
            n_rows=2,
        )
        assert compare_results(a, b) is None

    def test_compare_results_detects_value_drift(self):
        a = QueryResult(columns={"v": np.array([1, 2, 3])}, n_rows=3)
        b = QueryResult(columns={"v": np.array([1, 2, 4])}, n_rows=3)
        detail = compare_results(a, b)
        assert detail is not None and "'v'" in detail

    def test_run_case_clean_and_covered(self):
        outcome = run_case(WorkloadGenerator(0).case(1))
        assert outcome.ok, [str(m) for m in outcome.mismatches]
        assert outcome.coverage.cells  # something was recorded

    def test_mutation_is_caught_on_the_mutated_path_only(self):
        def mutate(result, codec, path):
            if path != PATH_DIRECT or not result.columns:
                return result
            name = sorted(result.columns)[0]
            cols = dict(result.columns)
            arr = cols[name].copy()
            if arr.size:
                arr[0] += 1
            cols[name] = arr
            return dataclasses.replace(result, columns=cols)

        config = DifferentialConfig(codecs=("ns",), mutate=mutate)
        # a +1 fault can hide inside the float tolerance on huge sums, so
        # scan until a case shows it; it must then blame only the direct path
        outcomes = [
            run_case(case, config) for case in WorkloadGenerator(0).cases(15)
        ]
        mismatches = [m for o in outcomes for m in o.mismatches]
        assert mismatches
        assert {m.path for m in mismatches} == {PATH_DIRECT}


# ----- coverage matrix -------------------------------------------------


class TestCoverageMatrix:
    def test_record_and_kinds(self):
        m = CoverageMatrix()
        m.record("ns", "selection", direct=True)
        m.record("ns", "groupby", direct=False)
        m.record("rle", "selection", direct=False, count=3)
        assert m.kinds_for("ns") == ("selection", "groupby")
        assert m.kinds_for("ns", direct_only=True) == ("selection",)
        assert m.cells["rle"]["selection"].decoded == 3

    def test_undercovered(self):
        m = CoverageMatrix()
        for kind in OPERATOR_KINDS[:3]:
            m.record("ns", kind, direct=True)
        m.record("rle", "selection", direct=False)
        assert m.undercovered(["ns", "rle", "eg"], 3) == {"rle": 1, "eg": 0}

    def test_merge_and_dict_roundtrip(self):
        a = CoverageMatrix()
        a.record("ns", "selection", direct=True)
        b = CoverageMatrix()
        b.record("ns", "selection", direct=False, count=2)
        b.record("eg", "join", direct=True)
        a.merge(b)
        assert a.cells["ns"]["selection"].direct == 1
        assert a.cells["ns"]["selection"].decoded == 2
        restored = CoverageMatrix.from_dict(a.to_dict())
        assert restored.to_dict() == a.to_dict()

    def test_format_table(self):
        m = CoverageMatrix()
        assert "no coverage" in m.format_table()
        m.record("ns", "selection", direct=True)
        assert "ns" in m.format_table()


# ----- repro files -----------------------------------------------------


class TestReplay:
    def test_save_load_roundtrip(self, tmp_path):
        case = WorkloadGenerator(4).case(2)
        path = save_case(
            case, str(tmp_path / "r.json"), codec="ns", mismatch_path="direct"
        )
        loaded, codec, mismatch_path = load_case(path)
        assert (codec, mismatch_path) == ("ns", "direct")
        assert loaded.sql == case.sql
        assert [f.name for f in loaded.schema] == [f.name for f in case.schema]
        for ba, bb in zip(loaded.batches, case.batches):
            for name in bb:
                np.testing.assert_array_equal(ba[name], bb[name])

    def test_replay_clean_case(self, tmp_path):
        case = WorkloadGenerator(4).case(3)
        path = save_case(case, str(tmp_path / "r.json"), codec="bd")
        outcome = replay_file(path)
        assert outcome.ok, [str(m) for m in outcome.mismatches]

    def test_rejects_foreign_files(self, tmp_path):
        from repro.errors import ReproError

        bogus = tmp_path / "x.json"
        bogus.write_text('{"format": "something-else"}')
        with pytest.raises(ReproError):
            load_case(str(bogus))


# ----- shrinker self-test ----------------------------------------------


def _flip_first_value(result, codec, path):
    """Injected comparator-visible fault on the direct path."""
    if path != PATH_DIRECT or not result.columns:
        return result
    name = sorted(result.columns)[0]
    cols = dict(result.columns)
    arr = cols[name].copy()
    if arr.size:
        arr[0] += 1
    cols[name] = arr
    return dataclasses.replace(result, columns=cols)


class TestShrinker:
    def test_injected_fault_minimizes_and_replays(self, tmp_path):
        config = DifferentialConfig(codecs=("ns",), mutate=_flip_first_value)
        gen = WorkloadGenerator(3)
        case = next(
            c for c in gen.cases(30) if run_case(c, config).mismatches
        )
        small = shrink_case(case, "ns", PATH_DIRECT, config)
        assert small.n_rows <= 8
        assert len(small.schema) <= 2
        assert small.n_rows <= case.n_rows
        # the minimized case must still fail, deterministically, via replay
        path = save_case(
            small, str(tmp_path / "r.json"), codec="ns", mismatch_path="direct"
        )
        first = replay_file(path, DifferentialConfig(mutate=_flip_first_value))
        second = replay_file(path, DifferentialConfig(mutate=_flip_first_value))
        assert first.mismatches
        assert [str(m) for m in first.mismatches] == [
            str(m) for m in second.mismatches
        ]
        # ...and without the injected fault the same file replays clean
        assert replay_file(path).ok

    def test_rejects_passing_case(self):
        from repro.errors import ReproError

        case = WorkloadGenerator(0).case(1)
        with pytest.raises(ReproError):
            shrink_case(case, "ns", PATH_DIRECT)


# ----- campaigns -------------------------------------------------------


class TestCampaign:
    def test_smoke_campaign_clean(self, tmp_path):
        config = CampaignConfig(
            cases=25, seed=0, out_dir=str(tmp_path / "repros"), min_kinds=1
        )
        result = run_campaign(config)
        assert result.ok, [str(m) for m in result.mismatches]
        assert result.cases_run == 25
        assert not os.path.exists(config.out_dir)  # no repros for clean runs
        assert not result.coverage.undercovered(PAPER_POOL, 1)

    def test_campaign_writes_shrunk_repro(self, tmp_path):
        config = CampaignConfig(
            cases=30,
            seed=3,
            codecs=("ns",),
            out_dir=str(tmp_path / "repros"),
            max_failures=1,
            mutate=_flip_first_value,
        )
        result = run_campaign(config)
        assert result.mismatches
        assert len(result.repro_paths) == 1
        loaded, codec, path = load_case(result.repro_paths[0])
        assert codec == "ns" and path == PATH_DIRECT
        assert loaded.n_rows <= 8

    @pytest.mark.slow
    def test_full_campaign_500_cases(self, tmp_path):
        config = CampaignConfig(
            cases=500, seed=0, out_dir=str(tmp_path / "repros"), min_kinds=3
        )
        result = run_campaign(config)
        assert result.ok, [str(m) for m in result.mismatches]
        for codec in PAPER_POOL:
            assert len(result.coverage.kinds_for(codec)) >= 3, codec


# ----- unparser --------------------------------------------------------


class TestUnparse:
    def test_roundtrip_on_handwritten_queries(self):
        samples = [
            "select avg(v) as a from S [range 4 slide 2] where k == 1 group by k",
            "select k, count(*) as n from S [range 10 seconds slide 5 on ts] "
            "group by k having n > 2",
            "select distinct k from S [range unbounded]",
            "select v / 2 as half from S [range unbounded] "
            "where v >= 10 and k != 0 or v < -5",
            "select L.x from S [range 5 slide 1] as A, "
            "S [partition by k rows 2] as L where A.k == L.k",
        ]
        for sql in samples:
            script = parse(sql)
            assert parse(to_sql(script)) == script, sql

    def test_or_inside_and_is_rejected(self):
        from repro.errors import PlanningError
        from repro.sql.ast import BoolOp, ColumnRef, Comparison, Literal

        inner = BoolOp(
            "or",
            (
                Comparison("==", ColumnRef("a"), Literal(1)),
                Comparison("==", ColumnRef("b"), Literal(2)),
            ),
        )
        bad = BoolOp("and", (inner, Comparison(">", ColumnRef("c"), Literal(0))))
        from repro.sql.unparse import condition_to_sql

        with pytest.raises(PlanningError):
            condition_to_sql(bad)
