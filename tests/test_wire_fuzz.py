"""Fuzzing the wire format: malformed frames must fail *typed*, never crash.

``deserialize_batch`` is the trust boundary of the recovery protocol — the
transport NACKs on :class:`WireFormatError`, so any other exception type
(IndexError, struct.error, UnicodeDecodeError, ...) escaping from a
mangled frame would crash the receiver instead of triggering a
retransmission.
"""

import zlib

import numpy as np
import pytest

from repro.core import Client, StaticSelector
from repro.sql import plan_query
from repro.stream import Batch, CompressedBatch, Field, Schema
from repro.wire.format import WireFormatError, deserialize_batch, serialize_batch

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)
QUERY = "select ts, k, avg(v) as m from S [range 8 slide 8] group by k"


def make_frame(mode="adaptive", seed=0, n=64):
    rng = np.random.default_rng(seed)
    batch = Batch.from_values(
        SCHEMA,
        {
            "ts": np.arange(n) + 100,
            "k": rng.integers(0, 4, n),
            "v": np.round(rng.integers(0, 200, n) / 4, 2),
        },
    )
    plan = plan_query(QUERY, {"S": SCHEMA})
    client = Client(SCHEMA, StaticSelector("ns"), plan.profile)
    return serialize_batch(client.compress_batch(batch).batch)


def reseal(body: bytes) -> bytes:
    """Recompute the CRC trailer so corruption reaches the parser."""
    return body + zlib.crc32(body).to_bytes(4, "little")


class TestBitFlipFuzz:
    def test_single_bit_flips_only_raise_wire_format_error(self):
        frame = make_frame()
        rng = np.random.default_rng(42)
        for _ in range(400):
            mangled = bytearray(frame)
            pos = int(rng.integers(0, len(mangled)))
            mangled[pos] ^= 1 << int(rng.integers(0, 8))
            with pytest.raises(WireFormatError):
                deserialize_batch(bytes(mangled), SCHEMA)

    def test_burst_corruption_only_raises_wire_format_error(self):
        frame = make_frame(seed=1)
        rng = np.random.default_rng(7)
        for _ in range(200):
            mangled = bytearray(frame)
            start = int(rng.integers(0, len(mangled)))
            width = int(rng.integers(1, 32))
            for pos in range(start, min(start + width, len(mangled))):
                mangled[pos] = int(rng.integers(0, 256))
            try:
                deserialize_batch(bytes(mangled), SCHEMA)
            except WireFormatError:
                pass  # the only acceptable exception

    def test_every_truncation_point_raises_wire_format_error(self):
        frame = make_frame(seed=2, n=32)
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                deserialize_batch(frame[:cut], SCHEMA)

    def test_empty_and_garbage_inputs(self):
        for junk in (b"", b"\x00", b"CSDB", b"not a frame at all" * 10):
            with pytest.raises(WireFormatError):
                deserialize_batch(junk, SCHEMA)


class TestResealedBodyFuzz:
    """Corrupt the body *behind* a valid CRC: the parser itself must hold.

    This models a malicious/buggy sender rather than transit noise — every
    structural field (counts, lengths, name sizes) gets fuzzed while the
    checksum stays valid, so the parser's own bounds checks are what is
    exercised.
    """

    def test_resealed_random_corruption_parses_or_fails_typed(self):
        frame = make_frame(seed=3)
        body = frame[:-4]
        rng = np.random.default_rng(1234)
        outcomes = {"ok": 0, "typed": 0}
        for _ in range(500):
            mangled = bytearray(body)
            for _ in range(int(rng.integers(1, 8))):
                pos = int(rng.integers(0, len(mangled)))
                mangled[pos] = int(rng.integers(0, 256))
            try:
                out = deserialize_batch(reseal(bytes(mangled)), SCHEMA)
                assert isinstance(out, CompressedBatch)
                outcomes["ok"] += 1
            except WireFormatError:
                outcomes["typed"] += 1
        # the fuzz actually exercised the failure path, not just no-ops
        assert outcomes["typed"] > 0

    def test_resealed_truncations_fail_typed(self):
        frame = make_frame(seed=4, n=32)
        body = frame[:-4]
        for cut in range(4, len(body)):
            try:
                deserialize_batch(reseal(body[:cut]), SCHEMA)
            except WireFormatError:
                pass

    def test_oversized_length_fields_fail_typed(self):
        # blow up the little-endian u32 tuple-count / length fields one at
        # a time; bounds checks must catch the lie before any allocation
        frame = make_frame(seed=5, n=16)
        body = bytearray(frame[:-4])
        for pos in range(4, min(len(body) - 4, 64)):
            mangled = bytearray(body)
            mangled[pos : pos + 4] = b"\xff\xff\xff\xff"
            try:
                deserialize_batch(reseal(bytes(mangled)), SCHEMA)
            except WireFormatError:
                pass
