"""Unit tests for the bit-level Elias reference coders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitstream import (
    BitReader,
    BitWriter,
    delta_codeword_ints,
    delta_codeword_invert,
    delta_decode_stream,
    delta_encode_stream,
    gamma_codeword_ints,
    gamma_decode_stream,
    gamma_encode_stream,
)
from repro.errors import CodecError
from repro.stats import elias_delta_bits, elias_gamma_bits


class TestBitWriterReader:
    def test_write_read_roundtrip(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b1, 1)
        w.write(0xABCD, 16)
        data = w.getvalue()
        r = BitReader(data)
        assert r.read(3) == 0b101
        assert r.read(1) == 0b1
        assert r.read(16) == 0xABCD

    def test_unary_roundtrip(self):
        w = BitWriter()
        for count in (0, 1, 7, 31, 40, 100):
            w.write_unary(count)
        r = BitReader(w.getvalue())
        for count in (0, 1, 7, 31, 40, 100):
            assert r.read_unary() == count

    def test_write_rejects_overflow(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write(4, 2)
        with pytest.raises(CodecError):
            w.write(-1, 3)

    def test_read_past_end(self):
        r = BitReader(b"\x00")
        r.read(8)
        with pytest.raises(CodecError):
            r.read(1)

    def test_bit_length_tracks_writes(self):
        w = BitWriter()
        w.write(1, 1)
        w.write(0, 13)
        assert w.bit_length == 14


class TestGammaStream:
    def test_known_codewords(self):
        # gamma(1)=1, gamma(2)=010, gamma(3)=011 -> bits 1 010 011 0(pad)
        data = gamma_encode_stream([1, 2, 3])
        assert data == bytes([0b10100110])

    def test_roundtrip(self, rng):
        values = rng.integers(1, 1 << 20, size=300)
        data = gamma_encode_stream(values)
        np.testing.assert_array_equal(gamma_decode_stream(data, 300), values)

    def test_stream_length_matches_bit_math(self):
        values = [1, 2, 5, 100, 65535]
        data = gamma_encode_stream(values)
        bits = sum(elias_gamma_bits(v) for v in values)
        assert len(data) == (bits + 7) // 8

    def test_rejects_nonpositive(self):
        with pytest.raises(CodecError):
            gamma_encode_stream([0])


class TestDeltaStream:
    def test_known_codewords(self):
        # delta(1) = "1"
        assert delta_encode_stream([1]) == bytes([0b10000000])

    def test_roundtrip(self, rng):
        values = rng.integers(1, 1 << 30, size=300)
        data = delta_encode_stream(values)
        np.testing.assert_array_equal(delta_decode_stream(data, 300), values)

    def test_stream_length_matches_bit_math(self):
        values = [1, 2, 16, 255, 1 << 20]
        data = delta_encode_stream(values)
        bits = sum(elias_delta_bits(v) for v in values)
        assert len(data) == (bits + 7) // 8

    def test_rejects_nonpositive(self):
        with pytest.raises(CodecError):
            delta_encode_stream([-1])


class TestCodewordInts:
    def test_gamma_codeword_int_equals_value(self, rng):
        values = rng.integers(1, 1 << 31, size=200)
        codes, bits = gamma_codeword_ints(values)
        np.testing.assert_array_equal(codes, values)
        expected_bits = [elias_gamma_bits(int(v)) for v in values]
        np.testing.assert_array_equal(bits, expected_bits)

    def test_delta_codeword_bits_match_reference(self, rng):
        values = rng.integers(1, 1 << 40, size=200)
        _, bits = delta_codeword_ints(values)
        expected = [elias_delta_bits(int(v)) for v in values]
        np.testing.assert_array_equal(bits, expected)

    def test_delta_codewords_invert(self, rng):
        values = rng.integers(1, 1 << 50, size=500)
        codes, _ = delta_codeword_ints(values)
        np.testing.assert_array_equal(delta_codeword_invert(codes), values)

    def test_delta_codewords_are_strictly_increasing(self):
        values = np.arange(1, 5000, dtype=np.int64)
        codes, _ = delta_codeword_ints(values)
        assert (np.diff(codes) > 0).all()

    def test_delta_boundaries(self):
        # around every power of two the order and inversion must hold
        points = []
        for k in range(1, 50):
            points.extend([(1 << k) - 1, 1 << k, (1 << k) + 1])
        values = np.asarray(points, dtype=np.int64)
        codes, _ = delta_codeword_ints(values)
        np.testing.assert_array_equal(delta_codeword_invert(codes), values)

    def test_delta_rejects_huge(self):
        with pytest.raises(CodecError):
            delta_codeword_ints(np.array([1 << 57], dtype=np.int64))

    def test_invert_rejects_invalid_code(self):
        with pytest.raises(CodecError):
            delta_codeword_invert(np.array([0], dtype=np.int64))


# ----- hypothesis properties -------------------------------------------


_field = st.integers(min_value=1, max_value=64).flatmap(
    lambda nbits: st.tuples(
        st.just(nbits), st.integers(min_value=0, max_value=(1 << nbits) - 1)
    )
)
_op = st.one_of(
    _field.map(lambda f: ("write",) + f),
    st.integers(min_value=0, max_value=200).map(lambda c: ("unary", c)),
)


class TestBitstreamProperties:
    @given(st.lists(_field, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_width_write_read_roundtrip(self, fields):
        w = BitWriter()
        for nbits, value in fields:
            w.write(value, nbits)
        assert w.bit_length == sum(nbits for nbits, _ in fields)
        data = w.getvalue()
        assert len(data) == (w.bit_length + 7) // 8
        r = BitReader(data)
        for nbits, value in fields:
            assert r.read(nbits) == value

    @given(st.lists(_op, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_unary_and_fixed_width(self, ops):
        w = BitWriter()
        for op in ops:
            if op[0] == "write":
                w.write(op[2], op[1])
            else:
                w.write_unary(op[1])
        r = BitReader(w.getvalue())
        for op in ops:
            if op[0] == "write":
                assert r.read(op[1]) == op[2]
            else:
                assert r.read_unary() == op[1]

    @given(st.lists(st.integers(min_value=1, max_value=1 << 40), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_gamma_stream_roundtrip(self, values):
        data = gamma_encode_stream(values)
        np.testing.assert_array_equal(
            gamma_decode_stream(data, len(values)), values
        )

    @given(st.lists(st.integers(min_value=1, max_value=(1 << 56) - 1), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_delta_stream_roundtrip(self, values):
        data = delta_encode_stream(values)
        np.testing.assert_array_equal(
            delta_decode_stream(data, len(values)), values
        )

    @given(st.lists(st.integers(min_value=1, max_value=(1 << 56) - 1), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_delta_codeword_ints_invert_and_preserve_order(self, values):
        arr = np.asarray(values, dtype=np.int64)
        codes, bits = delta_codeword_ints(arr)
        np.testing.assert_array_equal(delta_codeword_invert(codes), arr)
        assert (bits >= 1).all()
        # the integer codeword map must preserve value order (Sec. V claim
        # that ED supports order predicates directly on codes)
        order = np.argsort(arr, kind="stable")
        assert (np.diff(arr[order]) > 0).all() == (
            np.diff(codes[order]) > 0
        ).all()

    @pytest.mark.slow
    @given(
        st.lists(
            st.integers(min_value=1, max_value=(1 << 56) - 1),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=500, deadline=None)
    def test_delta_stream_roundtrip_deep(self, values):
        data = delta_encode_stream(values)
        np.testing.assert_array_equal(
            delta_decode_stream(data, len(values)), values
        )
