"""Scalar-reference equivalence for the vectorized batch kernels.

Every kernel in :mod:`repro.compression.kernels` has two implementations:
the numpy batch kernel (production) and the original scalar loop
(:mod:`repro.compression.scalar_ref`, the oracle).  Hypothesis drives
both through the same inputs and demands *bit-identical* compressed
bytes and *value- and dtype-identical* decode results — the vectorized
rewrite must be invisible on the wire and in the results.

Directed edge cases ride along: empty batches, a single run, all-equal
columns, maximum-width codewords at the aligned-format boundary, and
negative/zero Base-Delta bases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.compression import scalar_ref
from repro.compression import kernels
from repro.compression.kernels import scalar_reference_mode, using_scalar_reference
from repro.compression.registry import PAPER_POOL
from repro.errors import CodecError, CodecNotApplicable

ALL_CODECS = tuple(PAPER_POOL) + ("plwah", "deltachain")


def _column(seed: int, n: int, style: str) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if style == "uniform":
        return rng.integers(0, 1000, n).astype(np.int64)
    if style == "runs":
        reps = rng.integers(1, 20, max(n // 4, 1))
        return np.repeat(rng.integers(0, 30, reps.size), reps)[:n].astype(np.int64)
    if style == "signed":
        return rng.integers(-500, 500, n).astype(np.int64)
    if style == "wide":
        return rng.integers(0, 2**40, n).astype(np.int64)
    return np.full(n, 7, dtype=np.int64)  # allequal


column_strategy = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=300),
    st.sampled_from(["uniform", "runs", "signed", "wide", "allequal"]),
)


def _both_modes(fn):
    """(vectorized result, scalar-reference result) of the same call."""
    vec = fn()
    with scalar_reference_mode():
        ref = fn()
    return vec, ref


def _assert_identical(vec, ref, context=""):
    if isinstance(vec, tuple):
        assert isinstance(ref, tuple) and len(vec) == len(ref), context
        for i, (a, b) in enumerate(zip(vec, ref)):
            _assert_identical(a, b, f"{context}[{i}]")
        return
    if isinstance(vec, np.ndarray):
        assert isinstance(ref, np.ndarray), context
        assert vec.dtype == ref.dtype, f"{context}: {vec.dtype} != {ref.dtype}"
        np.testing.assert_array_equal(vec, ref, err_msg=context)
        return
    assert vec == ref, context


class TestDispatchFlag:
    def test_mode_flag_nests_and_restores(self):
        assert not using_scalar_reference()
        with scalar_reference_mode():
            assert using_scalar_reference()
            with scalar_reference_mode(enabled=False):
                assert not using_scalar_reference()
            assert using_scalar_reference()
        assert not using_scalar_reference()


class TestCodecBitIdentity:
    """compress/decompress must be byte-for-byte mode-independent."""

    @given(column_strategy)
    @settings(max_examples=30, deadline=None)
    def test_compressed_bytes_and_decode_identical(self, spec):
        seed, n, style = spec
        values = _column(seed, n, style)
        for name in ALL_CODECS:
            codec = get_codec(name)
            try:
                vec_cc = codec.compress(values)
            except CodecNotApplicable:
                with scalar_reference_mode():
                    with pytest.raises(CodecNotApplicable):
                        codec.compress(values)
                continue
            with scalar_reference_mode():
                ref_cc = codec.compress(values)
            assert bytes(vec_cc.payload) == bytes(ref_cc.payload), name
            assert vec_cc.nbytes == ref_cc.nbytes, name
            assert set(vec_cc.meta) == set(ref_cc.meta), name
            vec_out = codec.decompress(vec_cc)
            with scalar_reference_mode():
                ref_out = codec.decompress(vec_cc)
            _assert_identical(vec_out, ref_out, name)
            assert vec_out.dtype == np.int64, name
            np.testing.assert_array_equal(vec_out, values, err_msg=name)


class TestStreamKernels:
    @given(
        st.lists(st.integers(min_value=1, max_value=2**55), max_size=200),
        st.sampled_from(["gamma", "delta"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_roundtrip_identical(self, values, kind):
        values = np.asarray(values, dtype=np.int64)
        enc = (
            kernels.gamma_stream_encode
            if kind == "gamma"
            else kernels.delta_stream_encode
        )
        dec = (
            kernels.gamma_stream_decode
            if kind == "gamma"
            else kernels.delta_stream_decode
        )
        vec_bytes, ref_bytes = _both_modes(lambda: enc(values))
        assert vec_bytes == ref_bytes
        vec_out, ref_out = _both_modes(lambda: dec(vec_bytes, values.size))
        _assert_identical(vec_out, ref_out, kind)
        np.testing.assert_array_equal(vec_out, values)

    def test_empty_stream(self):
        for enc, dec in (
            (kernels.gamma_stream_encode, kernels.gamma_stream_decode),
            (kernels.delta_stream_encode, kernels.delta_stream_decode),
        ):
            vec_bytes, ref_bytes = _both_modes(
                lambda enc=enc: enc(np.zeros(0, dtype=np.int64))
            )
            assert vec_bytes == ref_bytes
            vec_out, ref_out = _both_modes(lambda dec=dec, b=vec_bytes: dec(b, 0))
            _assert_identical(vec_out, ref_out)
            assert vec_out.size == 0

    def test_truncated_stream_raises_in_both_modes(self):
        data = kernels.gamma_stream_encode(np.array([5, 9, 1000], dtype=np.int64))
        for mode in (False, True):
            with scalar_reference_mode(enabled=mode):
                with pytest.raises(CodecError):
                    kernels.gamma_stream_decode(data[:1], 3)


class TestAlignedCodewords:
    @given(st.lists(st.integers(min_value=1, max_value=2**31 - 1), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_gamma_codewords_identical(self, values):
        values = np.asarray(values, dtype=np.int64)
        vec, ref = _both_modes(lambda: kernels.gamma_codewords(values))
        _assert_identical(vec, ref, "gamma_codewords")

    @given(st.lists(st.integers(min_value=1, max_value=2**55), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_delta_codewords_and_inverse_identical(self, values):
        values = np.asarray(values, dtype=np.int64)
        vec, ref = _both_modes(lambda: kernels.delta_codewords(values))
        _assert_identical(vec, ref, "delta_codewords")
        codes = vec[0]
        vec_inv, ref_inv = _both_modes(lambda: kernels.delta_invert(codes))
        _assert_identical(vec_inv, ref_inv, "delta_invert")
        np.testing.assert_array_equal(vec_inv, values)

    def test_max_width_codewords(self):
        # EG aligned: widest admissible codeword is 2 * 30 + 1 = 61 bits.
        eg = get_codec("eg")
        values = np.array([1, 2**30, 2**30 - 1], dtype=np.int64) + 0
        vec_cc = eg.compress(values)
        with scalar_reference_mode():
            ref_cc = eg.compress(values)
        assert bytes(vec_cc.payload) == bytes(ref_cc.payload)
        np.testing.assert_array_equal(eg.decompress(vec_cc), values)
        # ED aligned: values just below the codec's 2^53 domain bound.
        ed = get_codec("ed")
        values = np.array([2**53 - 1, 1, 2**52], dtype=np.int64)
        vec_cc = ed.compress(values)
        with scalar_reference_mode():
            ref_cc = ed.compress(values)
        assert bytes(vec_cc.payload) == bytes(ref_cc.payload)
        np.testing.assert_array_equal(ed.decompress(vec_cc), values)


class TestStructureKernels:
    @given(column_strategy)
    @settings(max_examples=30, deadline=None)
    def test_rle_dict_bd_bitmap_identical(self, spec):
        seed, n, style = spec
        values = _column(seed, n, style)
        for fn in (
            kernels.rle_runs,
            kernels.dict_encode,
            kernels.bd_deltas,
            kernels.bitmap_planes,
        ):
            vec, ref = _both_modes(lambda fn=fn: fn(values))
            _assert_identical(vec, ref, fn.__name__)

    def test_single_run_column(self):
        values = np.full(97, -3, dtype=np.int64)
        vec, ref = _both_modes(lambda: kernels.rle_runs(values))
        _assert_identical(vec, ref, "rle_runs")
        assert vec[0].size == 1 and int(vec[1][0]) == 97

    def test_bd_negative_and_zero_bases(self):
        for base_values in (
            np.array([-100, -97, -100], dtype=np.int64),  # negative base
            np.array([0, 5, 3], dtype=np.int64),          # zero base
            np.array([-(2**40), -(2**40) + 7], dtype=np.int64),
        ):
            vec, ref = _both_modes(lambda v=base_values: kernels.bd_deltas(v))
            _assert_identical(vec, ref, "bd_deltas")
            base, deltas = vec
            np.testing.assert_array_equal(base + deltas, base_values)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=400),
        st.sampled_from(["rand", "sparse", "dense", "zero", "one"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_plwah_identical(self, seed, n, style):
        rng = np.random.default_rng(seed)
        if style == "rand":
            bits = rng.random(n) < 0.5
        elif style == "sparse":
            bits = rng.random(n) < 0.02
        elif style == "dense":
            bits = rng.random(n) > 0.02
        elif style == "zero":
            bits = np.zeros(n, dtype=bool)
        else:
            bits = np.ones(n, dtype=bool)
        vec_words, ref_words = _both_modes(lambda: kernels.plwah_encode(bits))
        _assert_identical(vec_words, ref_words, "plwah_encode")
        vec_bits, ref_bits = _both_modes(lambda: kernels.plwah_decode(vec_words, n))
        _assert_identical(vec_bits, ref_bits, "plwah_decode")
        np.testing.assert_array_equal(vec_bits, bits)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=300),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_nsv_identical(self, seed, n, signed):
        rng = np.random.default_rng(seed)
        lo = -(2**20) if signed else 0
        values = rng.integers(lo, 2**20, n).astype(np.int64)
        vec, ref = _both_modes(lambda: kernels.nsv_pack(values, signed))
        _assert_identical(vec, ref, "nsv_pack")
        desc, data = vec
        vec_out, ref_out = _both_modes(
            lambda: kernels.nsv_unpack(desc, data, n, signed)
        )
        _assert_identical(vec_out, ref_out, "nsv_unpack")
        np.testing.assert_array_equal(vec_out, values)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=300),
        st.sampled_from([1, 2, 4, 8]),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_ints_identical(self, seed, n, width, signed):
        rng = np.random.default_rng(seed)
        bits = min(8 * width - (1 if signed else 0), 63)
        hi = 1 << bits
        lo = -hi if signed else 0
        values = rng.integers(lo, hi, n).astype(np.int64)
        vec, ref = _both_modes(lambda: kernels.pack_ints(values, width, signed=signed))
        _assert_identical(vec, ref, "pack_ints")
        vec_out, ref_out = _both_modes(
            lambda: kernels.unpack_ints(vec, width, n, signed=signed)
        )
        _assert_identical(vec_out, ref_out, "unpack_ints")
        np.testing.assert_array_equal(vec_out, values)

    def test_empty_batches(self):
        empty = np.zeros(0, dtype=np.int64)
        for fn in (kernels.rle_runs, kernels.dict_encode, kernels.bitmap_planes):
            vec, ref = _both_modes(lambda fn=fn: fn(empty))
            _assert_identical(vec, ref, fn.__name__)
        vec, ref = _both_modes(lambda: kernels.plwah_encode(np.zeros(0, dtype=bool)))
        _assert_identical(vec, ref, "plwah_encode")
        vec, ref = _both_modes(lambda: kernels.pack_ints(empty, 4))
        _assert_identical(vec, ref, "pack_ints")


class TestNamedScalarOracles:
    """Call the scalar oracles *by name*, next to their dispatchers.

    The hypothesis suites above exercise every pair through the
    ``scalar_reference_mode()`` dispatch; these directed cases pin the
    pairing itself — each dispatcher against an explicit
    ``scalar_ref.<oracle>`` call — so a renamed or rewired oracle fails
    loudly (and the CSD002 scalar-parity lint rule can verify both
    halves of every pair appear in this module).
    """

    VALUES = np.array([0, 1, 2, 255, 256, 65535, 1 << 20], dtype=np.int64)

    def test_pack_int_array_is_the_pack_ints_oracle(self):
        packed = scalar_ref.pack_int_array(self.VALUES, 3)
        np.testing.assert_array_equal(kernels.pack_ints(self.VALUES, 3), packed)
        out = scalar_ref.unpack_int_array(packed, 3, self.VALUES.size)
        np.testing.assert_array_equal(out, self.VALUES)
        np.testing.assert_array_equal(
            kernels.unpack_ints(packed, 3, self.VALUES.size), out
        )

    def test_gamma_codeword_ints_is_the_gamma_codewords_oracle(self):
        values = self.VALUES + 1  # gamma codes are for positive integers
        ref_codes, ref_widths = scalar_ref.gamma_codeword_ints(values)
        vec_codes, vec_widths = kernels.gamma_codewords(values)
        np.testing.assert_array_equal(vec_codes, ref_codes)
        np.testing.assert_array_equal(vec_widths, ref_widths)

    def test_delta_codeword_ints_is_the_delta_codewords_oracle(self):
        values = self.VALUES + 1
        ref_codes, ref_widths = scalar_ref.delta_codeword_ints(values)
        vec_codes, vec_widths = kernels.delta_codewords(values)
        np.testing.assert_array_equal(vec_codes, ref_codes)
        np.testing.assert_array_equal(vec_widths, ref_widths)
        inverted = scalar_ref.delta_codeword_invert(ref_codes)
        np.testing.assert_array_equal(inverted, values)
        np.testing.assert_array_equal(kernels.delta_invert(vec_codes), inverted)
