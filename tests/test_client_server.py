"""Unit tests for the client (compression side) and server (query side)."""

import numpy as np
import pytest

from repro.core import (
    Client,
    CostModel,
    AdaptiveSelector,
    Server,
    StaticSelector,
    SystemParams,
)
from repro.net import Channel
from repro.sql import plan_query
from repro.stream import Batch, Field, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)
CATALOG = {"S": SCHEMA}
QUERY = "select ts, k, avg(v) as m from S [range 8 slide 8] group by k"


def make_batch(n=64, seed=0, lo=0, hi=50):
    rng = np.random.default_rng(seed)
    return Batch.from_values(
        SCHEMA,
        {
            "ts": np.arange(n) + 100,
            "k": rng.integers(0, 4, n),
            "v": np.round(rng.integers(lo * 4, hi * 4, n) / 4, 2),
        },
    )


def make_client(selector=None, **kwargs):
    plan = plan_query(QUERY, CATALOG)
    selector = selector or StaticSelector("ns")
    return Client(SCHEMA, selector, plan.profile, **kwargs), plan


class TestClient:
    def test_compresses_every_column(self):
        client, _ = make_client()
        outcome = client.compress_batch(make_batch())
        assert set(outcome.batch.columns) == {"ts", "k", "v"}
        assert outcome.choices == {"ts": "ns", "k": "ns", "v": "ns"}
        assert outcome.seconds > 0

    def test_identity_ships_declared_field_width(self):
        client, _ = make_client(StaticSelector("identity"))
        batch = make_batch(32)
        outcome = client.compress_batch(batch)
        # Size_T = 8 + 4 + 4 = 16 bytes per tuple
        assert outcome.batch.nbytes == 32 * 16

    def test_redecision_cadence(self, fast_calibration):
        model = CostModel(fast_calibration, SystemParams(), Channel())
        client, _ = make_client(AdaptiveSelector(model), redecide_every=3)
        for i in range(7):
            outcome = client.compress_batch(make_batch(seed=i))
            assert outcome.reselected == (i % 3 == 0)
        assert len(client.decision_log) == 3

    def test_inapplicable_choice_falls_back_to_identity(self):
        # static EG chosen from a non-negative sample, then a batch with
        # negatives arrives: the client must not stall
        client, _ = make_client(StaticSelector("eg"))
        client.compress_batch(make_batch(seed=1))
        negative = Batch.from_values(
            SCHEMA,
            {"ts": [-5, 2], "k": [0, 1], "v": [1.0, 2.0]},
        )
        outcome = client.compress_batch(negative)
        assert outcome.batch.columns["ts"].codec == "identity"

    def test_lookahead_limits_sample(self, fast_calibration):
        model = CostModel(fast_calibration, SystemParams(), Channel())
        client, _ = make_client(AdaptiveSelector(model), lookahead=2)
        upcoming = [make_batch(seed=s) for s in range(5)]
        outcome = client.compress_batch(make_batch(), upcoming=upcoming)
        assert outcome.reselected

    def test_validation(self):
        with pytest.raises(ValueError):
            make_client(redecide_every=0)
        with pytest.raises(ValueError):
            make_client(lookahead=0)


class TestServer:
    def test_direct_columns_not_decoded(self):
        client, plan = make_client(StaticSelector("ns"))
        server = Server(plan)
        report = server.process(client.compress_batch(make_batch()).batch)
        assert report.decoded_columns == ()  # NS serves k (equality), v (affine)
        assert report.query_seconds > 0

    def test_rle_served_from_runs_without_decode(self):
        # RLE is β = 1 but its payload is run-structured, so the server
        # hands the executor (value, length) pairs instead of decompressing.
        client, plan = make_client(StaticSelector("rle"))
        server = Server(plan)
        report = server.process(client.compress_batch(make_batch()).batch)
        assert report.decoded_columns == ()
        assert set(report.direct_columns) == {"k", "ts", "v"}
        assert report.decompress_seconds == 0

    def test_capability_miss_decodes_single_column(self):
        # ED serves equality keys directly but not avg (affine)
        client, plan = make_client(StaticSelector("ed"))
        server = Server(plan)
        report = server.process(client.compress_batch(make_batch()).batch)
        assert report.decoded_columns == ("v",)

    def test_results_match_uncompressed(self):
        batch = make_batch(64, seed=3)
        outputs = {}
        for codec in ("identity", "ns", "bd", "dict", "rle", "bitmap", "nsv"):
            client, plan = make_client(StaticSelector(codec))
            server = Server(plan)
            report = server.process(client.compress_batch(batch).batch)
            outputs[codec] = report.result
        base = outputs.pop("identity")
        for codec, result in outputs.items():
            assert result.n_rows == base.n_rows, codec
            for name in base.columns:
                np.testing.assert_allclose(
                    result.columns[name], base.columns[name],
                    err_msg=f"{codec}:{name}",
                )
