"""End-to-end engine runs with time windows on the dataset surrogates."""

import numpy as np
import pytest

from repro import CompressStreamDB, EngineConfig
from repro.datasets import smart_grid


@pytest.fixture
def engine_factory(fast_calibration):
    def make(mode):
        return CompressStreamDB(
            {"SmartGridStr": smart_grid.SCHEMA},
            "select timestamp, avg(value) as load, count(*) as readings "
            "from SmartGridStr [range 5 seconds slide 5]",
            EngineConfig(mode=mode, calibration=fast_calibration),
        )

    return make


def test_time_windows_end_to_end(engine_factory):
    base = engine_factory("baseline").run(
        smart_grid.source(batch_size=2048, batches=3), collect_outputs=True
    )
    adaptive = engine_factory("adaptive").run(
        smart_grid.source(batch_size=2048, batches=3), collect_outputs=True
    )
    assert base.outputs.n_rows > 0
    assert adaptive.outputs.n_rows == base.outputs.n_rows
    for name in base.outputs.columns:
        np.testing.assert_allclose(
            adaptive.outputs.columns[name], base.outputs.columns[name]
        )
    assert adaptive.space_saving > 0.3
    # ~200 readings/second in the generator, 5-second windows
    readings = base.outputs.columns["readings"]
    assert readings.mean() == pytest.approx(1000, rel=0.3)


def test_time_window_group_by(engine_factory, fast_calibration):
    engine = CompressStreamDB(
        {"SmartGridStr": smart_grid.SCHEMA},
        "select house, avg(value) as load from SmartGridStr "
        "[range 10 seconds slide 10] group by house",
        EngineConfig(mode="adaptive", calibration=fast_calibration),
    )
    report = engine.run(
        smart_grid.source(batch_size=4096, batches=2), collect_outputs=True
    )
    out = report.outputs
    assert out.n_rows > 0
    assert (out.columns["house"] < smart_grid.N_HOUSES).all()
