"""Direct-processing semantics per codec: codes, literals, bounds, decode.

These are the properties the operator kernels rely on (DESIGN.md §2):
equality-capable codes are bijective, order-capable codes preserve <, and
affine codecs satisfy value = scale * code + offset.
"""

import numpy as np
import pytest

from repro.compression import (
    CAP_AFFINE,
    CAP_ORDER,
    get_codec,
)

DIRECT_CODECS = ("identity", "ns", "bd", "dict", "eg", "ed")


@pytest.fixture
def sample(rng):
    return rng.integers(0, 5000, size=400)


@pytest.mark.parametrize("name", DIRECT_CODECS)
class TestDirectCodes:
    def test_codes_bijective(self, name, sample):
        codec = get_codec(name)
        cc = codec.compress(sample)
        codes = codec.direct_codes(cc)
        # equal values <-> equal codes
        for i, j in [(0, 1), (5, 6), (10, 200)]:
            assert (sample[i] == sample[j]) == (codes[i] == codes[j])
        # full bijection: decode restores everything
        np.testing.assert_array_equal(codec.decode_codes(cc, codes), sample)

    def test_codes_order_preserving(self, name, sample):
        codec = get_codec(name)
        if CAP_ORDER not in codec.capabilities:
            pytest.skip("not order-capable")
        cc = codec.compress(sample)
        codes = codec.direct_codes(cc)
        order_values = np.argsort(sample, kind="stable")
        order_codes = np.argsort(codes, kind="stable")
        np.testing.assert_array_equal(order_values, order_codes)

    def test_lower_bound_translates_range_predicates(self, name, sample):
        codec = get_codec(name)
        if CAP_ORDER not in codec.capabilities:
            pytest.skip("not order-capable")
        cc = codec.compress(sample)
        codes = codec.direct_codes(cc)
        for literal in (0, 17, 2500, 4999, 6000):
            expected = sample >= literal
            np.testing.assert_array_equal(
                codes >= codec.lower_bound(cc, literal), expected,
                err_msg=f"literal={literal}",
            )

    def test_encode_literal_equality(self, name, sample):
        codec = get_codec(name)
        cc = codec.compress(sample)
        present = int(sample[3])
        code = codec.encode_literal(cc, present)
        codes = codec.direct_codes(cc)
        if code is None:
            pytest.fail("present literal must be encodable")
        np.testing.assert_array_equal(codes == code, sample == present)


@pytest.mark.parametrize("name", ["identity", "ns", "bd", "eg"])
def test_affine_params_reconstruct_values(name, sample):
    codec = get_codec(name)
    assert CAP_AFFINE in codec.capabilities
    cc = codec.compress(sample)
    scale, offset = codec.affine_params(cc)
    codes = codec.direct_codes(cc)
    np.testing.assert_array_equal(scale * codes + offset, sample)


def test_bd_offset_is_batch_minimum(rng):
    values = rng.integers(900, 1000, size=64)
    codec = get_codec("bd")
    cc = codec.compress(values)
    _, offset = codec.affine_params(cc)
    assert offset == values.min()
    assert cc.meta["width"] == 1  # deltas of <100 fit one byte


def test_dict_absent_literal_returns_none(rng):
    values = rng.integers(0, 100, size=128) * 2  # even values only
    codec = get_codec("dict")
    cc = codec.compress(values)
    assert codec.encode_literal(cc, 3) is None  # odd -> absent
    present = int(values[0])
    assert codec.encode_literal(cc, present) is not None


def test_dict_lower_bound_between_entries(rng):
    values = np.array([10, 20, 30, 40], dtype=np.int64)
    codec = get_codec("dict")
    cc = codec.compress(values)
    # 25 is absent; codes >= lower_bound(25) must select {30, 40}
    bound = codec.lower_bound(cc, 25)
    codes = codec.direct_codes(cc)
    np.testing.assert_array_equal(codes >= bound, values >= 25)


def test_dict_decode_rejects_out_of_range(rng):
    codec = get_codec("dict")
    cc = codec.compress(np.array([1, 2, 3], dtype=np.int64))
    from repro.errors import CodecError

    with pytest.raises(CodecError):
        codec.decode_codes(cc, np.array([99]))


def test_ed_codes_not_affine():
    codec = get_codec("ed")
    assert CAP_AFFINE not in codec.capabilities
    assert CAP_ORDER in codec.capabilities


def test_ns_negative_column_still_direct(rng):
    values = rng.integers(-100, 100, size=256)
    codec = get_codec("ns")
    cc = codec.compress(values)
    assert cc.meta["signed"]
    codes = codec.direct_codes(cc)
    np.testing.assert_array_equal(codes, values)  # NS codes ARE the values
    assert codec.lower_bound(cc, -50) == -50


def test_eg_shift_admits_zero():
    codec = get_codec("eg")
    values = np.array([0, 1, 2], dtype=np.int64)
    cc = codec.compress(values)
    scale, offset = codec.affine_params(cc)
    assert (scale, offset) == (1, -1)
    np.testing.assert_array_equal(codec.direct_codes(cc), values + 1)
