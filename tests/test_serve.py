"""Tests for the resilient serving layer (``repro.serve``).

The acceptance property is differential: a fleet that is killed mid-run
and resumed from checkpoints must produce byte-identical outputs to an
uninterrupted run, and injected crashes/faults must degrade individual
tenants — never the process.  Everything runs in virtual time, so the
suite asserts exact schedules and exact shed sets, not tolerances.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.net.faults import FaultProfile
from repro.net.transport import ReliabilityConfig
from repro.oracle.chaos import ChaosConfig, run_chaos_campaign
from repro.serve import (
    CLOSED,
    DEGRADED_POOL,
    HALF_OPEN,
    HEALTHY,
    OPEN,
    QUARANTINED,
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    CheckpointStore,
    CircuitBreaker,
    FileCheckpointStore,
    RestartPolicy,
    ServeConfig,
    ServeSupervisor,
    TenantCheckpoint,
    TenantSession,
    TenantSpec,
    TokenBucket,
    VirtualClock,
    backpressure_frame,
    parse_backpressure_frame,
)


def spec(tenant, **kwargs):
    kwargs.setdefault("query", "q1")
    kwargs.setdefault("batches", 6)
    kwargs.setdefault("batch_size", 256)
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("checkpoint_every", 2)
    return TenantSpec(tenant=tenant, **kwargs)


def mixed_fleet():
    """Three tenants: one clean, one with a poison batch, one lossy."""
    return [
        spec("t0", query="q1"),
        spec("t1", query="q5", seed=12, crash_batches=(3,)),
        spec(
            "t2",
            query="q4",
            seed=13,
            fault_profile=FaultProfile.lossy(0.04, seed=7),
            reliability=ReliabilityConfig(max_retries=6),
        ),
    ]


def assert_same_outputs(sup_a, sup_b, tenants):
    for tenant in tenants:
        a, b = sup_a.outputs(tenant), sup_b.outputs(tenant)
        assert sorted(a) == sorted(b)
        for index in a:
            assert a[index].columns.keys() == b[index].columns.keys()
            for name in a[index].columns:
                assert np.array_equal(
                    a[index].columns[name], b[index].columns[name]
                ), (tenant, index, name)


# ----- the acceptance test: kill-and-recover differential ----------------


class TestKillAndRecover:
    def test_recovered_run_matches_uninterrupted_run(self):
        specs = mixed_fleet()
        reference = ServeSupervisor(specs, store=CheckpointStore())
        ref_report = reference.run()
        assert ref_report.batches_delivered == ref_report.batches_total

        store = CheckpointStore()
        killed = ServeSupervisor(specs, store=store)
        killed.run(max_steps=9)  # simulated process death mid-fleet
        assert any(len(killed.outputs(s.tenant)) < s.batches for s in specs)

        recovered = ServeSupervisor(specs, store=store, resume=True)
        rec_report = recovered.run()

        assert rec_report.process_crashes == 0
        assert rec_report.batches_delivered == ref_report.batches_delivered
        assert rec_report.tuples_delivered == ref_report.tuples_delivered
        assert_same_outputs(reference, recovered, [s.tenant for s in specs])

    def test_resume_reports_checkpoint_position(self):
        specs = mixed_fleet()
        store = CheckpointStore()
        ServeSupervisor(specs, store=store).run(max_steps=9)
        recovered = ServeSupervisor(specs, store=store, resume=True)
        report = recovered.run()
        resumed = [t for t in report.tenants if t.resumed_from_batch >= 0]
        assert resumed, "at least one tenant should resume from a checkpoint"

    def test_delivery_counters_are_exactly_once(self):
        # batches replayed between the checkpoint and the kill point must
        # overwrite, not double-count
        specs = [spec("solo", batches=8, checkpoint_every=3)]
        store = CheckpointStore()
        ServeSupervisor(specs, store=store).run(max_steps=5)
        recovered = ServeSupervisor(specs, store=store, resume=True)
        report = recovered.run()
        tenant = report.by_tenant()["solo"]
        assert tenant.batches_delivered == 8
        assert tenant.tuples_delivered == 8 * 256


# ----- crash containment and supervision ---------------------------------


class TestCrashContainment:
    def test_poison_batch_is_contained_and_disarmed(self):
        specs = [spec("ok"), spec("boom", seed=12, crash_batches=(2,))]
        supervisor = ServeSupervisor(specs)
        report = supervisor.run()
        boom = report.by_tenant()["boom"]
        assert boom.crashes == 1
        assert boom.restarts == 1
        assert boom.health == HEALTHY
        assert boom.batches_delivered == 6  # the crash batch was retried
        ok = report.by_tenant()["ok"]
        assert ok.crashes == 0 and ok.batches_delivered == 6
        assert report.process_crashes == 0

    def test_restart_budget_exhaustion_quarantines_tenant(self):
        config = ServeConfig(restart=RestartPolicy(max_restarts=2))
        specs = [
            spec("ok"),
            spec("doomed", seed=12, crash_batches=(0, 1, 2, 3)),
        ]
        report = ServeSupervisor(specs, config=config).run()
        doomed = report.by_tenant()["doomed"]
        assert doomed.health == QUARANTINED
        assert doomed.crashes == 3  # budget of 2 restarts + the final straw
        accounted = (
            doomed.batches_delivered
            + doomed.batches_shed
            + doomed.batches_quarantined
        )
        assert accounted == doomed.batches_total
        # the blast radius is one tenant
        assert report.by_tenant()["ok"].health == HEALTHY
        assert report.by_tenant()["ok"].batches_delivered == 6
        assert report.process_crashes == 0

    def test_restart_backoff_is_bounded_exponential(self):
        policy = RestartPolicy(
            max_restarts=10, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_cap_s=0.5,
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)
        assert policy.backoff_s(3) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.5)

    def test_restart_policy_validation(self):
        with pytest.raises(ServeError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ServeError):
            RestartPolicy(backoff_factor=0.5)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ServeError):
            ServeSupervisor([spec("a"), spec("a")])


# ----- circuit breaker ---------------------------------------------------


class TestCircuitBreaker:
    def config(self, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("window", 8)
        kwargs.setdefault("cooldown_s", 1.0)
        return BreakerConfig(**kwargs)

    def test_trips_after_threshold_failures(self):
        breaker = CircuitBreaker(self.config())
        assert breaker.state == CLOSED and not breaker.degraded
        for t in range(3):
            breaker.record(float(t), failed=True)
        assert breaker.state == OPEN
        assert breaker.degraded
        assert breaker.trips == 1

    def test_successes_keep_it_closed(self):
        breaker = CircuitBreaker(self.config())
        for t in range(20):
            breaker.record(float(t), failed=(t % 4 == 0))  # sparse failures
        assert breaker.state == CLOSED

    def test_probe_gated_by_cooldown_then_recovers(self):
        breaker = CircuitBreaker(self.config())
        for t in range(3):
            breaker.record(float(t), failed=True)
        assert not breaker.allow_probe(2.5)  # cooldown ends at 2.0 + 1.0
        assert breaker.state == OPEN
        assert breaker.allow_probe(3.5)
        assert breaker.state == HALF_OPEN
        breaker.record(3.5, failed=False)  # clean probe
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1

    def test_failed_probe_escalates_cooldown(self):
        breaker = CircuitBreaker(self.config())
        for t in range(3):
            breaker.record(float(t), failed=True)
        first_probe_at = breaker.next_probe_at()
        assert breaker.allow_probe(first_probe_at)
        breaker.record(first_probe_at, failed=True)  # probe fails
        assert breaker.state == OPEN
        assert breaker.trips == 2
        second_cooldown = breaker.next_probe_at() - first_probe_at
        first_cooldown = first_probe_at - 2.0
        assert second_cooldown > first_cooldown

    def test_config_validation(self):
        with pytest.raises(ServeError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ServeError):
            BreakerConfig(window=2, failure_threshold=4)
        with pytest.raises(ServeError):
            BreakerConfig(cooldown_s=0.0)
        with pytest.raises(ServeError):
            BreakerConfig(cooldown_cap_s=0.5, cooldown_s=2.0)


# ----- graceful degradation ----------------------------------------------


class TestDegradedMode:
    def test_degraded_session_uses_cheap_pool_only(self):
        session = TenantSession(spec("t"))
        session.set_degraded(True)
        outcome = session.step(0.0)
        assert outcome.delivered
        assert outcome.choices
        assert set(outcome.choices.values()) <= set(DEGRADED_POOL)

    def test_degraded_results_match_full_quality_results(self):
        # degradation changes codecs, never results: every codec is lossless
        normal = TenantSession(spec("t", batches=4))
        degraded = TenantSession(spec("t", batches=4))
        degraded.set_degraded(True)
        while not normal.done:
            normal.step(0.0)
        while not degraded.done:
            degraded.step(0.0)
        assert sorted(normal.outputs) == sorted(degraded.outputs)
        for index in normal.outputs:
            for name in normal.outputs[index].columns:
                assert np.array_equal(
                    normal.outputs[index].columns[name],
                    degraded.outputs[index].columns[name],
                )

    def test_recovery_restores_full_pool(self):
        session = TenantSession(spec("t"))
        session.set_degraded(True)
        session.step(0.0)
        session.set_degraded(False)
        assert session.server.force_decode is False
        outcome = session.step(0.0)
        assert outcome.delivered


# ----- admission, backpressure, shedding ---------------------------------


class TestAdmission:
    def test_token_bucket_spends_and_refills(self):
        bucket = TokenBucket(capacity=2.0, refill_per_s=1.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.next_available_at(0.0) == pytest.approx(1.0)
        assert bucket.try_take(1.0)

    def test_token_bucket_rejects_time_backwards(self):
        bucket = TokenBucket(capacity=2.0, refill_per_s=1.0)
        bucket.try_take(5.0)
        with pytest.raises(ServeError):
            bucket.try_take(4.0)

    def test_shed_decisions_are_seeded_deterministic(self):
        offered = [("a", 12), ("b", 12), ("c", 5), ("d", 13)]
        config = AdmissionConfig(high_watermark=8, seed=3)
        first = AdmissionController(config).shed(offered)
        second = AdmissionController(config).shed(offered)
        assert first == second
        assert ("d", 5) in first  # most backlogged sheds the most
        assert all(t != "c" for t, _ in first)  # under the watermark

    def test_backpressure_frame_round_trip(self):
        from repro.errors import TransportError
        from repro.net.transport import pack_envelope

        assert parse_backpressure_frame(backpressure_frame(True)) is True
        assert parse_backpressure_frame(backpressure_frame(False)) is False
        # a data envelope is not a control frame
        with pytest.raises(ServeError):
            parse_backpressure_frame(pack_envelope(0, b"XOFF"))
        # wire-level corruption keeps the transport taxonomy
        with pytest.raises(TransportError):
            parse_backpressure_frame(backpressure_frame(True)[:-1] + b"x")

    def test_admission_config_validation(self):
        with pytest.raises(ServeError):
            AdmissionConfig(bucket_capacity=0.0)
        with pytest.raises(ServeError):
            AdmissionConfig(low_watermark=9, high_watermark=8)


class TestBackpressureEndToEnd:
    def hot_spec(self):
        # arrivals far outrun a 5 Mbps link: shedding + XOFF must engage
        return spec(
            "hot",
            batches=20,
            arrival_rate_tps=2_000_000.0,
            bandwidth_mbps=5.0,
            checkpoint_every=0,
        )

    def config(self):
        return ServeConfig(
            admission=AdmissionConfig(high_watermark=4, low_watermark=1)
        )

    def test_overloaded_tenant_sheds_and_pauses(self):
        report = ServeSupervisor([self.hot_spec()], config=self.config()).run()
        tenant = report.by_tenant()["hot"]
        assert tenant.batches_shed > 0
        assert tenant.xoff_frames >= 1
        assert tenant.batches_delivered + tenant.batches_shed == 20
        assert tenant.health == HEALTHY
        assert report.process_crashes == 0

    def test_shedding_is_deterministic_across_runs(self):
        def run_once():
            sup = ServeSupervisor([self.hot_spec()], config=self.config())
            report = sup.run()
            return sorted(sup.outputs("hot")), report.by_tenant()["hot"]

        delivered_a, tenant_a = run_once()
        delivered_b, tenant_b = run_once()
        assert delivered_a == delivered_b
        assert tenant_a.batches_shed == tenant_b.batches_shed
        assert tenant_a.xoff_frames == tenant_b.xoff_frames

    def test_batch_mode_tenants_never_shed(self):
        # tenants without an arrival model are not watermark-managed
        report = ServeSupervisor([spec("plain")], config=self.config()).run()
        tenant = report.by_tenant()["plain"]
        assert tenant.batches_shed == 0 and tenant.xoff_frames == 0


# ----- checkpoint stores -------------------------------------------------


class TestCheckpointStores:
    def test_file_store_resume_across_instances(self, tmp_path):
        specs = mixed_fleet()
        reference = ServeSupervisor(specs, store=CheckpointStore())
        reference.run()

        ckpt_dir = tmp_path / "ckpts"
        ServeSupervisor(specs, store=FileCheckpointStore(ckpt_dir)).run(
            max_steps=9
        )
        # a brand-new store instance: state must come from disk alone
        recovered = ServeSupervisor(
            specs, store=FileCheckpointStore(ckpt_dir), resume=True
        )
        report = recovered.run()
        assert report.batches_delivered == report.batches_total
        assert_same_outputs(reference, recovered, [s.tenant for s in specs])

    def test_latest_returns_newest_checkpoint(self):
        store = CheckpointStore()
        store.save(TenantCheckpoint(tenant="t", batches_processed=2, payload=b"a"))
        store.save(TenantCheckpoint(tenant="t", batches_processed=5, payload=b"b"))
        latest = store.latest("t")
        assert latest is not None and latest.batches_processed == 5
        assert store.latest("missing") is None
        assert store.tenants() == ["t"]

    def test_version_mismatch_rejected(self):
        store = CheckpointStore()
        bad = TenantCheckpoint(
            tenant="t", batches_processed=0, payload=b"", version=999
        )
        with pytest.raises(ServeError):
            store.save(bad)

    def test_dump_writes_index_and_payloads(self, tmp_path):
        store = CheckpointStore()
        store.save(TenantCheckpoint(tenant="t", batches_processed=2, payload=b"x"))
        written = store.dump(tmp_path / "dump")
        names = sorted(p.name for p in (tmp_path / "dump").iterdir())
        assert "checkpoints.json" in names
        assert any(name.endswith(".ckpt") for name in names)
        assert len(written) == 2


# ----- virtual clock -----------------------------------------------------


class TestVirtualClock:
    def test_advance_and_advance_to(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == pytest.approx(1.5)
        assert clock.advance_to(1.0) == pytest.approx(1.5)  # no going back
        assert clock.advance_to(2.0) == pytest.approx(2.0)

    def test_invalid_advances_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ServeError):
            clock.advance(-1.0)
        with pytest.raises(ServeError):
            clock.advance(float("nan"))
        with pytest.raises(ServeError):
            VirtualClock(start=-1.0)


# ----- chaos campaign smoke ----------------------------------------------


class TestChaosSmoke:
    def test_small_campaign_is_clean(self, tmp_path):
        config = ChaosConfig(
            cases=2,
            tenants=2,
            batches=4,
            batch_size=256,
            out_dir=str(tmp_path / "artifacts"),
        )
        result = run_chaos_campaign(config)
        assert result.ok, [str(m) for m in result.mismatches]
        assert result.cases_run == 2
        assert result.batches_delivered > 0
        assert not (tmp_path / "artifacts").exists()  # no failures, no files


# ----- CLI ----------------------------------------------------------------


class TestServeCLI:
    def test_serve_command_smoke(self, capsys):
        code = main(
            ["serve", "--tenants", "2", "--batches", "3", "--batch-size", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving report" in out
        assert "HEALTHY" in out

    def test_serve_checkpoint_resume_cycle(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpts")
        args = [
            "serve", "--tenants", "2", "--batches", "4",
            "--batch-size", "256", "--checkpoint-every", "2",
            "--checkpoint-dir", ckpt,
        ]
        assert main(args + ["--max-steps", "5"]) == 0
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "4/4" in out

    def test_chaos_cli_smoke(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["oracle", "--chaos", "--cases", "1", "--tenants", "2"]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out
