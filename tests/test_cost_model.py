"""Unit tests for calibration and the Eq. 1-9 cost model."""

import pytest

from repro.compression import get_codec
from repro.core import (
    CodecTiming,
    CostModel,
    QueryProfile,
    SystemParams,
    calibrate,
)
from repro.core.query_profile import ColumnUse
from repro.errors import CalibrationError
from repro.net import Channel
from repro.stats import ColumnStats


@pytest.fixture
def stats(rng):
    return ColumnStats.from_values(rng.integers(0, 200, 1024), size_c=8)


@pytest.fixture
def model(fast_calibration):
    return CostModel(fast_calibration, SystemParams(), Channel(bandwidth_mbps=500))


class TestCalibration:
    def test_real_calibration_produces_positive_times(self):
        table = calibrate(
            codecs=[get_codec("ns"), get_codec("identity")],
            sizes=(512, 4096),
            repeats=1,
        )
        timing = table.timing("ns")
        assert timing.compress_seconds(10_000) > 0
        assert timing.decompress_seconds(10_000) > 0

    def test_linear_model_evaluation(self):
        t = CodecTiming(1e-8, 1e-6, 2e-8, 2e-6)
        assert t.compress_seconds(100) == pytest.approx(1e-8 * 100 + 1e-6)
        assert t.decompress_seconds(100) == pytest.approx(2e-8 * 100 + 2e-6)

    def test_unknown_codec_rejected(self, fast_calibration):
        with pytest.raises(CalibrationError):
            fast_calibration.timing("zstd")

    def test_bad_sizes_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate(sizes=(100,))
        with pytest.raises(CalibrationError):
            calibrate(sizes=(200, 100))


class TestStageEstimate:
    def test_total_sums_stages(self):
        from repro.core import StageEstimate

        est = StageEstimate(compress=1, trans=2, decompress=3, query=4)
        assert est.total == 10
        double = est + est
        assert double.total == 20


class TestEq2Compression:
    def test_lazy_codec_pays_wait(self, fast_calibration, stats):
        params = SystemParams(t_wait=0.5)
        model = CostModel(fast_calibration, params, Channel(bandwidth_mbps=500))
        profile = QueryProfile()
        eager = model.estimate_column(get_codec("ns"), stats, 1024, None, profile, 0)
        lazy = model.estimate_column(get_codec("bd"), stats, 1024, None, profile, 0)
        assert lazy.compress >= 0.5
        assert eager.compress < 0.5

    def test_faster_client_compresses_faster(self, fast_calibration, stats):
        slow = CostModel(fast_calibration, SystemParams(client_speed=1.0), Channel())
        fast = CostModel(fast_calibration, SystemParams(client_speed=4.0), Channel())
        profile = QueryProfile()
        ns = get_codec("ns")
        assert (
            fast.estimate_column(ns, stats, 4096, None, profile, 0).compress
            == pytest.approx(
                slow.estimate_column(ns, stats, 4096, None, profile, 0).compress / 4
            )
        )


class TestEq45Transmission:
    def test_higher_ratio_lowers_trans(self, model, stats):
        profile = QueryProfile()
        ns = model.estimate_column(get_codec("ns"), stats, 4096, None, profile, 0)
        ident = model.estimate_column(
            get_codec("identity"), stats, 4096, None, profile, 0
        )
        assert ns.trans < ident.trans
        # NS on a 1-byte domain: ~8x fewer bytes
        assert ident.trans / ns.trans == pytest.approx(8.0, rel=0.05)

    def test_single_node_no_trans(self, fast_calibration, stats):
        model = CostModel(fast_calibration, SystemParams(), Channel.single_node())
        est = model.estimate_column(
            get_codec("ns"), stats, 4096, None, QueryProfile(), 0
        )
        assert est.trans == 0.0


class TestEq6Decompression:
    def test_beta_zero_means_no_decode(self, model, stats):
        est = model.estimate_column(
            get_codec("ns"), stats, 4096, None, QueryProfile(), 0
        )
        assert est.decompress == 0.0

    def test_beta_one_pays_decode(self, model, stats):
        est = model.estimate_column(
            get_codec("rle"), stats, 4096, None, QueryProfile(), 0
        )
        assert est.decompress > 0.0

    def test_capability_miss_forces_decode(self, model, stats):
        # avg needs affine; ED lacks it -> decode even though β = 0
        use = ColumnUse("v", caps=frozenset({"affine"}))
        profile = QueryProfile(column_uses={"v": use}, mem_seconds=0.01, op_seconds=0.0)
        est = model.estimate_column(get_codec("ed"), stats, 4096, use, profile, 8)
        assert est.decompress > 0.0
        est_bd = model.estimate_column(get_codec("bd"), stats, 4096, use, profile, 8)
        assert est_bd.decompress == 0.0


class TestEq89Query:
    def test_direct_codec_divides_memory_time(self, model, stats):
        use = ColumnUse("v", caps=frozenset({"affine"}))
        profile = QueryProfile(
            column_uses={"v": use}, mem_seconds=0.08, op_seconds=0.02
        )
        ns = model.estimate_column(get_codec("ns"), stats, 4096, use, profile, 8)
        ident = model.estimate_column(
            get_codec("identity"), stats, 4096, use, profile, 8
        )
        # r' = 8 for NS on this column: memory time shrinks 8x; op time stays
        assert ns.query == pytest.approx(0.02 + 0.08 / 8, rel=0.01)
        assert ident.query == pytest.approx(0.10, rel=0.01)

    def test_decoded_codec_keeps_full_memory_time(self, model, stats):
        use = ColumnUse("v", caps=frozenset({"affine"}))
        profile = QueryProfile(
            column_uses={"v": use}, mem_seconds=0.08, op_seconds=0.02
        )
        rle = model.estimate_column(get_codec("rle"), stats, 4096, use, profile, 8)
        assert rle.query == pytest.approx(0.10, rel=0.01)

    def test_unreferenced_column_has_no_query_cost(self, model, stats):
        profile = QueryProfile(mem_seconds=1.0, op_seconds=1.0)
        est = model.estimate_column(get_codec("ns"), stats, 4096, None, profile, 8)
        assert est.query == 0.0


class TestBatchEstimate:
    def test_sums_columns_and_charges_wait_once(self, fast_calibration, rng):
        params = SystemParams(t_wait=0.3)
        model = CostModel(fast_calibration, params, Channel(bandwidth_mbps=500))
        stats = {
            "a": ColumnStats.from_values(rng.integers(0, 50, 512), size_c=8),
            "b": ColumnStats.from_values(rng.integers(0, 50, 512), size_c=4),
        }
        choices = {"a": get_codec("bd"), "b": get_codec("rle")}  # both lazy
        est = model.estimate_batch(choices, stats, 512, QueryProfile())
        # two lazy codecs but t_wait charged exactly once
        lazy_wait = est.compress - sum(
            model.estimate_column(c, stats[n], 512, None, QueryProfile(), 0).compress
            - params.t_wait
            for n, c in choices.items()
        )
        assert lazy_wait == pytest.approx(params.t_wait)

    def test_missing_stats_rejected(self, model, stats):
        with pytest.raises(CalibrationError):
            model.estimate_batch({"ghost": get_codec("ns")}, {}, 512, QueryProfile())
