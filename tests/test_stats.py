"""Unit tests for column statistics (the Eq. 10-17 inputs)."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.stats import (
    ColumnStats,
    average_run_length,
    elias_delta_bits,
    elias_gamma_bits,
    value_domain,
)


class TestEliasBits:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 1), (2, 3), (3, 3), (4, 5), (7, 5), (8, 7), (255, 15), (256, 17)],
    )
    def test_gamma_lengths(self, value, expected):
        assert elias_gamma_bits(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        # delta(x) = gamma(len) + (len-1) bits where len = bitlen(x)
        [(1, 1), (2, 4), (3, 4), (4, 5), (7, 5), (8, 8), (15, 8), (16, 9), (255, 14)],
    )
    def test_delta_lengths(self, value, expected):
        assert elias_delta_bits(value) == expected

    def test_delta_shorter_than_gamma_for_large_values(self):
        assert elias_delta_bits(1 << 30) < elias_gamma_bits(1 << 30)

    @pytest.mark.parametrize("fn", [elias_gamma_bits, elias_delta_bits])
    def test_rejects_nonpositive(self, fn):
        with pytest.raises(CodecError):
            fn(0)
        with pytest.raises(CodecError):
            fn(-3)


class TestRunLength:
    def test_all_equal(self):
        assert average_run_length(np.full(100, 5)) == 100.0

    def test_all_distinct(self):
        assert average_run_length(np.arange(100)) == 1.0

    def test_mixed(self):
        # runs: [1,1], [2], [3,3,3] -> 6 values / 3 runs
        assert average_run_length(np.array([1, 1, 2, 3, 3, 3])) == 2.0

    def test_empty(self):
        assert average_run_length(np.zeros(0, dtype=np.int64)) == 0.0

    def test_single(self):
        assert average_run_length(np.array([9])) == 1.0


class TestValueDomain:
    def test_unsigned_widths(self):
        values = np.array([0, 1, 255, 256, 65536, 1 << 31], dtype=np.int64)
        np.testing.assert_array_equal(value_domain(values), [1, 1, 1, 2, 3, 4])

    def test_signed_column_penalizes_positives_too(self):
        # 200 fits one unsigned byte but needs 2 signed bytes
        widths = value_domain(np.array([-1, 200], dtype=np.int64))
        np.testing.assert_array_equal(widths, [1, 2])

    def test_signed_boundaries(self):
        values = np.array([-128, -129, 127, 128], dtype=np.int64)
        widths = value_domain(values, signed=True)
        np.testing.assert_array_equal(widths, [1, 2, 1, 2])

    def test_forced_unsigned_mode(self):
        widths = value_domain(np.array([127, 128, 255], dtype=np.int64), signed=False)
        np.testing.assert_array_equal(widths, [1, 1, 1])

    def test_huge_values(self):
        values = np.array([(1 << 62) + 12345, 1 << 53], dtype=np.int64)
        np.testing.assert_array_equal(value_domain(values), [8, 7])

    def test_empty(self):
        assert value_domain(np.zeros(0, dtype=np.int64)).size == 0


class TestColumnStats:
    def test_basic_fields(self):
        values = np.array([3, 3, 3, 10, 10, 255], dtype=np.int64)
        st = ColumnStats.from_values(values, size_c=4)
        assert st.n == 6
        assert st.size_c == 4
        assert (st.min_value, st.max_value) == (3, 255)
        assert st.kindnum == 3
        assert st.avg_run_length == 2.0
        assert st.value_domain_max == 1
        assert st.value_domain_sum == 6

    def test_default_size_c_is_8(self):
        st = ColumnStats.from_values(np.array([1]))
        assert st.size_c == 8

    def test_rejects_empty(self):
        with pytest.raises(CodecError):
            ColumnStats.from_values(np.zeros(0, dtype=np.int64))

    def test_eg_domain(self):
        # max 254 -> gamma(255) is 15 bits -> 2 bytes
        st = ColumnStats.from_values(np.array([0, 254]))
        assert st.eg_domain_bytes == 2

    def test_ed_domain(self):
        # max 254 -> delta(255) is 14 bits -> 2 bytes
        st = ColumnStats.from_values(np.array([0, 254]))
        assert st.ed_domain_bytes == 2

    def test_elias_domains_reject_negatives(self):
        st = ColumnStats.from_values(np.array([-1, 5]))
        assert not st.all_positive_domain
        with pytest.raises(CodecError):
            _ = st.eg_domain_bytes
        with pytest.raises(CodecError):
            _ = st.ed_domain_bytes

    def test_ns_width_is_max_value_domain(self):
        st = ColumnStats.from_values(np.array([1, 300, 5]))
        assert st.ns_width == 2

    def test_bd_domain_uses_spread_not_magnitude(self):
        st = ColumnStats.from_values(np.array([1_000_000, 1_000_050]))
        assert st.bd_domain_bytes == 1

    @pytest.mark.parametrize(
        "kindnum,expected",
        [(1, 1), (2, 1), (255, 1), (256, 1), (257, 2), (65536, 2), (65537, 3)],
    )
    def test_dict_code_bytes(self, kindnum, expected):
        st = ColumnStats.from_values(np.arange(max(kindnum, 1)))
        assert st.kindnum == max(kindnum, 1)
        assert st.dict_code_bytes == expected

    @pytest.mark.parametrize(
        "kindnum,expected", [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (8, 8), (9, 16)]
    )
    def test_bitmap_bits_per_element(self, kindnum, expected):
        st = ColumnStats.from_values(np.arange(kindnum))
        assert st.bitmap_bits_per_element == expected

    def test_width_histogram_sums_to_n(self):
        values = np.array([1, 300, 70000, -5], dtype=np.int64)
        st = ColumnStats.from_values(values)
        assert sum(st.width_histogram) == st.n
