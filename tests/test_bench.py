"""Tests for the benchmark harness (``repro.bench``).

Covers the stats math, spec/registry validation, discovery of the real
``benchmarks/`` directory, the runner on synthetic specs, the JSON
schema round-trip, the perf comparator's pass/fail/tolerance edges, and
the ``python -m repro bench`` CLI.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchRegistryError,
    BenchSchemaError,
    Metric,
    Registry,
    TimingStats,
    coerce_metrics,
    compare_docs,
    compare_files,
    discover,
    median,
    percentile,
    register,
    run_spec,
    run_suites,
    sample_stdev,
    suite_filename,
    validate_suite_doc,
)
from repro.cli import main

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


# ----- stats ----------------------------------------------------------------


class TestStats:
    def test_percentile_matches_numpy_linear(self):
        np = pytest.importorskip("numpy")
        samples = [0.5, 1.0, 2.0, 4.0, 8.0]
        for q in (0, 25, 50, 75, 90, 95, 100):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_percentile_single_sample(self):
        assert percentile([3.25], 95) == 3.25

    def test_percentile_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_median_even_count_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_stdev_known_value(self):
        # sample (n-1) stdev of 2,4,4,4,5,5,7,9 is ~2.138
        assert sample_stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            2.13808993, abs=1e-6
        )

    def test_stdev_degenerate(self):
        assert sample_stdev([]) == 0.0
        assert sample_stdev([1.0]) == 0.0

    def test_from_samples_summary(self):
        stats = TimingStats.from_samples([3.0, 1.0, 2.0])
        assert stats.median_s == 2.0
        assert stats.mean_s == 2.0
        assert (stats.min_s, stats.max_s) == (1.0, 3.0)
        assert stats.samples_s == [3.0, 1.0, 2.0]

    def test_from_samples_rejects_bad_input(self):
        with pytest.raises(ValueError):
            TimingStats.from_samples([])
        with pytest.raises(ValueError):
            TimingStats.from_samples([1.0, -0.5])

    def test_doc_round_trip(self):
        stats = TimingStats.from_samples([0.25, 0.5, 0.125])
        assert TimingStats.from_doc(stats.to_doc()) == stats


# ----- registry -------------------------------------------------------------


def _spec(**overrides):
    kwargs = {
        "name": "toy",
        "suite": "paper",
        "fn": lambda n=1: {"n": n},
        "params": {"n": 4},
    }
    kwargs.update(overrides)
    return register(**kwargs)


class TestRegistry:
    def test_metric_validates_direction(self):
        assert Metric(1.0).better == "higher"  # explicit Metric defaults to gated
        assert Metric(1.0, better="lower").better == "lower"
        assert Metric(1.0, better=None).better is None
        with pytest.raises(BenchRegistryError):
            Metric(1.0, better="sideways")

    def test_coerce_metrics_wraps_bare_numbers(self):
        out = coerce_metrics({"a": 2.5, "b": Metric(1.0, better="lower")})
        assert out["a"].value == 2.5 and out["a"].better is None
        assert out["b"].better == "lower"

    def test_spec_validation(self):
        with pytest.raises(BenchRegistryError):
            _spec(name="bad name!")
        with pytest.raises(BenchRegistryError):
            _spec(suite="nonexistent")
        with pytest.raises(BenchRegistryError):
            _spec(fn="not callable")
        with pytest.raises(BenchRegistryError):
            _spec(tolerance=-0.1)
        with pytest.raises(BenchRegistryError):
            _spec(quick_params={"unknown_param": 1})

    def test_run_params_quick_overlay(self):
        spec = _spec(params={"n": 8, "m": 2}, quick_params={"n": 1})
        assert spec.run_params() == {"n": 8, "m": 2}
        assert spec.run_params(quick=True) == {"n": 1, "m": 2}

    def test_registry_duplicate_name_rejected(self):
        registry = Registry()
        registry.add(_spec())
        with pytest.raises(BenchRegistryError):
            registry.add(_spec())

    def test_registry_select(self):
        registry = Registry()
        registry.add(_spec(name="alpha", suite="paper"))
        registry.add(_spec(name="beta", suite="ablation"))
        assert [s.name for s in registry.select(suite="paper")] == ["alpha"]
        assert [s.name for s in registry.select(pattern="BET")] == ["beta"]
        assert len(registry.select()) == 2
        with pytest.raises(BenchRegistryError):
            registry.select(suite="nope")


class TestDiscovery:
    def test_discovers_all_repo_benchmarks(self):
        registry = discover(BENCH_DIR)
        names = registry.names()
        assert len(names) == len(list(BENCH_DIR.glob("bench_*.py")))
        assert "fig5_throughput" in names
        assert "fault_recovery" in names
        # every discovered spec writes tables into benchmarks/results
        for name in names:
            assert Path(registry.get(name).results_dir) == BENCH_DIR / "results"

    def test_suites_cover_the_registered_lanes(self):
        registry = discover(BENCH_DIR)
        assert registry.suites() == [
            "paper",
            "ablation",
            "robustness",
            "kernels",
            "workloads",
            "optimizer",
            "cascades",
        ]

    def test_missing_spec_is_an_error(self, tmp_path):
        (tmp_path / "bench_empty.py").write_text("x = 1\n")
        with pytest.raises(BenchRegistryError):
            discover(tmp_path)

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(BenchRegistryError):
            discover(tmp_path / "nope")


# ----- runner ---------------------------------------------------------------


class TestRunner:
    def test_counts_setup_warmup_and_repeats(self):
        calls = {"setup": 0, "fn": 0, "check": 0}

        def fn(n=1):
            calls["fn"] += 1
            return {"n": n}

        def setup():
            calls["setup"] += 1

        def check(result):
            calls["check"] += 1
            assert result["n"] == 4

        spec = _spec(fn=fn, setup=setup, check=check)
        bench = run_spec(spec, repeats=3, warmup=2, printer=lambda _msg: None)
        assert calls == {"setup": 1, "fn": 5, "check": 1}
        assert len(bench.timing.samples_s) == 3
        assert bench.checked

    def test_quick_mode_overlays_params_and_skips_check(self):
        seen = []

        def fn(n=1):
            seen.append(n)
            return {"n": n}

        def check(result):
            raise AssertionError("check must not run in quick mode")

        spec = _spec(fn=fn, check=check, quick_params={"n": 2})
        bench = run_spec(spec, quick=True, printer=lambda _msg: None)
        assert seen == [2]
        assert not bench.checked

    def test_metrics_and_tuples(self):
        spec = _spec(
            metrics=lambda result: {"m": Metric(result["n"], better="higher")},
            tuples=lambda result: result["n"] * 1000,
        )
        bench = run_spec(spec, printer=lambda _msg: None)
        assert bench.metrics["m"].value == 4
        assert bench.tuples == 4000
        assert bench.tuples_per_second == bench.tuples / bench.timing.median_s

    def test_report_blocks_written_as_tables(self, tmp_path):
        spec = _spec(
            report=lambda result: ["block one", "block two"],
            results_dir=tmp_path,
        )
        run_spec(spec, printer=lambda _msg: None)
        assert (tmp_path / "toy.txt").read_text() == "block one\n\nblock two\n"

    def test_quick_mode_does_not_write_tables(self, tmp_path):
        spec = _spec(
            report=lambda result: ["block"],
            quick_params={"n": 1},
            results_dir=tmp_path,
        )
        run_spec(spec, quick=True, printer=lambda _msg: None)
        assert not (tmp_path / "toy.txt").exists()

    def test_run_suites_writes_valid_schema_docs(self, tmp_path):
        specs = [
            _spec(name="one", suite="paper", tuples=lambda r: 10),
            _spec(name="two", suite="ablation"),
        ]
        written = run_suites(
            specs, json_dir=tmp_path, repeats=2, printer=lambda _msg: None
        )
        assert set(written) == {"paper", "ablation"}
        for suite, path in written.items():
            assert path == tmp_path / suite_filename(suite)
            doc = json.loads(path.read_text())
            validate_suite_doc(doc)
            assert doc["schema_version"] == SCHEMA_VERSION
            assert doc["suite"] == suite
            assert doc["repeats"] == 2
            assert len(doc["results"]) == 1
            assert len(doc["results"][0]["timing"]["samples_s"]) == 2


# ----- schema ---------------------------------------------------------------


def _make_doc(tmp_path, name="toy", **spec_overrides):
    spec = _spec(
        name=name,
        metrics=lambda result: {"gain": Metric(2.0, better="higher")},
        tuples=lambda result: 1000,
        **spec_overrides,
    )
    path = run_suites(
        [spec], json_dir=tmp_path, printer=lambda _msg: None
    )["paper"]
    return json.loads(path.read_text()), path


class TestSchema:
    def test_round_trip_validates(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        validate_suite_doc(doc)

    def test_rejects_wrong_version(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_suite_doc(doc)

    def test_rejects_bad_metric_direction(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        doc["results"][0]["metrics"]["gain"]["better"] = "sideways"
        with pytest.raises(BenchSchemaError, match="better"):
            validate_suite_doc(doc)

    def test_rejects_duplicate_result_names(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        doc["results"].append(doc["results"][0])
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_suite_doc(doc)

    def test_rejects_suite_mismatch(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        doc["results"][0]["suite"] = "ablation"
        with pytest.raises(BenchSchemaError, match="suite"):
            validate_suite_doc(doc)

    def test_environment_is_captured(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        env = doc["environment"]
        assert env["python"] == sys.version.split()[0]
        for key in ("implementation", "platform", "machine", "numpy", "commit"):
            assert key in env


# ----- compare --------------------------------------------------------------


class TestCompare:
    def test_identical_docs_pass(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        report = compare_docs(doc, doc)
        assert report.ok and not report.invalid
        assert report.exit_code() == 0
        # median_s, tuples_per_second and the directional metric gate
        metrics = {d.metric for d in report.deltas}
        assert metrics == {"timing.median_s", "tuples_per_second", "gain"}

    def test_timing_regression_fails(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        current = json.loads(json.dumps(doc))
        current["results"][0]["timing"]["median_s"] = (
            doc["results"][0]["timing"]["median_s"] * 10
        )
        report = compare_docs(doc, current, tolerance=0.35)
        assert report.exit_code() == 1
        assert any(d.metric == "timing.median_s" for d in report.regressions)

    def test_directional_metric_drop_fails(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        current = json.loads(json.dumps(doc))
        current["results"][0]["metrics"]["gain"]["value"] = 1.0  # was 2.0
        report = compare_docs(doc, current, tolerance=0.35)
        assert [d.metric for d in report.regressions] == ["gain"]

    def test_improvement_and_within_tolerance_pass(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        current = json.loads(json.dumps(doc))
        current["results"][0]["metrics"]["gain"]["value"] = 2.5  # improvement
        current["results"][0]["timing"]["median_s"] *= 1.1  # within 35%
        report = compare_docs(doc, current, tolerance=0.35)
        assert report.exit_code() == 0

    def test_tolerance_boundary_is_exclusive(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        current = json.loads(json.dumps(doc))
        current["results"][0]["metrics"]["gain"]["value"] = 2.0 * (1 - 0.35)
        report = compare_docs(doc, current, tolerance=0.35)
        assert report.exit_code() == 0  # exactly at tolerance: not regressed
        current["results"][0]["metrics"]["gain"]["value"] = 2.0 * (1 - 0.36)
        report = compare_docs(doc, current, tolerance=0.35)
        assert report.exit_code() == 1

    def test_informational_metric_never_gates(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        doc["results"][0]["metrics"]["note"] = {"value": 100.0, "better": None}
        current = json.loads(json.dumps(doc))
        current["results"][0]["metrics"]["note"]["value"] = 0.001
        report = compare_docs(doc, current)
        assert report.exit_code() == 0
        assert all(d.metric != "note" for d in report.deltas)

    def test_no_gate_timings_demotes_wall_clock(self, tmp_path):
        # cross-machine mode: a 10x timing blowup is informational, but a
        # ratio-metric drop still trips the gate
        doc, _path = _make_doc(tmp_path)
        current = json.loads(json.dumps(doc))
        current["results"][0]["timing"]["median_s"] = (
            doc["results"][0]["timing"]["median_s"] * 10
        )
        report = compare_docs(doc, current, tolerance=0.35, gate_timings=False)
        assert report.exit_code() == 0
        # the timing deltas are still reported, just ungated
        ungated = {d.metric for d in report.deltas if not d.gated}
        assert ungated == {"timing.median_s", "tuples_per_second"}
        assert "info" in report.format_table()

        current["results"][0]["metrics"]["gain"]["value"] = 1.0  # was 2.0
        report = compare_docs(doc, current, tolerance=0.35, gate_timings=False)
        assert report.exit_code() == 1
        assert [d.metric for d in report.regressions] == ["gain"]

    def test_per_benchmark_tolerance_from_baseline(self, tmp_path):
        doc, _path = _make_doc(tmp_path, tolerance=0.5)
        current = json.loads(json.dumps(doc))
        current["results"][0]["metrics"]["gain"]["value"] = 1.2  # -40%
        assert compare_docs(doc, current).exit_code() == 0  # within 50%
        assert compare_docs(doc, current, tolerance=0.3).exit_code() == 1

    def test_missing_benchmark_fails(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        current = json.loads(json.dumps(doc))
        current["results"] = []
        report = compare_docs(doc, current)
        assert report.missing == ["toy"]
        assert report.exit_code() == 1

    def test_param_mismatch_is_invalid(self, tmp_path):
        doc, _path = _make_doc(tmp_path)
        current = json.loads(json.dumps(doc))
        current["results"][0]["params"]["n"] = 99
        report = compare_docs(doc, current)
        assert report.invalid
        assert report.exit_code() == 2

    def test_compare_files_round_trip(self, tmp_path):
        _doc, path = _make_doc(tmp_path)
        report = compare_files(path, path)
        assert report.exit_code() == 0

    def test_compare_files_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchSchemaError):
            compare_files(bad, bad)
        with pytest.raises(BenchSchemaError):
            compare_files(tmp_path / "missing.json", bad)


# ----- CLI ------------------------------------------------------------------


TOY_BENCH = """\
from repro.bench import Metric, register


def collect(n=4):
    return {"n": n}


SPEC = register(
    name="toy_cli",
    suite="paper",
    fn=collect,
    params={"n": 4},
    quick_params={"n": 2},
    metrics=lambda result: {"n_gain": Metric(result["n"], better="higher")},
    tuples=lambda result: result["n"] * 100,
)
"""


@pytest.fixture()
def toy_bench_dir(tmp_path):
    bench_dir = tmp_path / "benches"
    bench_dir.mkdir()
    (bench_dir / "bench_toy.py").write_text(TOY_BENCH)
    return bench_dir


class TestCLI:
    def test_list(self, capsys):
        assert main(["bench", "--list", "--bench-dir", str(BENCH_DIR)]) == 0
        out = capsys.readouterr().out
        assert "fig5_throughput" in out
        assert "robustness" in out

    def test_run_writes_json(self, toy_bench_dir, tmp_path, capsys):
        json_dir = tmp_path / "out"
        code = main(
            [
                "bench",
                "--bench-dir",
                str(toy_bench_dir),
                "--repeats",
                "2",
                "--json-dir",
                str(json_dir),
            ]
        )
        assert code == 0
        doc = json.loads((json_dir / "BENCH_paper.json").read_text())
        validate_suite_doc(doc)
        assert doc["results"][0]["name"] == "toy_cli"
        assert "toy_cli" in capsys.readouterr().out

    def test_filter_without_match_errors(self, toy_bench_dir, capsys):
        code = main(
            ["bench", "--bench-dir", str(toy_bench_dir), "--filter", "nope"]
        )
        assert code == 2
        assert "no benchmarks match" in capsys.readouterr().err

    def test_compare_detects_synthetic_regression(
        self, toy_bench_dir, tmp_path, capsys
    ):
        json_dir = tmp_path / "out"
        assert (
            main(
                [
                    "bench",
                    "--bench-dir",
                    str(toy_bench_dir),
                    "--json-dir",
                    str(json_dir),
                ]
            )
            == 0
        )
        baseline = json_dir / "BENCH_paper.json"
        current = tmp_path / "current.json"
        doc = json.loads(baseline.read_text())
        doc["results"][0]["metrics"]["n_gain"]["value"] = 0.1
        current.write_text(json.dumps(doc))
        capsys.readouterr()

        code = main(
            ["bench", "--compare", str(baseline), str(current), "--tolerance", "0.35"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "FAIL" in out

        code = main(
            ["bench", "--compare", str(baseline), str(baseline), "--tolerance", "0.35"]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_no_gate_timings_flag(self, toy_bench_dir, tmp_path, capsys):
        json_dir = tmp_path / "out"
        assert (
            main(
                [
                    "bench",
                    "--bench-dir",
                    str(toy_bench_dir),
                    "--json-dir",
                    str(json_dir),
                ]
            )
            == 0
        )
        baseline = json_dir / "BENCH_paper.json"
        current = tmp_path / "current.json"
        doc = json.loads(baseline.read_text())
        doc["results"][0]["timing"]["median_s"] *= 10  # cross-machine blowup
        current.write_text(json.dumps(doc))
        capsys.readouterr()

        args = ["bench", "--compare", str(baseline), str(current)]
        assert main(args) == 1  # gated by default
        capsys.readouterr()
        assert main(args + ["--no-gate-timings"]) == 0
        assert "info" in capsys.readouterr().out

    def test_subprocess_entry_point(self, toy_bench_dir, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "bench",
                "--bench-dir",
                str(toy_bench_dir),
                "--filter",
                "toy",
                "--repeats",
                "1",
                "--json-dir",
                str(tmp_path / "json"),
            ],
            capture_output=True,
            text=True,
            cwd=str(BENCH_DIR.parent),
            env={
                "PYTHONPATH": str(BENCH_DIR.parent / "src"),
                "PATH": "/usr/bin:/bin",
            },
            check=False,
        )
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "json" / "BENCH_paper.json").exists()
