"""Integration tests for the pipeline and the engine facade."""

import numpy as np
import pytest

from repro import CompressStreamDB, EngineConfig, SystemParams
from repro.errors import EngineError
from repro.stream import ArraySource, Field, GeneratorSource, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)
QUERY = "select ts, k, avg(v) as m from S [range 16 slide 16] group by k"


def source(batches=4, n=256, seed=0):
    def make(i):
        rng = np.random.default_rng(seed + i)
        return {
            "ts": np.arange(n) + i * n,
            "k": rng.integers(0, 4, n),
            "v": np.round(rng.integers(0, 200, n) / 4, 2),
        }

    return GeneratorSource(SCHEMA, make, limit=batches)


def engine(mode="adaptive", calibration=None, **cfg):
    return CompressStreamDB(
        {"S": SCHEMA},
        QUERY,
        EngineConfig(mode=mode, calibration=calibration, **cfg),
    )


class TestEngineModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(EngineError):
            engine(mode="turbo")

    def test_unknown_static_codec_rejected(self):
        with pytest.raises(EngineError):
            engine(mode="static:zstd")

    def test_schema_shorthand_catalog(self):
        e = CompressStreamDB(SCHEMA, QUERY, stream_name="S")
        assert e.plan.stream == "S"

    def test_with_mode_copies(self, fast_calibration):
        e = engine(calibration=fast_calibration)
        b = e.with_mode("baseline")
        assert b.config.mode == "baseline"
        assert e.config.mode == "adaptive"


class TestRunReports:
    def test_baseline_run_accounting(self, fast_calibration):
        rep = engine("baseline", fast_calibration).run(source())
        assert rep.profiler.batches == 4
        assert rep.tuples == 4 * 256
        assert rep.space_saving == 0.0
        assert rep.compression_ratio == 1.0
        assert rep.throughput > 0
        assert rep.avg_latency > 0

    def test_adaptive_saves_space_and_bytes(self, fast_calibration):
        base = engine("baseline", fast_calibration).run(source())
        adaptive = engine("adaptive", fast_calibration).run(source())
        assert adaptive.space_saving > 0.3
        assert adaptive.profiler.bytes_sent < base.profiler.bytes_sent
        assert adaptive.profiler.bytes_uncompressed == base.profiler.bytes_uncompressed

    def test_results_identical_across_modes(self, fast_calibration):
        reports = {
            mode: engine(mode, fast_calibration).run(source(), collect_outputs=True)
            for mode in ("baseline", "adaptive", "static:bd", "static:bitmap")
        }
        base = reports.pop("baseline").outputs
        for mode, rep in reports.items():
            assert rep.outputs.n_rows == base.n_rows, mode
            for name in base.columns:
                np.testing.assert_allclose(
                    rep.outputs.columns[name], base.columns[name],
                    err_msg=f"{mode}:{name}",
                )

    def test_max_batches_limits_run(self, fast_calibration):
        rep = engine("baseline", fast_calibration).run(
            source(batches=10), max_batches=3
        )
        assert rep.profiler.batches == 3

    def test_breakdown_fractions_sum_to_one(self, fast_calibration):
        rep = engine("adaptive", fast_calibration).run(source())
        assert sum(rep.breakdown().values()) == pytest.approx(1.0)

    def test_summary_string(self, fast_calibration):
        rep = engine("baseline", fast_calibration).run(source())
        assert "throughput" in rep.summary()

    def test_decision_log_populated(self, fast_calibration):
        rep = engine("adaptive", fast_calibration).run(source())
        assert rep.decision_log
        assert set(rep.final_choices) == {"ts", "k", "v"}


class TestWaitAccounting:
    def test_lazy_choice_charges_wait(self, fast_calibration):
        cfg = dict(calibration=fast_calibration, params=SystemParams(t_wait=0.01))
        lazy = engine("static:bd", **cfg).run(source())
        eager = engine("static:ns", **cfg).run(source())
        assert lazy.stage_seconds()["wait"] == pytest.approx(0.04)
        assert eager.stage_seconds()["wait"] == 0.0


class TestBandwidthEffect:
    @pytest.mark.parametrize("mbps,faster", [(10, True), (None, False)])
    def test_compression_pays_only_when_network_is_bottleneck(
        self, fast_calibration, mbps, faster
    ):
        base = engine("baseline", fast_calibration, bandwidth_mbps=mbps).run(source())
        comp = engine("static:ns", fast_calibration, bandwidth_mbps=mbps).run(source())
        if faster:
            assert comp.total_seconds < base.total_seconds
        # single-node: compression cannot reduce transmission (there is none)
        if mbps is None:
            assert comp.stage_seconds()["trans"] == 0.0


class TestArraySource:
    def test_batches_and_tail(self):
        cols = {
            "ts": np.arange(100),
            "k": np.zeros(100, dtype=np.int64),
            "v": np.zeros(100),
        }
        src = ArraySource(SCHEMA, cols, batch_size=32)
        sizes = [b.n for b in src]
        assert sizes == [32, 32, 32]  # tail of 4 dropped
        src_tail = ArraySource(SCHEMA, cols, batch_size=32, keep_tail=True)
        assert [b.n for b in src_tail] == [32, 32, 32, 4]
