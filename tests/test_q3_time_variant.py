"""Tests for the time-windowed Q3 variant (Linear Road's real semantics)."""

import numpy as np

from repro import CompressStreamDB, EngineConfig
from repro.datasets import Q3_TIME_TEXT, linear_road
from repro.sql import JoinPlan, plan_query
from repro.stream import MODE_TIME


def test_plans_as_time_join():
    plan = plan_query(Q3_TIME_TEXT, {"PosSpeedStr": linear_road.SCHEMA})
    assert isinstance(plan, JoinPlan)
    assert plan.window.mode == MODE_TIME
    assert plan.window.size == 30
    assert plan.window.time_column == "timestamp"


def test_end_to_end_matches_baseline(fast_calibration):
    catalog = {"PosSpeedStr": linear_road.SCHEMA}
    outputs = {}
    for mode in ("baseline", "adaptive"):
        engine = CompressStreamDB(
            catalog,
            Q3_TIME_TEXT,
            EngineConfig(mode=mode, calibration=fast_calibration),
        )
        report = engine.run(
            linear_road.source(batch_size=4000, batches=3), collect_outputs=True
        )
        outputs[mode] = report.outputs
    base = outputs["baseline"]
    got = outputs["adaptive"]
    assert base.n_rows > 0
    assert got.n_rows == base.n_rows
    for name in base.columns:
        np.testing.assert_array_equal(got.columns[name], base.columns[name])


def test_each_window_covers_30_seconds(fast_calibration):
    catalog = {"PosSpeedStr": linear_road.SCHEMA}
    engine = CompressStreamDB(
        catalog, Q3_TIME_TEXT, EngineConfig(calibration=fast_calibration)
    )
    report = engine.run(
        linear_road.source(batch_size=4000, batches=3), collect_outputs=True
    )
    ts = report.outputs.columns["timestamp"]
    # latest-known positions always fall within closed 30s windows
    assert ts.min() >= 0
    # vehicles are distinct within each window: the smallest window span
    # groups rows whose timestamps lie within one 30-second extent
    assert report.outputs.n_rows == len(
        set(zip((ts // 30).tolist(), report.outputs.columns["vehicle"].tolist()))
    )
