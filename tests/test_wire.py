"""Tests for the binary wire format (serializer integration surface)."""

import numpy as np
import pytest

from repro.compression import all_codec_names, get_codec
from repro.errors import CodecNotApplicable
from repro.stream import Batch, CompressedBatch, Field, Schema
from repro.wire import WireFormatError, deserialize_batch, frame_size, serialize_batch

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)


def make_compressed(codec_name="ns", n=128, seed=0):
    rng = np.random.default_rng(seed)
    codec = get_codec(codec_name)
    batch = Batch.from_values(
        SCHEMA,
        {
            "ts": np.arange(n) + 1_000_000,
            "k": rng.integers(0, 6, n),
            "v": np.round(rng.integers(0, 200, n) / 4, 2),
        },
    )
    columns = {}
    for f in SCHEMA:
        cc = codec.compress(batch.column(f.name))
        cc.source_size_c = f.size
        columns[f.name] = cc
    return batch, CompressedBatch(schema=SCHEMA, n=n, columns=columns)


@pytest.mark.parametrize("codec_name", sorted(all_codec_names()))
def test_roundtrip_every_codec(codec_name):
    try:
        batch, compressed = make_compressed(codec_name)
    except CodecNotApplicable:
        pytest.skip("codec rejected the test column")
    frame = serialize_batch(compressed)
    restored = deserialize_batch(frame, SCHEMA)
    assert restored.n == compressed.n
    codec = get_codec(codec_name)
    for name in SCHEMA.names:
        original = batch.column(name)
        np.testing.assert_array_equal(
            codec.decompress(restored.columns[name]), original, err_msg=name
        )
        assert restored.columns[name].nbytes == compressed.columns[name].nbytes
        assert restored.columns[name].source_size_c == SCHEMA[name].size


def test_frame_is_self_describing_mixed_codecs():
    batch, compressed = make_compressed("ns")
    # replace one column with a different codec
    dict_codec = get_codec("dict")
    cc = dict_codec.compress(batch.column("k"))
    cc.source_size_c = 4
    compressed.columns["k"] = cc
    compressed.choices["k"] = "dict"
    restored = deserialize_batch(serialize_batch(compressed), SCHEMA)
    assert restored.columns["k"].codec == "dict"
    np.testing.assert_array_equal(
        dict_codec.decompress(restored.columns["k"]), batch.column("k")
    )


def test_frame_size_reports_real_bytes():
    _, compressed = make_compressed("bd")
    assert frame_size(compressed) == len(serialize_batch(compressed))
    # framing overhead exists but is small relative to the payload
    assert frame_size(compressed) < compressed.nbytes + 400


class TestCorruption:
    def test_bit_flip_detected(self):
        _, compressed = make_compressed("ns")
        frame = bytearray(serialize_batch(compressed))
        frame[20] ^= 0xFF
        with pytest.raises(WireFormatError, match="checksum"):
            deserialize_batch(bytes(frame), SCHEMA)

    def test_truncation_detected(self):
        _, compressed = make_compressed("ns")
        frame = serialize_batch(compressed)
        with pytest.raises(WireFormatError):
            deserialize_batch(frame[: len(frame) // 2], SCHEMA)

    def test_bad_magic_detected(self):
        _, compressed = make_compressed("ns")
        frame = bytearray(serialize_batch(compressed))
        frame[0] = 0x00
        # fix up the checksum so only the magic is wrong
        import struct
        import zlib

        body = bytes(frame[:-4])
        frame[-4:] = struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(WireFormatError, match="magic"):
            deserialize_batch(bytes(frame), SCHEMA)

    def test_schema_mismatch_detected(self):
        _, compressed = make_compressed("ns")
        other = Schema([Field("different")])
        with pytest.raises(WireFormatError, match="schema"):
            deserialize_batch(serialize_batch(compressed), other)

    def test_empty_input(self):
        with pytest.raises(WireFormatError):
            deserialize_batch(b"", SCHEMA)


def test_meta_types_roundtrip():
    """Exercise every meta value type through a PLWAH column."""
    rng = np.random.default_rng(1)
    codec = get_codec("plwah")
    values = rng.integers(0, 4, 256)
    cc = codec.compress(values)
    cc.source_size_c = 8
    schema = Schema([Field("x", "int", 8)])
    compressed = CompressedBatch(schema=schema, n=256, columns={"x": cc})
    restored = deserialize_batch(serialize_batch(compressed), schema)
    np.testing.assert_array_equal(codec.decompress(restored.columns["x"]), values)
