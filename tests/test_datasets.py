"""Tests for the dataset generators and the Table III query configs."""

import numpy as np

from repro.datasets import (
    DATASET_QUERIES,
    QUERIES,
    QUERY_TEXT,
    cluster_monitoring,
    linear_road,
    smart_grid,
)
from repro.stats import ColumnStats, average_run_length


class TestSmartGrid:
    def test_schema_matches_q1_q2(self):
        names = smart_grid.SCHEMA.names
        assert set(names) == {"timestamp", "value", "plug", "household", "house"}

    def test_deterministic(self):
        a = smart_grid.generate(1000, seed=5)
        b = smart_grid.generate(1000, seed=5)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_house_ids_are_bursty(self):
        cols = smart_grid.generate(10_000, seed=1)
        assert average_run_length(cols["house"]) > 10

    def test_value_has_discrete_states(self):
        cols = smart_grid.generate(20_000, seed=1)
        distinct = np.unique(cols["value"]).size
        assert distinct <= 200  # the property that makes DICT win (Fig. 5)

    def test_timestamps_monotone(self):
        cols = smart_grid.generate(5000, seed=2)
        assert (np.diff(cols["timestamp"]) >= 0).all()

    def test_id_hierarchy(self):
        cols = smart_grid.generate(5000, seed=3)
        assert (
            cols["household"] // smart_grid.HOUSEHOLDS_PER_HOUSE == cols["house"]
        ).all()

    def test_source_yields_batches(self):
        src = smart_grid.source(batch_size=512, batches=3)
        batches = list(src)
        assert [b.n for b in batches] == [512, 512, 512]
        # batches differ (stream advances)
        assert batches[0].column("timestamp")[0] != batches[1].column("timestamp")[0]

    def test_dynamic_workload_phases_differ(self):
        wl = smart_grid.dynamic_workload(
            batch_size=2048, batches=24, batches_per_phase=8
        )
        batches = list(wl)
        assert len(batches) == 24
        burst = ColumnStats.from_values(batches[0].column("value"))
        peak = ColumnStats.from_values(batches[8].column("value"))
        night = ColumnStats.from_values(batches[16].column("value"))
        # the peak phase has far more distinct values than burst/night
        assert peak.kindnum > 5 * burst.kindnum
        assert peak.kindnum > 5 * night.kindnum


class TestClusterMonitoring:
    def test_schema_matches_q5_q6(self):
        assert set(cluster_monitoring.SCHEMA.names) == {
            "timestamp", "category", "eventType", "userId", "cpu", "disk",
        }

    def test_cardinalities(self):
        cols = cluster_monitoring.generate(20_000, seed=1)
        assert np.unique(cols["category"]).size <= cluster_monitoring.N_CATEGORIES
        assert np.unique(cols["eventType"]).size <= cluster_monitoring.N_EVENT_TYPES
        assert np.unique(cols["userId"]).size <= cluster_monitoring.N_USERS

    def test_skew(self):
        cols = cluster_monitoring.generate(20_000, seed=1)
        counts = np.bincount(cols["category"])
        assert counts[0] > counts[-1] * 3  # heavily skewed

    def test_fractions_quantizable(self):
        cols = cluster_monitoring.generate(1000, seed=4)
        assert (cols["cpu"] >= 0).all() and (cols["cpu"] <= 1).all()
        # 4 decimals by schema: scaled values must be integral
        assert np.allclose(cols["cpu"] * 10_000, np.round(cols["cpu"] * 10_000))


class TestLinearRoad:
    def test_schema_matches_q3_q4(self):
        assert set(linear_road.SCHEMA.names) == {
            "timestamp", "vehicle", "speed", "highway", "lane", "direction", "position",
        }

    def test_contains_negatives(self):
        cols = linear_road.generate(5000, seed=1)
        assert (cols["direction"] < 0).any()  # EG/ED inapplicable, per Fig. 5

    def test_speed_bounds(self):
        cols = linear_road.generate(5000, seed=2)
        assert cols["speed"].min() >= 0 and cols["speed"].max() <= 100

    def test_vehicles_stay_on_highway(self):
        cols = linear_road.generate(5000, seed=3)
        assert (cols["highway"] == cols["vehicle"] % linear_road.N_HIGHWAYS).all()

    def test_positions_in_range(self):
        cols = linear_road.generate(5000, seed=4)
        limit = linear_road.HIGHWAY_MILES * linear_road.FEET_PER_MILE + 500
        assert cols["position"].min() >= 0 and cols["position"].max() < limit


class TestQueryConfigs:
    def test_all_six_defined(self):
        assert sorted(QUERIES) == ["q1", "q2", "q3", "q4", "q5", "q6"]
        assert sorted(QUERY_TEXT) == sorted(QUERIES)

    def test_dataset_grouping(self):
        assert DATASET_QUERIES["smart_grid"] == ("q1", "q2")
        assert DATASET_QUERIES["linear_road"] == ("q3", "q4")
        assert DATASET_QUERIES["cluster"] == ("q5", "q6")

    def test_slide_substitution(self):
        q1 = QUERIES["q1"]
        assert "slide 1]" in q1.text()
        assert "slide 1024]" in q1.text(slide=1024)

    def test_batch_size_formula(self):
        q1 = QUERIES["q1"]
        # tumbling: 100 windows of 1024
        assert q1.batch_size(slide=1024) == 100 * 1024
        # slide 1 (paper's Table III): 99 slides + one full window
        assert q1.batch_size() == 99 * 1 + 1024

    def test_window_sizes_match_paper(self):
        assert QUERIES["q1"].window == 1024
        assert QUERIES["q5"].window == 512
        assert QUERIES["q5"].windows_per_batch == 200
