"""Shared fixtures: fast fake calibration, schemas, representative columns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import all_codec_names
from repro.core.calibration import CalibrationTable, CodecTiming
from repro.stream.schema import Field, Schema


def pytest_addoption(parser):
    parser.addoption(
        "--write-golden",
        action="store_true",
        default=False,
        help="re-bless golden snapshot files (EXPLAIN plans) from the "
        "current output instead of comparing against them",
    )


@pytest.fixture(scope="session")
def fast_calibration() -> CalibrationTable:
    """A synthetic calibration table so tests never micro-benchmark.

    Times are loosely ordered like reality (identity cheapest, gzip by far
    the slowest, Elias coders slower than NS) so selector tests exercise
    realistic trade-offs deterministically.
    """
    ns = 1e-9
    per_elem = {
        "identity": (2 * ns, 2 * ns),
        "ns": (5 * ns, 4 * ns),
        "nsv": (30 * ns, 60 * ns),
        "eg": (12 * ns, 8 * ns),
        "ed": (15 * ns, 12 * ns),
        "bd": (6 * ns, 5 * ns),
        "rle": (8 * ns, 6 * ns),
        "dict": (10 * ns, 6 * ns),
        "bitmap": (40 * ns, 50 * ns),
        "plwah": (300 * ns, 400 * ns),
        "gzip": (900 * ns, 200 * ns),
        "deltachain": (7 * ns, 7 * ns),
    }
    # cascade codecs pay the sum of their stages (stage-1 transforms are
    # timed via their closest single-stage proxy, as in CalibrationTable)
    for name in all_codec_names():
        if "+" not in name or name in per_elem:
            continue
        stage1, stage2 = name.split("+", 1)
        proxy = CalibrationTable.STAGE1_PROXIES.get(stage1, "identity")
        per_elem[name] = (
            per_elem[proxy][0] + per_elem[stage2][0],
            per_elem[proxy][1] + per_elem[stage2][1],
        )
    timings = {
        name: CodecTiming(
            compress_a=per_elem[name][0],
            compress_b=1e-6,
            decompress_a=per_elem[name][1],
            decompress_b=1e-6,
        )
        for name in all_codec_names()
    }
    return CalibrationTable(timings=timings)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def simple_schema() -> Schema:
    return Schema(
        [
            Field("ts", "int", 8),
            Field("key", "int", 4),
            Field("load", "float", 4, decimals=2),
        ]
    )


@pytest.fixture
def column_shapes(rng):
    """Representative integer columns exercising distinct codec regimes."""
    return {
        "constant": np.full(512, 7, dtype=np.int64),
        "small_range": rng.integers(0, 100, 512),
        "wide_range": rng.integers(0, 1 << 40, 512),
        "negatives": rng.integers(-500, 500, 512),
        "runs": np.repeat(rng.integers(0, 6, 64), 8),
        "monotone": np.arange(512, dtype=np.int64) + 1_000_000,
        "binary": rng.integers(0, 2, 512),
        "single": np.array([42], dtype=np.int64),
        "with_zero": np.concatenate([[0], rng.integers(0, 10, 511)]),
        "extremes": np.array(
            [0, 1, 255, 256, 65535, 65536, (1 << 31) - 1, 1 << 31, (1 << 52)],
            dtype=np.int64,
        ),
    }
