"""Tests for the engine extensions: hybrid single-tuple mode, forced
decode (ablation), queueing channel with arrival model, multi-hop paths."""

import numpy as np
import pytest

from repro import CompressStreamDB, EngineConfig, SystemParams
from repro.errors import ChannelError
from repro.net import Hop, MultiHopChannel, QueuedChannel
from repro.stream import Field, GeneratorSource, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)
QUERY = "select ts, k, avg(v) as m from S [range 16 slide 16] group by k"


def source(batches=4, n=256, seed=0):
    def make(i):
        rng = np.random.default_rng(seed + i)
        return {
            "ts": np.arange(n) + i * n,
            "k": rng.integers(0, 4, n),
            "v": np.round(rng.integers(0, 200, n) / 4, 2),
        }

    return GeneratorSource(SCHEMA, make, limit=batches)


def engine(fast_calibration, **cfg):
    return CompressStreamDB(
        {"S": SCHEMA},
        QUERY,
        EngineConfig(calibration=fast_calibration, **cfg),
    )


class TestHybridMode:
    def test_small_batches_bypass_compression(self, fast_calibration):
        e = engine(fast_calibration, mode="static:bd", hybrid_threshold=512)
        rep = e.run(source(n=256))  # below the threshold
        assert rep.space_saving == 0.0
        assert rep.final_choices == {}  # selector never consulted

    def test_large_batches_still_compress(self, fast_calibration):
        e = engine(fast_calibration, mode="static:bd", hybrid_threshold=64)
        rep = e.run(source(n=256))
        assert rep.space_saving > 0.0

    def test_hybrid_results_correct(self, fast_calibration):
        base = engine(fast_calibration, mode="baseline").run(
            source(), collect_outputs=True
        )
        hybrid = engine(
            fast_calibration, mode="adaptive", hybrid_threshold=10_000
        ).run(source(), collect_outputs=True)
        for name in base.outputs.columns:
            np.testing.assert_allclose(
                hybrid.outputs.columns[name], base.outputs.columns[name]
            )

    def test_negative_threshold_rejected(self, fast_calibration):
        from repro.core import Client, StaticSelector
        from repro.core.query_profile import QueryProfile

        with pytest.raises(ValueError):
            Client(SCHEMA, StaticSelector("ns"), QueryProfile(), hybrid_threshold=-1)


class TestForceDecode:
    def test_results_identical(self, fast_calibration):
        direct = engine(fast_calibration, mode="static:ns").run(
            source(), collect_outputs=True
        )
        decoded = engine(
            fast_calibration, mode="static:ns", force_decode=True
        ).run(source(), collect_outputs=True)
        for name in direct.outputs.columns:
            np.testing.assert_allclose(
                decoded.outputs.columns[name], direct.outputs.columns[name]
            )

    def test_forced_decode_books_decompression_time(self, fast_calibration):
        direct = engine(fast_calibration, mode="static:ns").run(source())
        decoded = engine(fast_calibration, mode="static:ns", force_decode=True).run(
            source()
        )
        assert direct.stage_seconds()["decompress"] == 0.0
        assert decoded.stage_seconds()["decompress"] > 0.0

    def test_bytes_on_wire_unchanged(self, fast_calibration):
        direct = engine(fast_calibration, mode="static:bd").run(source())
        decoded = engine(fast_calibration, mode="static:bd", force_decode=True).run(
            source()
        )
        assert direct.profiler.bytes_sent == decoded.profiler.bytes_sent


class TestQueuedChannel:
    def test_no_queue_when_link_is_fast(self):
        ch = QueuedChannel(bandwidth_mbps=8000.0)  # 1 GB/s
        t1, d1 = ch.send(1000, ready_time=0.0)
        t2, d2 = ch.send(1000, ready_time=1.0)
        assert ch.queue_seconds == 0.0
        assert d2 == pytest.approx(1.0 + ch.transmit_seconds(1000))

    def test_queue_builds_under_saturation(self):
        ch = QueuedChannel(bandwidth_mbps=8.0)  # 1 MB/s
        # three 1 MB batches all ready at t=0: 2nd waits 1 s, 3rd waits 2 s
        delays = []
        for _ in range(3):
            seconds, _ = ch.send(1_000_000, ready_time=0.0)
            delays.append(seconds)
        assert delays == pytest.approx([1.0, 2.0, 3.0])
        assert ch.queue_seconds == pytest.approx(3.0)

    def test_negative_ready_time_rejected(self):
        with pytest.raises(ChannelError):
            QueuedChannel(bandwidth_mbps=8.0).send(1, ready_time=-1.0)

    def test_reset_clears_clock(self):
        ch = QueuedChannel(bandwidth_mbps=8.0)
        ch.send(1_000_000, ready_time=0.0)
        ch.reset()
        assert ch.link_free_at == 0.0
        assert ch.queue_seconds == 0.0

    def test_engine_arrival_model(self, fast_calibration):
        # a baseline stream overloading a thin link must show queueing in
        # its transmission time; compression relieves it
        params = SystemParams(arrival_rate_tps=5e6)
        slow = engine(
            fast_calibration, mode="baseline", bandwidth_mbps=2, params=params
        ).run(source(batches=6))
        compressed = engine(
            fast_calibration, mode="static:bd", bandwidth_mbps=2, params=params
        ).run(source(batches=6))
        assert compressed.stage_seconds()["trans"] < slow.stage_seconds()["trans"]


class TestMultiHop:
    def test_times_sum_over_hops(self):
        path = MultiHopChannel(
            [Hop("uplink", 8.0, 0.5), Hop("backbone", 80.0, 0.1)]
        )
        expected = (1_000_000 / 1e6 + 0.5) + (1_000_000 / 1e7 + 0.1)
        assert path.transmit_seconds(1_000_000) == pytest.approx(expected)

    def test_bottleneck_reported(self):
        path = MultiHopChannel([Hop("a", 10.0), Hop("b", 1000.0)])
        assert path.bandwidth_mbps == 10.0

    def test_breakdown_accumulates(self):
        path = MultiHopChannel([Hop("a", 8.0), Hop("b", 80.0)])
        path.transmit(1_000_000)
        path.transmit(1_000_000)
        (name_a, sec_a), (name_b, sec_b) = path.breakdown()
        assert (name_a, name_b) == ("a", "b")
        assert sec_a == pytest.approx(2.0)
        assert sec_b == pytest.approx(0.2)

    def test_local_handoff_hop(self):
        path = MultiHopChannel([Hop("ipc", None, 0.001), Hop("wan", 100.0)])
        assert path.transmit_seconds(0) == pytest.approx(0.001)

    def test_needs_hops(self):
        with pytest.raises(ChannelError):
            MultiHopChannel([])

    def test_hop_validation(self):
        with pytest.raises(ChannelError):
            Hop("bad", -5.0)
        with pytest.raises(ChannelError):
            Hop("bad", 5.0, latency_s=-1)

    def test_engine_with_multihop_factory(self, fast_calibration):
        def factory():
            return MultiHopChannel.sensor_edge_cloud(uplink_mbps=5.0)

        base = engine(
            fast_calibration, mode="baseline", channel_factory=factory
        ).run(source())
        comp = engine(
            fast_calibration, mode="adaptive", channel_factory=factory
        ).run(source())
        # the thin uplink makes compression pay off strongly
        assert comp.total_seconds < base.total_seconds
        assert comp.space_saving > 0.3
