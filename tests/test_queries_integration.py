"""End-to-end correctness of Q1-Q6: every compression mode must produce
exactly the same query results as the uncompressed baseline.

This is the paper's core safety claim — only lossless compression is used
and direct processing does not change semantics — verified on all three
dataset surrogates, including slide < window (cross-batch windows).
"""

import numpy as np
import pytest

from repro import CompressStreamDB, EngineConfig
from repro.datasets import QUERIES

MODES = (
    "adaptive",
    "static:ns",
    "static:bd",
    "static:dict",
    "static:rle",
    "static:bitmap",
    "static:nsv",
    "static:eg",
    "static:ed",
)


def run(qname, mode, fast_calibration, slide=None, batches=3, scale=4):
    q = QUERIES[qname]
    slide = slide if slide is not None else q.window
    engine = CompressStreamDB(
        q.catalog,
        q.text(slide=slide),
        EngineConfig(mode=mode, calibration=fast_calibration),
    )
    source = q.make_source(batch_size=q.window * scale, batches=batches)
    return engine.run(source, collect_outputs=True)


@pytest.mark.parametrize("qname", sorted(QUERIES))
@pytest.mark.parametrize("mode", MODES)
def test_mode_matches_baseline(qname, mode, fast_calibration):
    base = run(qname, "baseline", fast_calibration)
    got = run(qname, mode, fast_calibration)
    assert got.outputs.n_rows == base.outputs.n_rows
    for name in base.outputs.columns:
        np.testing.assert_allclose(
            got.outputs.columns[name],
            base.outputs.columns[name],
            err_msg=f"{qname} {mode} column {name}",
        )


#: modes whose codecs can serve queries directly (β = 0); the rest always
#: decode, so force_decode would be a no-op for them
DIRECT_MODES = (
    "adaptive", "static:ns", "static:bd", "static:dict", "static:eg", "static:ed"
)


def run_forced(qname, mode, fast_calibration):
    q = QUERIES[qname]
    engine = CompressStreamDB(
        q.catalog,
        q.text(slide=q.window),
        EngineConfig(mode=mode, calibration=fast_calibration, force_decode=True),
    )
    source = q.make_source(batch_size=q.window * 4, batches=3)
    return engine.run(source, collect_outputs=True)


@pytest.mark.parametrize("qname", sorted(QUERIES))
@pytest.mark.parametrize("mode", DIRECT_MODES)
def test_force_decode_parity(qname, mode, fast_calibration):
    """Direct processing vs decompress-then-query must be *byte*-identical:
    direct kernels aggregate in the exact stored integer domain, so not
    even float rounding may differ from the decoded path."""
    direct = run(qname, mode, fast_calibration)
    decoded = run_forced(qname, mode, fast_calibration)
    assert decoded.outputs.n_rows == direct.outputs.n_rows
    assert sorted(decoded.outputs.columns) == sorted(direct.outputs.columns)
    for name in direct.outputs.columns:
        a = direct.outputs.columns[name]
        b = decoded.outputs.columns[name]
        assert a.dtype == b.dtype, f"{qname} {mode} column {name} dtype"
        assert np.array_equal(a, b), f"{qname} {mode} column {name}"


@pytest.mark.parametrize("qname", ["q1", "q4", "q5"])
def test_sliding_windows_match_baseline(qname, fast_calibration):
    """slide = window/2: windows cross batch boundaries regularly."""
    q = QUERIES[qname]
    slide = q.window // 2
    base = run(qname, "baseline", fast_calibration, slide=slide)
    got = run(qname, "adaptive", fast_calibration, slide=slide)
    assert got.outputs.n_rows == base.outputs.n_rows
    for name in base.outputs.columns:
        np.testing.assert_allclose(
            got.outputs.columns[name], base.outputs.columns[name]
        )


@pytest.mark.parametrize("qname", sorted(QUERIES))
def test_compression_reduces_bytes_on_every_dataset(qname, fast_calibration):
    base = run(qname, "baseline", fast_calibration)
    adaptive = run(qname, "adaptive", fast_calibration)
    assert adaptive.profiler.bytes_sent < base.profiler.bytes_sent
    assert adaptive.space_saving > 0.25


def test_eg_ed_fall_back_on_linear_road(fast_calibration):
    """The paper: EG/ED cannot run on LRB (negatives) — the engine must
    fall back to identity for the affected columns, not crash."""
    rep = run("q4", "static:eg", fast_calibration)
    assert rep.outputs.n_rows > 0
    assert rep.final_choices["direction"] == "identity"


def test_q2_group_results_complete(fast_calibration):
    rep = run("q2", "adaptive", fast_calibration, batches=2)
    out = rep.outputs.columns
    # every (plug, household, house) group in the output respects hierarchy
    assert (out["household"] // 4 == out["house"]).all()
    assert rep.outputs.n_rows > 0
    assert (out["localAvgLoad"] >= 0).all()


def test_q3_rows_are_distinct_vehicles_per_window(fast_calibration):
    rep = run("q3", "adaptive", fast_calibration, batches=2, scale=10)
    out = rep.outputs.columns
    assert rep.outputs.n_rows > 0
    assert np.isin(np.unique(out["direction"]), [-1, 1]).all()
    # segment = position / 5280 in integer miles
    assert out["segment"].max() <= 101
