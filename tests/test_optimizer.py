"""The rule-based optimizer: binder shapes, rules, chooser, execution.

Covers the contract each layer owes the others: the binder emits the
naive tree in SQL evaluation order; every rewrite rule fires on its
target shape and refuses when the cost model prices the rewrite at no
gain; the chooser falls back to the naive plan when rewriting did not
help; and the lowered plans (cascade WHERE, fused aggregates) compute
exactly what the naive plans compute.  End-to-end answer equality over
the full workload grammar is the differential oracle's optimized leg
(``tests/test_oracle.py`` and the optimizer-smoke CI job); these tests
pin the mechanisms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CompressStreamDB, EngineConfig
from repro.optimizer import (
    RULES,
    CommonSubplanSharing,
    CostContext,
    DeriveNode,
    FilterAggFusion,
    FilterNode,
    FormatMorph,
    JoinNode,
    OrderLimitNode,
    PredicatePushdown,
    ProjectionPrune,
    ProjectNode,
    RewriteRule,
    ScanNode,
    SelectionReorder,
    WindowAggNode,
    bind,
    optimize_plan,
    plan_digest,
    schema_infos,
    simplify_predicate,
)
from repro.optimizer.binder import stats_from_columns
from repro.optimizer.cost import run_length_of, selectivity, touch_weight
from repro.optimizer.logical import iter_nodes
from repro.sql.parser import parse
from repro.sql.planner import LiteralPredicate, Planner, PredicateGroup
from repro.stream.schema import Field, Schema
from repro.stream.source import GeneratorSource

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("value", "int", 4),
        Field("kind", "int", 2),
        Field("payload", "int", 8),
    ]
)
CATALOG = {"S": SCHEMA}


def plan_of(sql):
    return Planner(CATALOG).plan(parse(sql))


def naive_root(sql, codec_hint=""):
    plan = plan_of(sql)
    return bind(plan, schema_infos(plan.schema, codec_hint=codec_hint))


def node_types(root):
    return [type(n).__name__ for n in iter_nodes(root)]


def find(root, node_type):
    for node in iter_nodes(root):
        if isinstance(node, node_type):
            return node
    raise AssertionError(f"no {node_type.__name__} in plan")


def runny_source(batches=3, batch_size=2048, run=32, seed=5):
    def make(index):
        rng = np.random.default_rng(seed + index)
        n_runs = batch_size // run + 1
        return {
            "ts": np.arange(batch_size, dtype=np.int64) + index * batch_size,
            "value": np.repeat(
                rng.integers(0, 8, size=n_runs) * 10, run
            )[:batch_size],
            "kind": rng.integers(0, 4, size=batch_size),
            "payload": rng.integers(0, 1 << 30, size=batch_size),
        }

    return GeneratorSource(SCHEMA, make, limit=batches)


# ----- binder shapes ----------------------------------------------------


class TestBinder:
    def test_window_agg_shape(self):
        root = naive_root(
            "select avg(value) as a from S [range 64 slide 64] "
            "where value < 50"
        )
        assert node_types(root) == [
            "ProjectNode",
            "WindowAggNode",
            "FilterNode",
            "ScanNode",
        ]
        scan = find(root, ScanNode)
        assert scan.columns == ("ts", "value", "kind", "payload")
        assert scan.predicate is None  # naive: WHERE stays above the scan
        assert find(root, WindowAggNode).aggregates == (("avg", "value"),)

    def test_order_limit_rides_on_top(self):
        root = naive_root(
            "select kind, sum(value) as s from S [range 64 slide 64] "
            "group by kind order by s desc limit 3"
        )
        assert isinstance(root, OrderLimitNode)
        assert root.keys == (("s", True),)
        assert root.limit == 3

    def test_passthrough_shape(self):
        root = naive_root("select value from S [range unbounded] where value == 10")
        assert node_types(root) == ["ProjectNode", "FilterNode", "ScanNode"]

    def test_join_shape_wraps_shared_derived(self):
        from repro.datasets import QUERIES

        q3 = QUERIES["q3"]
        script = parse(q3.text())
        plan = Planner(q3.catalog).plan(script)
        root = bind(plan, schema_infos(plan.schema), script=script)
        derive = find(root, DeriveNode)
        assert derive.name == "SegSpeedStr"
        assert derive.consumers == 2
        assert not derive.shared  # naive plan: sharing is cse's rewrite
        assert find(root, JoinNode)

    def test_referenced_set_comes_from_the_profile(self):
        root = naive_root("select avg(value) as a from S [range 64 slide 64]")
        assert find(root, ScanNode).referenced == ("value",)


# ----- the cost model ---------------------------------------------------


class TestCostModel:
    def test_run_length_needs_evidence(self):
        plan = plan_of("select value from S [range unbounded]")
        no_hint = schema_infos(plan.schema)["value"]
        hinted = schema_infos(plan.schema, codec_hint="rle")["value"]
        assert run_length_of(no_hint) == 1.0
        assert run_length_of(hinted) > 1.0

    def test_stats_sharpen_run_length_and_touch_weight(self):
        plan = plan_of("select value from S [range unbounded]")
        stats = stats_from_columns(
            plan.schema, {"value": np.repeat(np.arange(8), 64)}
        )
        infos = schema_infos(plan.schema, codec_hint="rle", stats=stats)
        ctx = CostContext(infos=infos)
        assert run_length_of(infos["value"]) == pytest.approx(64.0)
        assert touch_weight(infos["value"], ctx) == pytest.approx(4 / 64.0)

    def test_equality_selectivity_uses_distinct_count(self):
        plan = plan_of("select value from S [range unbounded]")
        stats = stats_from_columns(
            plan.schema, {"value": np.arange(100, dtype=np.int64)}
        )
        info = schema_infos(plan.schema, stats=stats)["value"]
        pred = LiteralPredicate(column="value", op="==", literal=7)
        assert selectivity(pred, info) == pytest.approx(0.01)

    def test_cascade_prices_below_unordered(self):
        from repro.optimizer.cost import predicate_cost

        group = PredicateGroup(
            op="and",
            children=(
                LiteralPredicate(column="value", op="<", literal=10),
                LiteralPredicate(column="kind", op="==", literal=1),
            ),
        )
        ctx = CostContext(infos=schema_infos(SCHEMA))
        flat_cost, flat_sel = predicate_cost(group, 4096.0, ctx)
        ordered = PredicateGroup(
            op="and", children=group.children, ordered=True
        )
        cascade_cost, cascade_sel = predicate_cost(ordered, 4096.0, ctx)
        assert cascade_cost < flat_cost
        assert cascade_sel == pytest.approx(flat_sel)


# ----- the rule catalogue ----------------------------------------------


class TestRules:
    def test_static_table_lists_every_rule(self):
        # CSD008 enforces this statically; keep a runtime witness too
        assert {type(r) for r in RULES} == {
            ProjectionPrune,
            PredicatePushdown,
            SelectionReorder,
            FilterAggFusion,
            CommonSubplanSharing,
            FormatMorph,
        }

    def _ctx(self, root, codec_hint=""):
        scan = find(root, ScanNode)
        return CostContext(infos={i.name: i for i in scan.infos})

    def test_prune_fires_on_unreferenced_columns(self):
        root = naive_root("select avg(value) as a from S [range 64 slide 64]")
        pruned, firings = ProjectionPrune().apply(root, self._ctx(root))
        assert [f.rule for f in firings] == ["prune"]
        assert find(pruned, ScanNode).columns == ("value",)

    def test_prune_refuses_when_scan_is_minimal(self):
        root = naive_root(
            "select ts, value, kind, payload from S [range unbounded]"
        )
        same, firings = ProjectionPrune().apply(root, self._ctx(root))
        assert same is root and firings == ()

    def test_pushdown_fires_and_consumes_the_filter(self):
        root = naive_root("select value from S [range unbounded] where value < 10")
        pushed, firings = PredicatePushdown().apply(root, self._ctx(root))
        assert [f.rule for f in firings] == ["pushdown"]
        assert find(pushed, ScanNode).predicate is not None
        assert "FilterNode" not in node_types(pushed)

    def test_pushdown_refuses_without_a_filter(self):
        root = naive_root("select value from S [range unbounded]")
        same, firings = PredicatePushdown().apply(root, self._ctx(root))
        assert same is root and firings == ()

    def test_reorder_puts_the_selective_conjunct_first(self):
        plan = plan_of(
            "select value from S [range unbounded] where value < 90 and kind == 2"
        )
        stats = stats_from_columns(
            plan.schema,
            {
                # value < 90 keeps ~90% of rows; kind == 2 keeps ~0.1%
                "value": np.arange(100, dtype=np.int64),
                "kind": np.arange(1000, dtype=np.int64),
            },
        )
        infos = schema_infos(plan.schema, stats=stats)
        root = bind(plan, infos)
        ordered, firings = SelectionReorder().apply(
            root, CostContext(infos=infos)
        )
        assert [f.rule for f in firings] == ["reorder"]
        predicate = find(ordered, FilterNode).predicate
        assert predicate.ordered
        assert predicate.children[0].column == "kind"

    def test_reorder_refuses_when_cost_says_it_loses(self):
        # both conjuncts keep every row, so the cascade saves nothing
        # and the framework's strict-improvement gate rejects it
        plan = plan_of(
            "select value from S [range unbounded] where value <= 99 and kind <= 999"
        )
        stats = stats_from_columns(
            plan.schema,
            {
                "value": np.arange(100, dtype=np.int64),
                "kind": np.arange(1000, dtype=np.int64),
            },
        )
        infos = schema_infos(plan.schema, stats=stats)
        root = bind(plan, infos)
        same, firings = SelectionReorder().apply(
            root, CostContext(infos=infos)
        )
        assert same is root and firings == ()

    def test_fusion_fires_with_run_evidence(self):
        root = naive_root(
            "select avg(value) as a from S [range 64 slide 64] "
            "where value < 50",
            codec_hint="rle",
        )
        ctx = CostContext(
            infos={i.name: i for i in find(root, ScanNode).infos}
        )
        fused, firings = FilterAggFusion().apply(root, ctx)
        assert [f.rule for f in firings] == ["fusion"]
        assert find(fused, WindowAggNode).fuse_column == "value"

    def test_fusion_refuses_without_run_evidence(self):
        # identical query, no codec hint and no statistics: the run
        # length defaults to 1.0 and fusing cannot win
        root = naive_root(
            "select avg(value) as a from S [range 64 slide 64] "
            "where value < 50"
        )
        same, firings = FilterAggFusion().apply(root, self._ctx(root))
        assert same is root and firings == ()

    def test_fusion_refuses_grouped_aggregates(self):
        root = naive_root(
            "select kind, avg(value) as a from S [range 64 slide 64] "
            "where value < 50 group by kind",
            codec_hint="rle",
        )
        ctx = CostContext(
            infos={i.name: i for i in find(root, ScanNode).infos}
        )
        same, firings = FilterAggFusion().apply(root, ctx)
        assert same is root and firings == ()

    def test_fusion_refuses_multi_column_predicates(self):
        root = naive_root(
            "select avg(value) as a from S [range 64 slide 64] "
            "where value < 50 and kind == 1",
            codec_hint="rle",
        )
        ctx = CostContext(
            infos={i.name: i for i in find(root, ScanNode).infos}
        )
        same, firings = FilterAggFusion().apply(root, ctx)
        assert same is root and firings == ()

    def test_cse_shares_a_multiply_consumed_derived_stream(self):
        from repro.datasets import QUERIES

        q3 = QUERIES["q3"]
        script = parse(q3.text())
        plan = Planner(q3.catalog).plan(script)
        infos = schema_infos(plan.schema)
        root = bind(plan, infos, script=script)
        shared, firings = CommonSubplanSharing().apply(
            root, CostContext(infos=infos)
        )
        assert "cse" in [f.rule for f in firings]
        assert find(shared, DeriveNode).shared

    def test_cse_refuses_single_consumer_derived_streams(self):
        scan = ScanNode(stream="S", columns=("value",), infos=())
        root = ProjectNode(
            child=DeriveNode(
                name="D",
                child=ProjectNode(child=scan, outputs=("value",)),
                consumers=1,
            ),
            outputs=("value",),
        )
        same, firings = CommonSubplanSharing().apply(root, CostContext())
        assert same is root and firings == ()

    def test_framework_gate_rejects_a_losing_rewrite(self):
        class Widen(RewriteRule):
            """Deliberately bad: duplicate every aggregate's work."""

            name = "widen"

            def rewrite(self, root, ctx):
                import dataclasses

                from repro.optimizer.info import RuleFiring

                def visit(node):
                    if isinstance(node, ScanNode):
                        return dataclasses.replace(
                            node, columns=node.columns + node.columns
                        )
                    return node

                from repro.optimizer.logical import transform

                return transform(root, visit), (
                    RuleFiring(rule="widen", detail="doubled the scan"),
                )

        root = naive_root("select avg(value) as a from S [range 64 slide 64]")
        same, firings = Widen().apply(root, self._ctx(root))
        assert same is root and firings == ()


# ----- predicate simplification ----------------------------------------


def lit(column, op, literal):
    return LiteralPredicate(column=column, op=op, literal=literal)


class TestSimplifyPredicate:
    def test_dedup(self):
        a = lit("value", "<", 10)
        node, notes = simplify_predicate(
            PredicateGroup(op="and", children=(a, a))
        )
        assert node == a
        assert any(n.startswith("dedup") for n in notes)

    def test_absorption(self):
        a = lit("value", "<", 10)
        b = lit("kind", "==", 1)
        node, notes = simplify_predicate(
            PredicateGroup(
                op="or",
                children=(a, PredicateGroup(op="and", children=(a, b))),
            )
        )
        assert node == a
        assert any(n.startswith("absorb") for n in notes)

    def test_or_of_ands_factors_the_common_conjunct(self):
        a = lit("value", "<", 10)
        b = lit("kind", "==", 1)
        c = lit("kind", "==", 2)
        node, notes = simplify_predicate(
            PredicateGroup(
                op="or",
                children=(
                    PredicateGroup(op="and", children=(a, b)),
                    PredicateGroup(op="and", children=(a, c)),
                ),
            )
        )
        assert any(n.startswith("factor") for n in notes)
        assert isinstance(node, PredicateGroup) and node.op == "and"
        assert node.children[0] == a
        assert node.children[1] == PredicateGroup(op="or", children=(b, c))

    def test_no_identity_no_rewrite(self):
        group = PredicateGroup(
            op="and",
            children=(lit("value", "<", 10), lit("kind", "==", 1)),
        )
        node, notes = simplify_predicate(group)
        assert node is group and notes == ()


# ----- the driver: chooser, digest, lowering ---------------------------


class TestOptimizePlan:
    def test_chooser_falls_back_when_nothing_fires(self):
        # every column referenced, no WHERE, grouped: no rule applies
        plan = plan_of(
            "select ts, kind, payload, avg(value) as a "
            "from S [range 64 slide 64] group by ts, kind, payload"
        )
        result = optimize_plan(plan)
        assert result.info.fallback
        assert result.info.rules_fired == ()
        assert result.info.estimated_cost == result.info.baseline_cost
        assert result.root is result.baseline_root

    def test_rules_fire_and_estimate_beats_baseline(self):
        plan = plan_of(
            "select avg(value) as a from S [range 64 slide 64] "
            "where value < 50"
        )
        result = optimize_plan(
            plan, schema_infos(plan.schema, codec_hint="rle")
        )
        assert not result.info.fallback
        assert {"prune", "pushdown", "fusion"} <= set(result.info.rules_fired)
        assert result.info.estimated_cost < result.info.baseline_cost
        assert result.plan.fuse_column == "value"
        assert result.plan.opt is result.info

    def test_digest_is_stable_and_stats_blind(self):
        plan = plan_of("select value from S [range unbounded] where value < 10")
        a = optimize_plan(plan, schema_infos(plan.schema))
        stats = stats_from_columns(
            plan.schema, {"value": np.arange(100, dtype=np.int64)}
        )
        b = optimize_plan(plan, schema_infos(plan.schema, stats=stats))
        assert a.info.plan_digest == b.info.plan_digest
        assert plan_digest(a.root) == a.info.plan_digest
        # the naive tree has a different shape, hence a different digest
        assert plan_digest(a.baseline_root) != a.info.plan_digest

    def test_lowered_where_keeps_the_cascade_order(self):
        plan = plan_of(
            "select value from S [range unbounded] where value < 90 and kind == 2"
        )
        stats = stats_from_columns(
            plan.schema,
            {
                "value": np.arange(100, dtype=np.int64),
                "kind": np.arange(1000, dtype=np.int64),
            },
        )
        result = optimize_plan(plan, schema_infos(plan.schema, stats=stats))
        assert result.plan.where.ordered
        assert result.plan.where.children[0].column == "kind"


# ----- lowered plans execute identically -------------------------------


FILTERED_AVG = (
    "select avg(value) as a from S [range 256 slide 256] where value < 50"
)
CASCADE_SQL = (
    "select ts, value from S [range unbounded] where value < 50 and kind == 2 and ts >= 0"
)


def run_engine(sql, optimize, mode="static:rle"):
    engine = CompressStreamDB(
        CATALOG,
        sql,
        EngineConfig(mode=mode, bandwidth_mbps=None, optimize=optimize),
    )
    report = engine.run(runny_source(), collect_outputs=True)
    return engine, report


class TestExecutionEquivalence:
    @pytest.mark.parametrize("sql", [FILTERED_AVG, CASCADE_SQL])
    def test_optimized_matches_naive(self, sql):
        _, naive = run_engine(sql, optimize=False)
        engine, opt = run_engine(sql, optimize=True)
        info = engine._base_plan.opt
        assert info is not None and not info.fallback
        a, b = naive.outputs, opt.outputs
        assert a.n_rows == b.n_rows
        assert sorted(a.columns) == sorted(b.columns)
        for name in a.columns:
            assert np.allclose(a.columns[name], b.columns[name]), name

    def test_fused_plan_actually_fuses(self):
        engine, _ = run_engine(FILTERED_AVG, optimize=True)
        assert engine._base_plan.fuse_column == "value"
        assert "fusion" in engine._base_plan.opt.rules_fired

    def test_escape_hatch_keeps_the_naive_plan(self):
        engine, _ = run_engine(FILTERED_AVG, optimize=False)
        assert engine._base_plan.opt is None
        assert engine._base_plan.fuse_column == ""

    def test_server_report_surfaces_the_decision(self):
        from repro.core.server import Server
        from repro.oracle.differential import compress_case_batch
        from repro.stream.batch import Batch

        plan = CompressStreamDB(
            CATALOG, FILTERED_AVG, EngineConfig(mode="static:rle")
        )._base_plan
        server = Server(plan)
        batch = next(iter(runny_source(batches=1, batch_size=512)))
        assert isinstance(batch, Batch)
        report = server.process(compress_case_batch(batch, "rle"))
        assert "fusion" in report.optimizer_rules
        assert report.plan_digest == plan.opt.plan_digest
        assert report.estimated_cost < report.baseline_cost
