"""Golden snapshots of EXPLAIN renderings — Q1-Q6 plus one per rule.

Each case optimizes a fixed (catalog, query, statistics) triple and
compares :func:`repro.optimizer.render_text` against a committed golden
file: the rendering is structural (no timings, no float costs), so a
golden changes exactly when a plan shape or an optimizer decision
changes.  Re-bless intentional changes with::

    pytest tests/test_explain_golden.py --write-golden

The per-rule cases double as the acceptance witness that at least three
distinct rules fire across the corpus.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.datasets import QUERIES
from repro.optimizer import optimize_plan, render_text, schema_infos
from repro.optimizer.binder import stats_from_columns
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.stream.schema import Field, Schema

GOLDEN_DIR = Path(__file__).parent / "golden" / "explain"

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("value", "int", 4),
        Field("kind", "int", 2),
        Field("payload", "int", 8),
    ]
)
CATALOG = {"S": SCHEMA}

#: deterministic per-column samples for the stats-dependent rules;
#: ``payload`` is runny and small-domain — the morph rule's target shape
STATS_COLUMNS = {
    "value": np.arange(100, dtype=np.int64),
    "kind": np.arange(1000, dtype=np.int64),
    "payload": np.tile(np.repeat(np.arange(12, dtype=np.int64), 4), 8),
}


def _render(catalog, sql, codec_hint="", with_stats=False):
    script = parse(sql)
    plan = Planner(catalog).plan(script)
    stats = (
        stats_from_columns(plan.schema, STATS_COLUMNS) if with_stats else None
    )
    infos = schema_infos(plan.schema, codec_hint=codec_hint, stats=stats)
    result = optimize_plan(plan, infos, script=script)
    return render_text(result.root, result.info) + "\n", result.info


#: name -> (catalog factory, sql factory, codec hint, bind stats?)
CASES = {
    **{
        name: (lambda q=q: q.catalog, lambda q=q: q.text(), "", False)
        for name, q in QUERIES.items()
    },
    # one query per rewrite rule, on a catalog with spare columns
    "rule_prune": (
        lambda: CATALOG,
        lambda: "select avg(value) as a from S [range 64 slide 64]",
        "",
        False,
    ),
    "rule_pushdown": (
        lambda: CATALOG,
        lambda: "select value from S [range unbounded] where value < 10",
        "",
        False,
    ),
    "rule_reorder": (
        lambda: CATALOG,
        lambda: (
            "select value from S [range unbounded] "
            "where value < 90 and kind == 2"
        ),
        "",
        True,
    ),
    "rule_fusion": (
        lambda: CATALOG,
        lambda: (
            "select avg(value) as a from S [range 64 slide 64] "
            "where value < 50"
        ),
        "rle",
        False,
    ),
    "rule_cse": (
        lambda: CATALOG,
        lambda: (
            "select value from S [range unbounded] "
            "where value < 10 and kind == 1 or value < 10 and kind == 2"
        ),
        "",
        False,
    ),
    "rule_morph": (
        lambda: CATALOG,
        lambda: (
            "select value from S [range unbounded] "
            "where payload == 1 or payload == 3 "
            "or payload == 5 or payload == 7"
        ),
        "rle",
        True,
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_explain_matches_golden(name, request):
    catalog, sql, codec_hint, with_stats = CASES[name]
    text, _info = _render(
        catalog(), sql(), codec_hint=codec_hint, with_stats=with_stats
    )
    path = GOLDEN_DIR / f"{name}.txt"
    if request.config.getoption("--write-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden {path}; bless with pytest --write-golden"
    )
    assert text == path.read_text(), (
        f"EXPLAIN for {name} diverged from {path}; if the plan change is "
        "intentional, re-bless with pytest --write-golden"
    )


def test_renderings_are_deterministic():
    for name in ("q1", "rule_fusion", "rule_reorder"):
        catalog, sql, codec_hint, with_stats = CASES[name]
        first, _ = _render(catalog(), sql(), codec_hint, with_stats)
        second, _ = _render(catalog(), sql(), codec_hint, with_stats)
        assert first == second, name


def test_at_least_three_distinct_rules_fire_across_the_corpus():
    fired = set()
    for name, (catalog, sql, codec_hint, with_stats) in CASES.items():
        _, info = _render(catalog(), sql(), codec_hint, with_stats)
        fired |= set(info.rules_fired)
    assert len(fired) >= 3, fired


@pytest.mark.parametrize(
    "name, rule",
    [
        ("rule_prune", "prune"),
        ("rule_pushdown", "pushdown"),
        ("rule_reorder", "reorder"),
        ("rule_fusion", "fusion"),
        ("rule_cse", "cse"),
        ("rule_morph", "morph"),
    ],
)
def test_each_rule_case_fires_its_rule(name, rule):
    catalog, sql, codec_hint, with_stats = CASES[name]
    _, info = _render(catalog(), sql(), codec_hint, with_stats)
    assert rule in info.rules_fired, (rule, info.rules_fired)
