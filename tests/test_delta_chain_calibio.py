"""Tests for the delta-chain codec extension and calibration persistence."""

import numpy as np
import pytest

from repro.compression import default_pool, get_codec
from repro.core.calibration import CalibrationTable, CodecTiming
from repro.errors import CalibrationError
from repro.stats import ColumnStats


class TestDeltaChain:
    def test_monotone_timestamps_crush(self):
        codec = get_codec("deltachain")
        ts = 1_700_000_000 + np.arange(4096) // 100  # slowly advancing epoch
        cc = codec.compress(ts)
        assert cc.meta["width"] == 1  # deltas are 0 or 1
        assert cc.ratio > 7.5
        np.testing.assert_array_equal(codec.decompress(cc), ts)

    def test_estimate_matches_eq(self):
        ts = np.arange(1000, dtype=np.int64) * 3 + 50
        stats = ColumnStats.from_values(ts)
        assert stats.delta_domain_bytes == 1
        assert get_codec("deltachain").estimate_ratio(stats) == 8.0

    def test_negative_deltas(self, rng):
        values = rng.integers(-100, 100, 512).cumsum()
        codec = get_codec("deltachain")
        cc = codec.compress(values)
        np.testing.assert_array_equal(codec.decompress(cc), values)

    def test_wild_deltas_need_full_width(self, rng):
        values = rng.integers(-(1 << 60), 1 << 60, 64)
        codec = get_codec("deltachain")
        cc = codec.compress(values)
        assert cc.meta["width"] == 8
        np.testing.assert_array_equal(codec.decompress(cc), values)

    def test_single_element(self):
        codec = get_codec("deltachain")
        cc = codec.compress(np.array([42], dtype=np.int64))
        np.testing.assert_array_equal(codec.decompress(cc), [42])

    def test_beta_one_classification(self):
        codec = get_codec("deltachain")
        assert codec.is_lazy
        assert codec.needs_decompression
        assert codec.capabilities == frozenset()

    def test_pool_extension_hook(self):
        names = {c.name for c in default_pool(extensions=("deltachain",))}
        assert "deltachain" in names
        base = {c.name for c in default_pool()}
        assert "deltachain" not in base

    def test_selector_can_pick_deltachain(self, fast_calibration):
        from repro.core import AdaptiveSelector, CostModel, QueryProfile, SystemParams
        from repro.net import Channel

        model = CostModel(fast_calibration, SystemParams(), Channel(bandwidth_mbps=50))
        selector = AdaptiveSelector(model, default_pool(extensions=("deltachain",)))
        # a drifting wide-magnitude counter: per-value widths stay 8 bytes
        # (NS/BD/dict useless) but deltas are tiny -> deltachain dominates
        values = (1 << 61) + np.cumsum(np.random.default_rng(0).integers(0, 3, 4096))
        stats = {"ctr": ColumnStats.from_values(values)}
        choice = selector.select(stats, QueryProfile(), 4096)
        assert choice["ctr"].name == "deltachain"


class TestCalibrationPersistence:
    def _table(self):
        return CalibrationTable(
            timings={"ns": CodecTiming(1e-9, 1e-6, 2e-9, 2e-6)}, kindnum=64
        )

    def test_json_roundtrip(self):
        table = self._table()
        restored = CalibrationTable.from_json(table.to_json())
        assert restored.kindnum == 64
        assert restored.timing("ns") == table.timing("ns")

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "calib.json"
        table = self._table()
        table.save(path)
        restored = CalibrationTable.load(path)
        assert restored.timing("ns") == table.timing("ns")

    def test_malformed_json_rejected(self):
        with pytest.raises(CalibrationError):
            CalibrationTable.from_json("{not json")

    def test_wrong_version_rejected(self):
        with pytest.raises(CalibrationError):
            CalibrationTable.from_json('{"version": 99, "kindnum": 1, "timings": {}}')

    def test_missing_fields_rejected(self):
        with pytest.raises(CalibrationError):
            CalibrationTable.from_json('{"version": 1}')

    def test_loaded_table_drives_engine(self, tmp_path, fast_calibration):
        from repro import CompressStreamDB, EngineConfig
        from repro.stream import Field, GeneratorSource, Schema

        path = tmp_path / "calib.json"
        fast_calibration.save(path)
        loaded = CalibrationTable.load(path)
        schema = Schema([Field("x")])
        engine = CompressStreamDB(
            {"S": schema},
            "select x, count(*) as c from S [range 8 slide 8] group by x",
            EngineConfig(calibration=loaded),
        )
        src = GeneratorSource(
            schema, lambda i: {"x": np.arange(64) % 4}, limit=2
        )
        report = engine.run(src)
        assert report.profiler.batches == 2


def test_cli_calibrate(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "c.json"
    assert main(["calibrate", "--out", str(out), "--repeats", "1"]) == 0
    assert out.exists()
    table = CalibrationTable.load(out)
    assert "ns" in table.timings and "deltachain" in table.timings
