"""The cascade-aware test battery: codecs, morphing, cache, runtime.

Locks down the cascaded codec families (``dict+rle``, ``delta+ns``,
``bd+nsv``, ``dict+bitmap``) and the mid-pipeline format-morphing path:

* hypothesis round-trips for every cascade in both kernel dispatch modes;
* golden format digests (payload + metadata) pinning the wire layout;
* wire-frame round-trips carrying cascade metadata;
* composed calibration fallback for tables recorded before cascades;
* the ``adaptive+cascades`` engine mode;
* :class:`~repro.core.decode_cache.DecodeCache` collision-resistance
  between a cascade column and its identical inner-stage payload, plus
  the morph store's hit accounting;
* the server's morph serving path end-to-end: identical answers with the
  morph on and off, ``morphed_columns`` reported, cache hits on repeats.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import CASCADE_POOL, get_codec
from repro.compression.cascade import CascadeCodec
from repro.compression.kernels import scalar_reference_mode
from repro.compression.registry import all_codec_names, default_pool
from repro.core.calibration import CalibrationError, CalibrationTable, CodecTiming
from repro.core.decode_cache import DecodeCache, _column_digest
from repro.core.server import Server
from repro.errors import CodecNotApplicable
from repro.optimizer import optimize_plan, schema_infos
from repro.optimizer.binder import stats_from_columns
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.stats import ColumnStats
from repro.stream.batch import Batch, CompressedBatch
from repro.stream.schema import Field, Schema
from repro.wire import deserialize_batch, serialize_batch

CASCADES = sorted(CASCADE_POOL)

int_columns = st.lists(
    st.integers(min_value=-(1 << 40), max_value=1 << 40), min_size=1, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.int64))

#: runny, low-cardinality columns: the regime cascades are built for
runny_columns = st.lists(
    st.tuples(
        st.integers(min_value=-40, max_value=40),
        st.integers(min_value=1, max_value=9),
    ),
    min_size=1,
    max_size=40,
).map(
    lambda runs: np.concatenate(
        [np.full(length, value, dtype=np.int64) for value, length in runs]
    )
)


def _roundtrip(codec_name, values):
    codec = get_codec(codec_name)
    stats = ColumnStats.from_values(values)
    if not codec.applicable(stats):
        return
    try:
        cc = codec.compress(values)
    except CodecNotApplicable:
        return
    np.testing.assert_array_equal(codec.decompress(cc), values)


class TestCascadeRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(values=int_columns)
    @pytest.mark.parametrize("codec_name", CASCADES)
    def test_roundtrip_any_ints(self, codec_name, values):
        _roundtrip(codec_name, values)

    @settings(max_examples=60, deadline=None)
    @given(values=runny_columns)
    @pytest.mark.parametrize("codec_name", CASCADES)
    def test_roundtrip_runny(self, codec_name, values):
        _roundtrip(codec_name, values)

    @settings(max_examples=25, deadline=None)
    @given(values=runny_columns)
    @pytest.mark.parametrize("codec_name", CASCADES)
    def test_roundtrip_scalar_reference_mode(self, codec_name, values):
        with scalar_reference_mode():
            _roundtrip(codec_name, values)

    @pytest.mark.parametrize("codec_name", CASCADES)
    def test_vectorized_and_scalar_payloads_are_identical(self, codec_name):
        rng = np.random.default_rng(3)
        values = np.repeat(rng.integers(-100, 100, 50), 4)
        codec = get_codec(codec_name)
        fast = codec.compress(values)
        with scalar_reference_mode():
            slow = codec.compress(values)
        np.testing.assert_array_equal(fast.payload, slow.payload)
        assert sorted(fast.meta) == sorted(slow.meta)


# ----- golden formats --------------------------------------------------


def _format_digest(cc) -> str:
    h = hashlib.sha256()
    h.update(cc.payload.tobytes())
    for key in sorted(cc.meta):
        value = cc.meta[key]
        h.update(key.encode())
        if isinstance(value, np.ndarray):
            h.update(value.tobytes())
        else:
            h.update(repr(value).encode())
    return h.hexdigest()[:16]


def _golden_columns():
    rng = np.random.default_rng(7)
    return {
        "dict+rle": np.repeat(rng.integers(-50, 50, 40), 6)[:200],
        "delta+ns": np.cumsum(rng.integers(0, 7, 200)) + 1_000_000,
        "bd+nsv": rng.integers(5_000_000, 5_300_000, 200),
        "dict+bitmap": rng.integers(0, 6, 200) * 1000,
    }


#: pinned payload+meta digests: a change here is a wire-format break
GOLDEN_DIGESTS = {
    "dict+rle": "7584f6e910809bb4",
    "delta+ns": "e25aa04a69edfb87",
    "bd+nsv": "662dbc062c566bbb",
    "dict+bitmap": "0be4ea90d51f4c76",
}


class TestCascadeGoldenFormats:
    @pytest.mark.parametrize("codec_name", CASCADES)
    def test_format_digest_is_pinned(self, codec_name):
        values = _golden_columns()[codec_name].astype(np.int64)
        cc = get_codec(codec_name).compress(values)
        assert _format_digest(cc) == GOLDEN_DIGESTS[codec_name]

    @pytest.mark.parametrize("codec_name", CASCADES)
    def test_format_digest_is_pinned_in_scalar_mode(self, codec_name):
        values = _golden_columns()[codec_name].astype(np.int64)
        with scalar_reference_mode():
            cc = get_codec(codec_name).compress(values)
        assert _format_digest(cc) == GOLDEN_DIGESTS[codec_name]

    def test_dict_rle_layout(self):
        # [30, 10, 30, 30] -> dictionary [10, 30], codes [1, 0, 1, 1]
        # -> rle runs (1, 0, 1) with lengths (1, 1, 2)
        cc = get_codec("dict+rle").compress(
            np.array([30, 10, 30, 30], dtype=np.int64)
        )
        np.testing.assert_array_equal(cc.meta["dictionary"], [10, 30])
        run_values = cc.payload[: 3 * 8].view(np.int64)
        run_lengths = cc.payload[3 * 8 :].view(np.int32)
        np.testing.assert_array_equal(run_values, [1, 0, 1])
        np.testing.assert_array_equal(run_lengths, [1, 1, 2])

    def test_delta_ns_layout(self):
        # deltas [0, 1, 2] pack to one unsigned byte each; the stage-1
        # start value rides in the cascade metadata
        cc = get_codec("delta+ns").compress(
            np.array([100, 101, 103], dtype=np.int64)
        )
        assert cc.meta["first"] == 100
        assert cc.meta["s2_width"] == 1
        assert bytes(cc.payload) == b"\x00\x01\x02"

    def test_nbytes_charges_stage1_metadata(self):
        values = np.repeat(np.arange(4, dtype=np.int64), 8)
        cc = get_codec("dict+rle").compress(values)
        inner = get_codec("dict+rle").inner_column(cc)
        assert cc.nbytes == inner.nbytes + cc.meta["dictionary"].nbytes


class TestCascadeEstimates:
    @pytest.mark.parametrize("codec_name", CASCADES)
    @pytest.mark.parametrize("shape", ["small_range", "runs", "monotone"])
    def test_estimate_tracks_achieved_ratio(
        self, codec_name, shape, column_shapes
    ):
        """Composed Sec. V estimates must track the payload-only ratio.

        Cascades compose two stage estimates, so the error compounds: a
        wider tolerance than the single-codec test, but the same shape.
        """
        codec = get_codec(codec_name)
        values = column_shapes[shape]
        stats = ColumnStats.from_values(values)
        if not codec.applicable(stats):
            pytest.skip("not applicable")
        cc = codec.compress(values)
        estimated = codec.estimate_ratio(stats)
        achieved_payload = (values.size * 8) / cc.payload.nbytes
        assert estimated == pytest.approx(achieved_payload, rel=0.6)

    @pytest.mark.parametrize("codec_name", CASCADES)
    def test_transmitted_ratio_counts_metadata(self, codec_name):
        rng = np.random.default_rng(5)
        values = np.repeat(rng.integers(0, 8, 64), 8)
        codec = get_codec(codec_name)
        stats = ColumnStats.from_values(values)
        if not codec.applicable(stats):
            pytest.skip("not applicable")
        # transmitted estimate must not exceed the payload-only estimate
        assert codec.estimate_transmitted_ratio(stats) <= (
            codec.estimate_ratio(stats) * 1.0 + 1e-9
        )


# ----- registry, pool, wire, calibration --------------------------------


class TestCascadeIntegration:
    def test_registry_lists_cascades(self):
        names = all_codec_names()
        for name in CASCADE_POOL:
            assert name in names
            assert isinstance(get_codec(name), CascadeCodec)

    def test_default_pool_excludes_cascades_unless_extended(self):
        plain = {c.name for c in default_pool()}
        assert not (plain & set(CASCADE_POOL))
        extended = {c.name for c in default_pool(extensions=CASCADE_POOL)}
        assert set(CASCADE_POOL) <= extended

    def test_wire_roundtrip_with_cascade_columns(self):
        schema = Schema([Field("ts", "int", 8), Field("k", "int", 4)])
        rng = np.random.default_rng(9)
        columns = {
            "ts": np.cumsum(rng.integers(0, 5, 64)).astype(np.int64),
            "k": np.repeat(rng.integers(0, 6, 16), 4).astype(np.int64),
        }
        cc = {
            "ts": get_codec("delta+ns").compress(columns["ts"]),
            "k": get_codec("dict+rle").compress(columns["k"]),
        }
        batch = CompressedBatch(schema, 64, cc)
        frame = serialize_batch(batch)
        decoded = deserialize_batch(frame, schema)
        for name in columns:
            codec = get_codec(decoded.columns[name].codec)
            np.testing.assert_array_equal(
                codec.decompress(decoded.columns[name]), columns[name]
            )

    def test_composed_calibration_fallback(self):
        # a table recorded before cascades existed still prices them:
        # stage-proxy + stage-2 coefficients summed per Eqs. 2/6
        base = {
            name: CodecTiming(1e-9, 1e-6, 2e-9, 1e-6)
            for name in ("identity", "dict", "rle", "deltachain", "ns")
        }
        table = CalibrationTable(timings=base)
        t = table.timing("dict+rle")
        assert t.compress_a == pytest.approx(2e-9)
        assert t.decompress_a == pytest.approx(4e-9)
        # delta proxies through deltachain
        assert table.timing("delta+ns").compress_a == pytest.approx(2e-9)
        with pytest.raises(CalibrationError):
            table.timing("bd+nsv")  # bd/nsv never calibrated: still an error

    def test_adaptive_cascades_mode_extends_the_pool(self, fast_calibration):
        from repro import CompressStreamDB, EngineConfig
        from repro.core.selector import AdaptiveSelector

        schema = Schema([Field("a")])
        engine = CompressStreamDB(
            {"S": schema},
            "select count(*) as c from S [range 8 slide 8]",
            EngineConfig(mode="adaptive+cascades", calibration=fast_calibration),
        )
        pipeline = engine.make_pipeline()
        selector = pipeline.client.selector
        assert isinstance(selector, AdaptiveSelector)
        assert set(CASCADE_POOL) <= {c.name for c in selector.pool}

    def test_adaptive_cascades_answers_match_baseline(self, fast_calibration):
        from repro import CompressStreamDB, EngineConfig
        from repro.stream.source import GeneratorSource

        schema = Schema([Field("k", "int", 4), Field("v", "int", 8)])
        rng = np.random.default_rng(2)

        def make(index):
            return {
                "k": np.repeat(rng.integers(0, 5, 16), 8),
                "v": np.cumsum(rng.integers(0, 9, 128)),
            }

        query = "select k, sum(v) as s from S [range 64 slide 64] group by k"
        reports = {}
        for mode in ("baseline", "adaptive+cascades"):
            engine = CompressStreamDB(
                {"S": schema},
                query,
                EngineConfig(mode=mode, calibration=fast_calibration),
            )
            rng = np.random.default_rng(2)  # same data per mode
            src = GeneratorSource(schema, make, limit=3)
            reports[mode] = engine.run(src, collect_outputs=True)
        base = reports["baseline"].outputs
        casc = reports["adaptive+cascades"].outputs
        assert sorted(base.columns) == sorted(casc.columns)
        for name in base.columns:
            np.testing.assert_allclose(
                np.sort(base.columns[name]), np.sort(casc.columns[name])
            )


# ----- decode-cache collision + morph store ------------------------------


class TestDecodeCacheCascadeKeys:
    def test_cascade_and_inner_payload_digests_cannot_collide(self):
        # dictionary [0, 1, 2] encodes values to themselves, so the
        # cascade payload is byte-identical to plain RLE on the same ints
        values = np.array([0, 0, 1, 1, 1, 2], dtype=np.int64)
        cascade = get_codec("dict+rle").compress(values)
        inner = get_codec("rle").compress(values)
        np.testing.assert_array_equal(cascade.payload, inner.payload)
        assert _column_digest(cascade) != _column_digest(inner)

    def test_cache_decodes_both_twins_correctly(self):
        values = np.array([0, 0, 1, 1, 1, 2], dtype=np.int64)
        cascade = get_codec("dict+rle").compress(values)
        inner = get_codec("rle").compress(values)
        cache = DecodeCache()
        out_cascade = cache.decompress(get_codec("dict+rle"), cascade)
        out_inner = cache.decompress(get_codec("rle"), inner)
        np.testing.assert_array_equal(out_cascade, values)
        np.testing.assert_array_equal(out_inner, values)
        assert cache.misses == 2  # two distinct entries, no false sharing

    def test_morph_store_memoizes_and_reports_hits(self):
        values = np.repeat(np.arange(4, dtype=np.int64), 8)
        column = get_codec("rle").compress(values)
        cache = DecodeCache()
        first = cache.morph(get_codec("rle"), column, get_codec("bitmap"))
        assert (cache.morph_hits, cache.morph_misses) == (0, 1)
        again = cache.morph(get_codec("rle"), column, get_codec("bitmap"))
        assert (cache.morph_hits, cache.morph_misses) == (1, 1)
        assert again is first
        np.testing.assert_array_equal(
            get_codec("bitmap").decompress(first), values
        )

    def test_morph_key_separates_targets_and_counts_bytes(self):
        values = np.repeat(np.arange(4, dtype=np.int64), 8)
        column = get_codec("dict+rle").compress(values)
        cache = DecodeCache()
        cache.morph(get_codec("dict+rle"), column, get_codec("dict+bitmap"))
        cache.morph(get_codec("dict+rle"), column, get_codec("bitmap"))
        assert cache.morph_misses == 2
        assert len(cache) >= 2
        assert cache.total_bytes > 0  # morphed columns count toward bounds


# ----- the server's morph serving path ----------------------------------


MORPH_SCHEMA = Schema(
    [Field("ts", "int", 8), Field("value", "int", 8), Field("kind", "int", 8)]
)
MORPH_SQL = (
    "select avg(value) as a from S [range 32 slide 32] "
    "where kind == 1 or kind == 3 or kind == 5 or kind == 7"
)


def _morph_batches(batches=3, n=128):
    rng = np.random.default_rng(11)
    out = []
    ts = 0
    for _ in range(batches):
        kind = np.repeat(rng.integers(0, 10, n // 4), 4).astype(np.int64)
        columns = {
            "ts": ts + np.arange(n, dtype=np.int64),
            "value": rng.integers(0, 1000, n).astype(np.int64),
            "kind": kind,
        }
        ts += n
        out.append(Batch(MORPH_SCHEMA, columns))
    return out


def _morph_plan(optimize=True):
    script = parse(MORPH_SQL)
    plan = Planner({"S": MORPH_SCHEMA}).plan(script)
    if not optimize:
        return plan
    merged = {
        name: np.concatenate([b.column(name) for b in _morph_batches()])
        for name in ("ts", "value", "kind")
    }
    stats = stats_from_columns(MORPH_SCHEMA, merged)
    infos = schema_infos(MORPH_SCHEMA, codec_hint="rle", stats=stats)
    return optimize_plan(plan, infos, script=script).plan


def _compress_rle(batch):
    identity = get_codec("identity")
    rle = get_codec("rle")
    columns = {}
    for f in batch.schema:
        values = batch.column(f.name)
        stats = ColumnStats.from_values(values, size_c=f.size)
        codec = rle if rle.applicable(stats) else identity
        columns[f.name] = codec.compress(values)
    return CompressedBatch(batch.schema, batch.n, columns)


class TestServerMorphServing:
    def test_plan_carries_a_morph_decision(self):
        plan = _morph_plan()
        assert plan.opt is not None
        assert "morph" in plan.opt.rules_fired
        decisions = {m.column: m for m in plan.opt.morphs}
        assert decisions["kind"].from_codec == "rle"
        assert decisions["kind"].to_codec == "bitmap"
        assert plan.opt.estimated_cost < plan.opt.baseline_cost

    def test_morph_on_equals_morph_off(self):
        batches = _morph_batches()
        morph_server = Server(_morph_plan(optimize=True))
        naive_server = Server(_morph_plan(optimize=False))
        for batch in batches:
            cb = _compress_rle(batch)
            morphed = morph_server.process(cb)
            naive = naive_server.process(cb)
            assert morphed.morphed_columns == ("kind",)
            assert "kind" not in morphed.decoded_columns
            assert naive.morphed_columns == ()
            for name in naive.result.columns:
                np.testing.assert_allclose(
                    naive.result.columns[name], morphed.result.columns[name]
                )

    def test_repeated_payloads_hit_the_morph_cache(self):
        server = Server(_morph_plan())
        batch = _morph_batches(batches=1)[0]
        cb = _compress_rle(batch)
        first = server.process(cb)
        assert (first.morph_cache_hits, first.morph_cache_misses) == (0, 1)
        again = server.process(_compress_rle(batch))
        assert (again.morph_cache_hits, again.morph_cache_misses) == (1, 0)

    def test_morph_falls_through_on_codec_mismatch(self):
        # the batch arrives as identity (not the decision's from-codec):
        # the server must serve it through the ordinary paths
        server = Server(_morph_plan())
        batch = _morph_batches(batches=1)[0]
        identity = get_codec("identity")
        cb = CompressedBatch(
            batch.schema,
            batch.n,
            {
                f.name: identity.compress(batch.column(f.name))
                for f in batch.schema
            },
        )
        report = server.process(cb)
        assert report.morphed_columns == ()
        naive = Server(_morph_plan(optimize=False)).process(cb)
        for name in naive.result.columns:
            np.testing.assert_allclose(
                naive.result.columns[name], report.result.columns[name]
            )
