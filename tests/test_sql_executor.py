"""Unit tests for plan executors: windows across batches, grouped output,
passthrough projection, the Q3 join, and direct-vs-decoded equivalence."""

import numpy as np

from repro.compression import get_codec
from repro.operators.base import ExecColumn, decoded_column
from repro.sql import QueryResult, make_executor, plan_query
from repro.stream import Batch, Field, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
        Field("pos", "int", 4),
    ]
)
CATALOG = {"S": SCHEMA}


def decoded_cols(batch):
    return {
        name: decoded_column(name, batch.column(name)) for name in batch.schema.names
    }


def direct_cols(batch, codec_name="bd"):
    codec = get_codec(codec_name)
    out = {}
    for name in batch.schema.names:
        cc = codec.compress(batch.column(name))
        out[name] = ExecColumn(name, codec.direct_codes(cc), codec, cc)
    return out


def make_batch(n, seed=0, k_range=3):
    rng = np.random.default_rng(seed)
    return Batch.from_values(
        SCHEMA,
        {
            "ts": np.arange(n) + 1000,
            "k": rng.integers(0, k_range, n),
            "v": np.round(rng.integers(0, 400, n) / 4, 2),
            "pos": rng.integers(0, 10_000, n),
        },
    )


class TestWindowAggExecutor:
    def test_global_avg_exact(self):
        plan = plan_query("select ts, avg(v) as m from S [range 4 slide 4]", CATALOG)
        ex = make_executor(plan)
        batch = make_batch(8)
        res = ex.execute(decoded_cols(batch), 8)
        stored = batch.column("v")
        expected = [stored[0:4].mean() / 100, stored[4:8].mean() / 100]
        np.testing.assert_allclose(res.columns["m"], expected)
        np.testing.assert_array_equal(res.columns["ts"], [1003, 1007])

    def test_direct_equals_decoded(self):
        plan = plan_query(
            "select ts, k, avg(v) as m, max(pos) as p from S [range 8 slide 8] group by k",
            CATALOG,
        )
        batch = make_batch(32, seed=5)
        res_decoded = make_executor(plan).execute(decoded_cols(batch), 32)
        res_direct = make_executor(plan).execute(direct_cols(batch, "bd"), 32)
        assert res_decoded.n_rows == res_direct.n_rows
        for name in res_decoded.columns:
            np.testing.assert_array_equal(
                res_decoded.columns[name], res_direct.columns[name], err_msg=name
            )

    def test_cross_batch_window_equals_single_feed(self):
        plan = plan_query("select avg(v) as m from S [range 6 slide 2]", CATALOG)
        whole = make_batch(20, seed=3)
        # single feed
        res_one = make_executor(plan).execute(decoded_cols(whole), 20)
        # split into uneven batches
        ex = make_executor(plan)
        parts = [whole.slice(0, 7), whole.slice(7, 12), whole.slice(12, 20)]
        merged = QueryResult.merge(
            [ex.execute(decoded_cols(p), p.n) for p in parts]
        )
        np.testing.assert_allclose(merged.columns["m"], res_one.columns["m"])

    def test_cross_batch_with_compressed_columns(self):
        plan = plan_query("select avg(v) as m from S [range 6 slide 3]", CATALOG)
        whole = make_batch(24, seed=9)
        res_one = make_executor(plan).execute(decoded_cols(whole), 24)
        ex = make_executor(plan)
        parts = [whole.slice(0, 10), whole.slice(10, 17), whole.slice(17, 24)]
        merged = QueryResult.merge(
            [ex.execute(direct_cols(p, "bd"), p.n) for p in parts]
        )
        np.testing.assert_allclose(merged.columns["m"], res_one.columns["m"])

    def test_where_filters_before_windowing(self):
        plan = plan_query(
            "select avg(v) as m from S [range 4 slide 4] where k == 1", CATALOG
        )
        batch = make_batch(64, seed=1)
        res = ex_res = make_executor(plan).execute(decoded_cols(batch), 64)
        kept = batch.column("v")[batch.column("k") == 1]
        n_windows = kept.size // 4
        assert res.n_rows == n_windows
        expected = [kept[i * 4:(i + 1) * 4].mean() / 100 for i in range(n_windows)]
        np.testing.assert_allclose(res.columns["m"], expected)

    def test_empty_batch_of_windows(self):
        plan = plan_query("select avg(v) as m from S [range 100 slide 100]", CATALOG)
        ex = make_executor(plan)
        res = ex.execute(decoded_cols(make_batch(10)), 10)
        assert res.n_rows == 0
        # the pending tuples complete a window later
        res2 = ex.execute(decoded_cols(make_batch(95)), 95)
        assert res2.n_rows == 1

    def test_grouped_output_orders_windows(self):
        plan = plan_query(
            "select k, count(*) as c from S [range 5 slide 5] group by k", CATALOG
        )
        batch = make_batch(10, seed=2, k_range=2)
        res = make_executor(plan).execute(decoded_cols(batch), 10)
        # counts per window must each sum to the window size
        counts = res.columns["c"]
        ks = res.columns["k"]
        assert counts.sum() == 10


class TestPassthroughExecutor:
    def test_projection_with_expression(self):
        plan = plan_query(
            "select ts, (pos/100) as cell from S [range unbounded]", CATALOG
        )
        batch = make_batch(16, seed=4)
        res = make_executor(plan).execute(decoded_cols(batch), 16)
        np.testing.assert_array_equal(
            res.columns["cell"], batch.column("pos") // 100
        )

    def test_distinct_projection(self):
        plan = plan_query("select distinct k from S [range unbounded]", CATALOG)
        batch = make_batch(50, seed=6, k_range=3)
        res = make_executor(plan).execute(decoded_cols(batch), 50)
        assert res.n_rows == len(np.unique(batch.column("k")))

    def test_float_output_dequantized(self):
        plan = plan_query("select v from S [range unbounded]", CATALOG)
        batch = make_batch(4, seed=7)
        res = make_executor(plan).execute(decoded_cols(batch), 4)
        np.testing.assert_allclose(res.columns["v"], batch.column("v") / 100)

    def test_where_on_passthrough(self):
        plan = plan_query(
            "select ts from S [range unbounded] where pos >= 5000", CATALOG
        )
        batch = make_batch(40, seed=8)
        res = make_executor(plan).execute(decoded_cols(batch), 40)
        expected = batch.column("ts")[batch.column("pos") >= 5000]
        np.testing.assert_array_equal(res.columns["ts"], expected)


class TestJoinExecutor:
    CAT = {"S": SCHEMA}
    TEXT = (
        "select distinct L.ts, L.k, L.pos from S [range 4 slide 4] as A, "
        "S [partition by k rows 1] as L where A.k == L.k"
    )

    def test_latest_row_semantics(self):
        plan = plan_query(self.TEXT, self.CAT)
        ex = make_executor(plan)
        batch = Batch.from_values(
            SCHEMA,
            {
                "ts": [1, 2, 3, 4],
                "k": [7, 8, 7, 8],
                "v": [0.0] * 4,
                "pos": [10, 20, 30, 40],
            },
        )
        res = ex.execute(decoded_cols(batch), 4)
        assert res.n_rows == 2
        np.testing.assert_array_equal(np.sort(res.columns["ts"]), [3, 4])

    def test_state_survives_batches(self):
        plan = plan_query(self.TEXT, self.CAT)
        ex = make_executor(plan)
        b1 = Batch.from_values(
            SCHEMA,
            {
                "ts": [1, 2, 3, 4],
                "k": [5, 5, 5, 5],
                "v": [0.0] * 4,
                "pos": [1, 2, 3, 4],
            },
        )
        ex.execute(decoded_cols(b1), 4)
        b2 = Batch.from_values(
            SCHEMA,
            {
                "ts": [9, 10, 11, 12],
                "k": [6, 5, 6, 6],
                "v": [0.0] * 4,
                "pos": [5, 6, 7, 8],
            },
        )
        res = ex.execute(decoded_cols(b2), 4)
        # window sees keys {5, 6}: latest 5 is ts 10, latest 6 is ts 12
        np.testing.assert_array_equal(np.sort(res.columns["ts"]), [10, 12])

    def test_join_does_not_see_future_rows(self):
        plan = plan_query(self.TEXT, self.CAT)
        ex = make_executor(plan)
        # two windows in one batch: the first window's lookup must not see
        # rows of the second window
        batch = Batch.from_values(
            SCHEMA,
            {
                "ts": [1, 2, 3, 4, 5, 6, 7, 8],
                "k": [1, 1, 1, 1, 1, 1, 1, 1],
                "v": [0.0] * 8,
                "pos": list(range(8)),
            },
        )
        res = ex.execute(decoded_cols(batch), 8)
        # window 1 -> latest ts 4; window 2 -> latest ts 8
        np.testing.assert_array_equal(np.sort(res.columns["ts"]), [4, 8])


class TestQueryResult:
    def test_merge(self):
        a = QueryResult(columns={"x": np.array([1, 2])}, n_rows=2)
        b = QueryResult(columns={"x": np.array([3])}, n_rows=1)
        merged = QueryResult.merge([a, b])
        np.testing.assert_array_equal(merged.columns["x"], [1, 2, 3])
        assert merged.n_rows == 3

    def test_merge_skips_empty(self):
        a = QueryResult(columns={"x": np.zeros(0)}, n_rows=0)
        merged = QueryResult.merge([a])
        assert merged.n_rows == 0
