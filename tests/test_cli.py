"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert (args.query, args.mode) == ("q1", "adaptive")

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--query", "q99"])


class TestCommands:
    def test_codecs(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for name in ("bd", "bitmap", "dict", "eg", "ed", "ns", "nsv", "rle"):
            assert name in out
        assert "affine" in out

    def test_ratios(self, capsys):
        args = ["ratios", "--dataset", "smart_grid", "--column", "value", "-n", "2048"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "kindnum" in out
        assert "achieved" in out

    def test_ratios_unknown_column(self, capsys):
        assert main(["ratios", "--dataset", "smart_grid", "--column", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_explain_q3(self, capsys):
        assert main(["explain", "--dataset", "linear_road", "--query", "q3"]) == 0
        out = capsys.readouterr().out
        assert "JoinPlan" in out
        assert "inner side L: by vehicle rows 1, probe vehicle == vehicle" in out

    def test_explain_custom_sql(self, capsys):
        sql = "select timestamp, avg(cpu) as c from TaskEvents [range 64 slide 64]"
        assert main(["explain", "--dataset", "cluster", "--sql", sql]) == 0
        out = capsys.readouterr().out
        assert "WindowAggPlan" in out
        assert "cpu: affine" in out

    def test_explain_bad_sql_is_error(self, capsys):
        assert main(["explain", "--dataset", "cluster", "--sql", "selec x"]) == 2

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--query",
                "q5",
                "--mode",
                "static:ns",
                "--batches",
                "1",
                "--windows",
                "2",
                "--show-rows",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "time breakdown" in out
        assert "totalCPU" in out

    def test_run_single_node(self, capsys):
        code = main(
            [
                "run",
                "--query",
                "q1",
                "--mode",
                "baseline",
                "--bandwidth",
                "0",
                "--batches",
                "1",
                "--windows",
                "2",
            ]
        )
        assert code == 0
        assert "trans 0.0%" in capsys.readouterr().out
