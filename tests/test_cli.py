"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert (args.query, args.mode) == ("q1", "adaptive")

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--query", "q99"])


class TestCommands:
    def test_codecs(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for name in ("bd", "bitmap", "dict", "eg", "ed", "ns", "nsv", "rle"):
            assert name in out
        assert "affine" in out

    def test_ratios(self, capsys):
        args = ["ratios", "--dataset", "smart_grid", "--column", "value", "-n", "2048"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "kindnum" in out
        assert "achieved" in out

    def test_ratios_unknown_column(self, capsys):
        assert main(["ratios", "--dataset", "smart_grid", "--column", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_explain_q3(self, capsys):
        assert main(["explain", "--dataset", "linear_road", "--query", "q3"]) == 0
        out = capsys.readouterr().out
        assert "JoinPlan" in out
        assert "inner side L: by vehicle rows 1, probe vehicle == vehicle" in out

    def test_explain_custom_sql(self, capsys):
        sql = "select timestamp, avg(cpu) as c from TaskEvents [range 64 slide 64]"
        assert main(["explain", "--dataset", "cluster", "--sql", sql]) == 0
        out = capsys.readouterr().out
        assert "WindowAggPlan" in out
        assert "cpu: affine" in out

    def test_explain_bad_sql_is_error(self, capsys):
        assert main(["explain", "--dataset", "cluster", "--sql", "selec x"]) == 2

    def test_explain_positional_sql_full_catalog(self, capsys):
        # no --dataset: positional SQL resolves streams across the union
        # catalog, and the logical plan + fired rules are appended
        sql = "select avg(cpu) as c from TaskEvents [range 64 slide 64]"
        assert main(["explain", sql]) == 0
        out = capsys.readouterr().out
        assert "logical plan:" in out
        assert "-> window-agg" in out
        assert "rules fired:" in out

    def test_explain_json_is_machine_readable(self, capsys):
        import json

        assert main(["explain", "--query", "q1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["plan"]["node"] in ("project", "order-limit")
        assert len(doc["digest"]) == 16
        assert "rules_fired" in doc["optimizer"]

    def test_explain_no_optimize_renders_naive_plan(self, capsys):
        assert main(["explain", "--query", "q1", "--no-optimize"]) == 0
        out = capsys.readouterr().out
        assert "logical plan:" in out
        assert "rules fired" not in out

    def test_explain_codec_hint_fires_fusion(self, capsys):
        sql = (
            "select avg(value) as a from SmartGridStr "
            "[range 64 slide 64] where value < 3.0"
        )
        assert main(["explain", sql, "--codec", "rle"]) == 0
        out = capsys.readouterr().out
        assert "fusion" in out
        assert "fused_on=value" in out

    def test_explain_corpus_query_resolves(self, capsys):
        # workload-corpus names (beyond q1-q6) resolve via --query
        assert main(["explain", "--query", "sg_or_filter"]) == 0
        out = capsys.readouterr().out
        assert "logical plan:" in out

    def test_explain_unknown_query_is_error(self, capsys):
        assert main(["explain", "--query", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_explain_stats_needs_a_named_query(self, capsys):
        sql = "select avg(cpu) as c from TaskEvents [range 64 slide 64]"
        assert main(["explain", sql, "--stats"]) == 2

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--query",
                "q5",
                "--mode",
                "static:ns",
                "--batches",
                "1",
                "--windows",
                "2",
                "--show-rows",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "time breakdown" in out
        assert "totalCPU" in out

    def test_run_single_node(self, capsys):
        code = main(
            [
                "run",
                "--query",
                "q1",
                "--mode",
                "baseline",
                "--bandwidth",
                "0",
                "--batches",
                "1",
                "--windows",
                "2",
            ]
        )
        assert code == 0
        assert "trans 0.0%" in capsys.readouterr().out
