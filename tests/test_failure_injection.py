"""Failure injection: corrupted payloads, malformed inputs, misuse.

Errors must surface as typed exceptions, never silent corruption — the
engine's "only lossless compression" guarantee depends on it.
"""

import numpy as np
import pytest

from repro.compression import CompressedColumn, get_codec
from repro.errors import (
    CodecError,
    PlanningError,
    QuantizationError,
    ReproError,
    SchemaError,
    SQLSyntaxError,
)
from repro.operators.base import ExecColumn
from repro.sql import plan_query
from repro.stream import Batch, Field, Schema


class TestCorruptedPayloads:
    def test_rle_inconsistent_lengths(self):
        codec = get_codec("rle")
        cc = codec.compress(np.array([1, 1, 2, 2], dtype=np.int64))
        cc.n = 5  # claims more tuples than the runs reconstruct
        with pytest.raises(CodecError):
            codec.decompress(cc)

    def test_ns_truncated_payload(self):
        codec = get_codec("ns")
        cc = codec.compress(np.arange(10, dtype=np.int64))
        cc.payload = cc.payload[:-1]
        with pytest.raises(CodecError):
            codec.decompress(cc)

    def test_nsv_truncated_data_section(self):
        codec = get_codec("nsv")
        cc = codec.compress(np.arange(100, 200, dtype=np.int64))
        cc.payload = cc.payload[: cc.meta["desc_nbytes"] + 3]
        with pytest.raises(CodecError):
            codec.decompress(cc)

    def test_delta_invalid_codeword(self):
        codec = get_codec("ed")
        cc = codec.compress(np.array([5, 6], dtype=np.int64))
        cc.payload = np.zeros_like(cc.payload)  # codeword 0 is invalid
        with pytest.raises(CodecError):
            codec.decompress(cc)

    def test_wrong_codec_dispatch(self):
        ns = get_codec("ns")
        bd = get_codec("bd")
        cc = ns.compress(np.arange(5, dtype=np.int64))
        with pytest.raises(CodecError):
            bd.decompress(cc)

    def test_negative_length_column(self):
        with pytest.raises(CodecError):
            CompressedColumn(codec="ns", n=-1, payload=np.zeros(1, dtype=np.uint8))


class TestMisuse:
    def test_exec_column_direct_needs_payload(self):
        with pytest.raises(PlanningError):
            ExecColumn("x", np.arange(3), get_codec("ns"), None)

    def test_identity_codec_cannot_direct_process_foreign(self):
        codec = get_codec("identity")
        with pytest.raises(CodecError):
            codec.direct_codes(
                CompressedColumn(codec="ns", n=1, payload=np.zeros(8, dtype=np.uint8))
            )

    def test_rle_direct_processing_unsupported(self):
        codec = get_codec("rle")
        cc = codec.compress(np.array([1, 1], dtype=np.int64))
        with pytest.raises(CodecError):
            codec.direct_codes(cc)
        with pytest.raises(CodecError):
            codec.affine_params(cc)
        with pytest.raises(CodecError):
            codec.encode_literal(cc, 1)
        with pytest.raises(CodecError):
            codec.lower_bound(cc, 1)

    def test_error_hierarchy(self):
        for exc in (
            CodecError, PlanningError, SchemaError, SQLSyntaxError, QuantizationError
        ):
            assert issubclass(exc, ReproError)


class TestEngineRobustness:
    SCHEMA = Schema([Field("a"), Field("b", "float", 4, decimals=1)])

    def test_quantization_error_propagates(self):
        with pytest.raises(QuantizationError):
            Batch.from_values(self.SCHEMA, {"a": [1], "b": [0.123]})

    def test_planner_validates_before_running(self):
        with pytest.raises(PlanningError):
            plan_query("select avg(ghost) from S [range 4]", {"S": self.SCHEMA})

    def test_sql_error_positions(self):
        with pytest.raises(SQLSyntaxError):
            plan_query("select avg(a from S [range 4]", {"S": self.SCHEMA})

    def test_run_on_empty_source(self, fast_calibration):
        from repro import CompressStreamDB, EngineConfig

        engine = CompressStreamDB(
            {"S": self.SCHEMA},
            "select avg(a) as m from S [range 4]",
            EngineConfig(calibration=fast_calibration),
        )
        report = engine.run([])
        assert report.profiler.batches == 0
        assert report.throughput == 0.0
        assert report.avg_latency == 0.0
