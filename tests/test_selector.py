"""Unit tests for the adaptive, static and fixed-plan selectors."""

import numpy as np
import pytest

from repro.compression import get_codec
from repro.core import (
    AdaptiveSelector,
    CostModel,
    FixedPlanSelector,
    QueryProfile,
    StaticSelector,
    SystemParams,
    column_stats_from_batches,
)
from repro.errors import CodecError
from repro.net import Channel
from repro.stats import ColumnStats
from repro.stream import Batch, Field, Schema


@pytest.fixture
def model(fast_calibration):
    return CostModel(fast_calibration, SystemParams(), Channel(bandwidth_mbps=100))


def stats_of(values, size_c=8):
    return {
        "col": ColumnStats.from_values(
            np.asarray(values, dtype=np.int64), size_c=size_c
        )
    }


class TestAdaptiveSelector:
    def test_prefers_rle_on_long_runs(self, model):
        stats = stats_of(np.repeat(np.arange(4), 256))
        choice = AdaptiveSelector(model).select(stats, QueryProfile(), 1024)
        assert choice["col"].name in ("rle", "dict", "bitmap")

    def test_prefers_narrow_codec_on_small_domain_high_cardinality(self, model, rng):
        # values 0..255, nearly all distinct ranks -> NS/BD territory,
        # dictionary would ship a large dictionary
        stats = stats_of(rng.permutation(np.arange(250)))
        choice = AdaptiveSelector(model).select(stats, QueryProfile(), 1024)
        assert choice["col"].name in ("ns", "bd", "eg", "ed", "nsv")

    def test_skips_inapplicable_codecs(self, model, rng):
        stats = stats_of(rng.integers(-100, 100, 512))
        pool = [get_codec("eg"), get_codec("ed")]
        choice = AdaptiveSelector(model, pool).select(stats, QueryProfile(), 512)
        assert choice["col"].name == "identity"  # nothing applicable -> fallback

    def test_identity_when_compression_cannot_pay(self, fast_calibration, rng):
        # single-node: no transmission savings; no query references either,
        # so any compression work is pure loss
        model = CostModel(fast_calibration, SystemParams(), Channel.single_node())
        stats = stats_of(rng.integers(0, 1 << 60, 512))
        choice = AdaptiveSelector(model).select(stats, QueryProfile(), 512)
        assert choice["col"].name == "identity"

    def test_empty_pool_rejected(self, model):
        with pytest.raises(CodecError):
            AdaptiveSelector(model, [])

    def test_selects_per_column_independently(self, model, rng):
        stats = {
            "runs": ColumnStats.from_values(np.repeat(np.arange(8), 128)),
            "wide": ColumnStats.from_values(rng.integers(0, 1 << 50, 1024)),
        }
        choice = AdaptiveSelector(model).select(stats, QueryProfile(), 1024)
        assert choice["runs"].name != choice["wide"].name


class TestStaticSelector:
    def test_same_codec_everywhere(self, rng):
        stats = {
            "a": ColumnStats.from_values(rng.integers(0, 10, 64)),
            "b": ColumnStats.from_values(rng.integers(0, 10, 64)),
        }
        choice = StaticSelector("bd").select(stats, QueryProfile(), 64)
        assert {c.name for c in choice.values()} == {"bd"}

    def test_falls_back_to_identity_when_inapplicable(self, rng):
        stats = {"neg": ColumnStats.from_values(rng.integers(-5, 5, 64))}
        choice = StaticSelector("eg").select(stats, QueryProfile(), 64)
        assert choice["neg"].name == "identity"


class TestFixedPlanSelector:
    def test_explicit_mapping(self, rng):
        stats = {
            "a": ColumnStats.from_values(rng.integers(0, 10, 64)),
            "b": ColumnStats.from_values(rng.integers(0, 10, 64)),
        }
        sel = FixedPlanSelector({"a": "rle"}, default="ns")
        choice = sel.select(stats, QueryProfile(), 64)
        assert choice["a"].name == "rle"
        assert choice["b"].name == "ns"


class TestColumnStatsFromBatches:
    def _batches(self):
        schema = Schema([Field("x", "int", 4)])
        return schema, [
            Batch(schema, {"x": np.arange(10, dtype=np.int64)}),
            Batch(schema, {"x": np.arange(10, 20, dtype=np.int64)}),
        ]

    def test_concatenates_lookahead(self):
        schema, batches = self._batches()
        stats = column_stats_from_batches(batches, schema)
        assert stats["x"].n == 20
        assert stats["x"].max_value == 19
        assert stats["x"].size_c == 4  # from the schema, not the array

    def test_sample_cap(self):
        schema, batches = self._batches()
        stats = column_stats_from_batches(batches, schema, max_sample=5)
        assert stats["x"].n == 5
        assert stats["x"].min_value == 15  # most recent values kept

    def test_requires_batches(self):
        schema, _ = self._batches()
        with pytest.raises(CodecError):
            column_stats_from_batches([], schema)
