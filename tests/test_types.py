"""Unit tests for exact-width integer packing and width math."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.types import (
    NUMPY_WIDTHS,
    bytes_for_range,
    bytes_for_signed,
    bytes_for_unsigned,
    exact_nbytes,
    numpy_width,
    pack_int_array,
    signed_dtype,
    unpack_int_array,
    unsigned_dtype,
)


class TestNumpyWidth:
    @pytest.mark.parametrize(
        "width,expected",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (6, 8), (7, 8), (8, 8)],
    )
    def test_rounds_up(self, width, expected):
        assert numpy_width(width) == expected

    @pytest.mark.parametrize("bad", [0, -1, 9, 100])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(CodecError):
            numpy_width(bad)

    def test_dtype_helpers_match_width(self):
        for w in NUMPY_WIDTHS:
            assert unsigned_dtype(w).itemsize == w
            assert signed_dtype(w).itemsize == w


class TestByteWidths:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, 1),
            (1, 1),
            (255, 1),
            (256, 2),
            (65535, 2),
            (65536, 3),
            (1 << 31, 4),
            ((1 << 56) - 1, 7),
            (1 << 62, 8),
        ],
    )
    def test_unsigned(self, value, expected):
        assert bytes_for_unsigned(value) == expected

    @pytest.mark.parametrize(
        "lo,hi,expected",
        [
            (0, 127, 1),
            (-128, 127, 1),
            (-129, 0, 2),
            (0, 128, 2),
            (-32768, 32767, 2),
            (0, 1 << 31, 5),
            (-(1 << 31), (1 << 31) - 1, 4),
        ],
    )
    def test_signed(self, lo, hi, expected):
        assert bytes_for_signed(lo, hi) == expected

    def test_range_dispatches_on_sign(self):
        assert bytes_for_range(0, 255) == 1       # unsigned fit
        assert bytes_for_range(-1, 255) == 2      # needs sign bit

    def test_exact_nbytes(self):
        assert exact_nbytes(10, 3) == 30


class TestPacking:
    @pytest.mark.parametrize("width", range(1, 9))
    def test_unsigned_roundtrip(self, width, rng):
        hi = (1 << (8 * width)) - 1 if width < 8 else (1 << 62)
        values = rng.integers(0, hi, size=257, dtype=np.int64)
        packed = pack_int_array(values, width)
        assert packed.size == 257 * width
        out = unpack_int_array(packed, width, 257)
        np.testing.assert_array_equal(out, values)

    @pytest.mark.parametrize("width", range(1, 9))
    def test_signed_roundtrip(self, width, rng):
        bound = 1 << (8 * width - 1)
        lo = -bound
        hi = bound - 1 if width < 8 else (1 << 62)
        values = rng.integers(lo, hi, size=257, dtype=np.int64)
        packed = pack_int_array(values, width, signed=True)
        out = unpack_int_array(packed, width, 257, signed=True)
        np.testing.assert_array_equal(out, values)

    def test_signed_boundaries_roundtrip(self):
        values = np.array([-128, -1, 0, 1, 127], dtype=np.int64)
        packed = pack_int_array(values, 1, signed=True)
        np.testing.assert_array_equal(
            unpack_int_array(packed, 1, 5, signed=True), values
        )

    def test_unsigned_overflow_rejected(self):
        with pytest.raises(CodecError):
            pack_int_array(np.array([256], dtype=np.int64), 1)

    def test_negative_rejected_in_unsigned_mode(self):
        with pytest.raises(CodecError):
            pack_int_array(np.array([-1], dtype=np.int64), 2)

    def test_signed_overflow_rejected(self):
        with pytest.raises(CodecError):
            pack_int_array(np.array([128], dtype=np.int64), 1, signed=True)
        with pytest.raises(CodecError):
            pack_int_array(np.array([-129], dtype=np.int64), 1, signed=True)

    def test_unpack_validates_payload_size(self):
        with pytest.raises(CodecError):
            unpack_int_array(np.zeros(5, dtype=np.uint8), 2, 3)

    def test_width8_is_raw_view(self):
        values = np.array([-(1 << 60), 0, 1 << 60], dtype=np.int64)
        packed = pack_int_array(values, 8, signed=True)
        np.testing.assert_array_equal(
            unpack_int_array(packed, 8, 3, signed=True), values
        )

    def test_pack_empty(self):
        packed = pack_int_array(np.zeros(0, dtype=np.int64), 3)
        assert packed.size == 0
        assert unpack_int_array(packed, 3, 0).size == 0

    def test_pack_does_not_mutate_input(self):
        values = np.array([1, 2, 3], dtype=np.int64)
        copy = values.copy()
        pack_int_array(values, 2)
        np.testing.assert_array_equal(values, copy)
