"""Tests for the embeddable StreamSerializer and the CSV source."""

import numpy as np
import pytest

from repro.errors import QuantizationError, SchemaError
from repro.stream import Batch, CsvSource, Field, Schema, write_csv
from repro.wire import StreamSerializer, WireFormatError

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)


def make_batch(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return Batch.from_values(
        SCHEMA,
        {
            "ts": 1_000_000 + np.arange(n) // 4,
            "k": rng.integers(0, 5, n),
            "v": np.round(rng.integers(0, 400, n) / 4, 2),
        },
    )


class TestStreamSerializer:
    def test_roundtrip(self, fast_calibration):
        s = StreamSerializer(SCHEMA, calibration=fast_calibration)
        batch = make_batch()
        frame = s.serialize(batch)
        restored = s.deserialize(frame)
        for name in SCHEMA.names:
            np.testing.assert_array_equal(restored.column(name), batch.column(name))

    def test_adaptive_compresses(self, fast_calibration):
        s = StreamSerializer(SCHEMA, calibration=fast_calibration)
        for i in range(4):
            s.serialize(make_batch(seed=i))
        assert s.stats.batches == 4
        assert s.stats.ratio > 1.5
        assert s.stats.decisions  # selector ran
        assert set(s.current_choices) == {"ts", "k", "v"}

    def test_static_codec_pin(self):
        s = StreamSerializer(SCHEMA, codec="bd")
        s.serialize(make_batch())
        assert set(s.current_choices.values()) == {"bd"}

    def test_schema_mismatch_rejected(self, fast_calibration):
        s = StreamSerializer(SCHEMA, calibration=fast_calibration)
        other = Batch.from_values(Schema([Field("x")]), {"x": [1, 2]})
        with pytest.raises(WireFormatError):
            s.serialize(other)

    def test_corrupt_frame_rejected(self, fast_calibration):
        s = StreamSerializer(SCHEMA, calibration=fast_calibration)
        frame = bytearray(s.serialize(make_batch()))
        frame[10] ^= 0x55
        with pytest.raises(WireFormatError):
            s.deserialize(bytes(frame))

    def test_cross_serializer_interop(self, fast_calibration):
        sender = StreamSerializer(SCHEMA, calibration=fast_calibration)
        receiver = StreamSerializer(SCHEMA, codec="ns")  # config-independent
        batch = make_batch(seed=9)
        restored = receiver.deserialize(sender.serialize(batch))
        np.testing.assert_array_equal(restored.column("v"), batch.column("v"))


class TestCsvSource:
    def _write(self, tmp_path, batches):
        path = tmp_path / "stream.csv"
        rows = write_csv(path, SCHEMA, batches)
        return path, rows

    def test_write_read_roundtrip(self, tmp_path):
        original = make_batch(n=100)
        path, rows = self._write(tmp_path, [original])
        assert rows == 100
        source = CsvSource(path, SCHEMA, batch_size=40)
        restored = list(source)
        assert [b.n for b in restored] == [40, 40, 20]
        merged = Batch.concat(restored)
        for name in SCHEMA.names:
            np.testing.assert_array_equal(merged.column(name), original.column(name))

    def test_drop_tail(self, tmp_path):
        path, _ = self._write(tmp_path, [make_batch(n=100)])
        source = CsvSource(path, SCHEMA, batch_size=40, keep_tail=False)
        assert [b.n for b in source] == [40, 40]

    def test_reiterable(self, tmp_path):
        path, _ = self._write(tmp_path, [make_batch(n=10)])
        source = CsvSource(path, SCHEMA, batch_size=10)
        assert len(list(source)) == 1
        assert len(list(source)) == 1  # second pass re-reads the file

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text("junk,ts,k,v\n9,1,2,3.25\n8,2,3,4.50\n")
        batches = list(CsvSource(path, SCHEMA, batch_size=10))
        np.testing.assert_array_equal(batches[0].column("k"), [2, 3])

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ts,k\n1,2\n")
        with pytest.raises(SchemaError):
            list(CsvSource(path, SCHEMA, batch_size=10))

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("ts,k,v\n1,2,3.5\n1,2\n")
        with pytest.raises(SchemaError):
            list(CsvSource(path, SCHEMA, batch_size=10))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            list(CsvSource(path, SCHEMA, batch_size=10))

    def test_precision_violation_raises(self, tmp_path):
        path = tmp_path / "lossy.csv"
        path.write_text("ts,k,v\n1,2,3.123\n")
        with pytest.raises(QuantizationError):
            list(CsvSource(path, SCHEMA, batch_size=10))

    def test_engine_runs_from_csv(self, tmp_path, fast_calibration):
        from repro import CompressStreamDB, EngineConfig

        path, _ = self._write(tmp_path, [make_batch(n=128, seed=4)])
        engine = CompressStreamDB(
            {"S": SCHEMA},
            "select k, avg(v) as m from S [range 16 slide 16] group by k",
            EngineConfig(mode="adaptive", calibration=fast_calibration),
        )
        report = engine.run(CsvSource(path, SCHEMA, batch_size=64))
        assert report.profiler.batches == 2
        assert report.space_saving > 0
