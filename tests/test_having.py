"""Tests for the HAVING clause across parser, planner and executors."""

import numpy as np
import pytest

from repro import CompressStreamDB, EngineConfig
from repro.errors import PlanningError
from repro.operators.base import decoded_column
from repro.sql import make_executor, parse_query, plan_query
from repro.sql.ast import BoolOp, Comparison
from repro.stream import Batch, Field, GeneratorSource, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)
CATALOG = {"S": SCHEMA}


def run_once(query, columns):
    plan = plan_query(query, CATALOG)
    ex = make_executor(plan)
    batch = Batch.from_values(SCHEMA, columns)
    cols = {n: decoded_column(n, batch.column(n)) for n in SCHEMA.names}
    return ex.execute(cols, batch.n)


class TestParsing:
    def test_having_parsed(self):
        q = parse_query(
            "select k, avg(v) from S [range 4] group by k having avg(v) > 2"
        )
        assert isinstance(q.having, Comparison)
        assert q.having.op == ">"

    def test_having_with_and(self):
        q = parse_query(
            "select k, avg(v) from S [range 4] group by k "
            "having avg(v) > 2 and count(*) >= 3"
        )
        assert isinstance(q.having, BoolOp)
        assert q.having.op == "and"
        assert len(q.having.items) == 2

    def test_having_with_or(self):
        q = parse_query(
            "select k, avg(v) from S [range 4] group by k "
            "having avg(v) > 2 or count(*) >= 3 and avg(v) < 1"
        )
        assert isinstance(q.having, BoolOp)
        assert q.having.op == "or"
        assert isinstance(q.having.items[1], BoolOp)
        assert q.having.items[1].op == "and"

    def test_having_without_group_by_is_allowed(self):
        q = parse_query("select avg(v) as m from S [range 4] having m > 2")
        assert q.having is not None


class TestPlanning:
    def test_reuses_select_aggregate(self):
        plan = plan_query(
            "select k, avg(v) as m from S [range 4] group by k having avg(v) > 2",
            CATALOG,
        )
        assert plan.hidden_outputs == ()
        assert plan.having.output == "m"

    def test_hidden_aggregate_created(self):
        plan = plan_query(
            "select k, avg(v) as m from S [range 4] group by k having max(v) > 2",
            CATALOG,
        )
        assert len(plan.hidden_outputs) == 1
        assert plan.hidden_outputs[0].agg_func == "max"
        # the hidden aggregate contributes capability requirements
        assert "order" in plan.profile.column_uses["v"].caps

    def test_alias_reference(self):
        plan = plan_query(
            "select k, sum(v) as total from S [range 4] group by k having total < 9",
            CATALOG,
        )
        assert plan.having.output == "total"

    def test_flipped_literal(self):
        plan = plan_query(
            "select k, avg(v) as m from S [range 4] group by k having 2 < avg(v)",
            CATALOG,
        )
        assert plan.having.op == ">"

    def test_unknown_alias_rejected(self):
        with pytest.raises(PlanningError):
            plan_query(
                "select k, avg(v) from S [range 4] group by k having ghost > 1",
                CATALOG,
            )

    def test_non_literal_rhs_rejected(self):
        with pytest.raises(PlanningError):
            plan_query(
                "select k, avg(v) from S [range 4] group by k having avg(v) > max(v)",
                CATALOG,
            )

    def test_having_on_passthrough_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select k from S [range unbounded] having k > 1", CATALOG)

    def test_having_on_join_rejected(self):
        with pytest.raises(PlanningError):
            plan_query(
                "select L.ts from S [range 4] as A, S [partition by k rows 1] as L "
                "where A.k == L.k having count(*) > 1",
                CATALOG,
            )


class TestExecution:
    COLUMNS = {
        "ts": np.arange(8),
        "k": [1, 1, 2, 2, 1, 1, 2, 2],
        "v": [30.0, 40.0, 5.0, 6.0, 50.0, 60.0, 7.0, 8.0],
    }

    def test_grouped_filtering(self):
        res = run_once(
            "select k, avg(v) as m from S [range 4 slide 4] group by k "
            "having avg(v) > 20",
            self.COLUMNS,
        )
        np.testing.assert_array_equal(res.columns["k"], [1, 1])
        np.testing.assert_array_equal(res.columns["m"], [35.0, 55.0])

    def test_hidden_aggregate_not_in_output(self):
        res = run_once(
            "select k from S [range 4 slide 4] group by k having avg(v) > 20",
            self.COLUMNS,
        )
        assert set(res.columns) == {"k"}
        np.testing.assert_array_equal(res.columns["k"], [1, 1])

    def test_global_having(self):
        res = run_once(
            "select ts, avg(v) as m from S [range 4 slide 4] having m > 21",
            self.COLUMNS,
        )
        assert res.n_rows == 1
        np.testing.assert_array_equal(res.columns["ts"], [7])

    def test_all_rows_filtered(self):
        res = run_once(
            "select k, avg(v) as m from S [range 4 slide 4] group by k "
            "having avg(v) > 1000",
            self.COLUMNS,
        )
        assert res.n_rows == 0

    def test_or_having(self):
        # group 2 of the first window (avg 5.5) survives via the OR arm
        res = run_once(
            "select k, avg(v) as m from S [range 4 slide 4] group by k "
            "having avg(v) > 20 or m < 6",
            self.COLUMNS,
        )
        np.testing.assert_array_equal(res.columns["k"], [1, 2, 1])
        np.testing.assert_array_equal(res.columns["m"], [35.0, 5.5, 55.0])

    def test_equality_having_on_count(self):
        res = run_once(
            "select k, count(*) as c from S [range 8 slide 8] group by k "
            "having c == 4",
            self.COLUMNS,
        )
        assert res.n_rows == 2  # both groups have exactly 4 rows


class TestEndToEndCompressed:
    def test_having_matches_baseline_under_compression(self, fast_calibration):
        query = (
            "select k, avg(v) as m, count(*) as c from S [range 16 slide 16] "
            "group by k having avg(v) >= 25"
        )

        def make(i):
            rng = np.random.default_rng(100 + i)
            return {
                "ts": np.arange(256) + i * 256,
                "k": rng.integers(0, 4, 256),
                "v": np.round(rng.integers(0, 200, 256) / 4, 2),
            }

        results = {}
        for mode in ("baseline", "adaptive", "static:dict"):
            engine = CompressStreamDB(
                CATALOG, query, EngineConfig(mode=mode, calibration=fast_calibration)
            )
            rep = engine.run(
                GeneratorSource(SCHEMA, make, limit=3), collect_outputs=True
            )
            results[mode] = rep.outputs
        base = results.pop("baseline")
        assert base.n_rows > 0
        assert (base.columns["m"] >= 25).all()
        for mode, outputs in results.items():
            assert outputs.n_rows == base.n_rows, mode
            for name in base.columns:
                np.testing.assert_allclose(outputs.columns[name], base.columns[name])
