"""Unit tests for operator kernels on direct (compressed) columns."""

import numpy as np
import pytest

from repro.compression import get_codec
from repro.errors import PlanningError
from repro.operators import (
    ExecColumn,
    combine_keys,
    compare_columns,
    compare_to_literal,
    decoded_column,
    distinct_indices,
    semi_join_latest,
    sliding_code_sums,
    sliding_extreme,
    window_aggregate,
    window_group_aggregate,
)
from repro.stream import Batch, Field, PartitionWindowState, Schema, WindowSpec


def direct(name, values, codec_name="bd"):
    codec = get_codec(codec_name)
    cc = codec.compress(np.asarray(values, dtype=np.int64))
    return ExecColumn(name, codec.direct_codes(cc), codec, cc)


class TestSlidingKernels:
    def test_code_sums(self):
        codes = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        sums = sliding_code_sums(codes, [(0, 3), (2, 5)])
        np.testing.assert_array_equal(sums, [6, 12])

    def test_code_sums_empty_windows(self):
        assert sliding_code_sums(np.arange(5), []).size == 0

    def test_extreme_overlapping_uses_deque(self, rng):
        values = rng.integers(0, 1000, 200)
        windows = [(s, s + 16) for s in range(0, 180, 1)]
        maxes = sliding_extreme(values, windows, take_max=True)
        expected = [values[s:e].max() for s, e in windows]
        np.testing.assert_array_equal(maxes, expected)

    def test_extreme_tumbling_uses_reduceat(self, rng):
        values = rng.integers(-500, 500, 96)
        windows = [(s, s + 16) for s in range(0, 96, 16)]
        mins = sliding_extreme(values, windows, take_max=False)
        expected = [values[s:e].min() for s, e in windows]
        np.testing.assert_array_equal(mins, expected)

    def test_extreme_single_window(self):
        out = sliding_extreme(np.array([3, 1, 2]), [(0, 3)], take_max=True)
        np.testing.assert_array_equal(out, [3])

    def test_extreme_gap_stride(self, rng):
        values = rng.integers(0, 100, 50)
        windows = [(0, 5), (20, 25), (40, 45)]
        out = sliding_extreme(values, windows, take_max=True)
        expected = [values[s:e].max() for s, e in windows]
        np.testing.assert_array_equal(out, expected)

    def test_extreme_ragged_windows(self, rng):
        values = rng.integers(-100, 100, 30)
        windows = [(0, 3), (3, 7), (5, 20), (20, 21)]
        out = sliding_extreme(values, windows, take_max=True)
        expected = [values[s:e].max() for s, e in windows]
        np.testing.assert_array_equal(out, expected)

    def test_extreme_irregular_stride_falls_back(self, rng):
        values = rng.integers(0, 50, 20)
        windows = [(0, 4), (1, 5), (3, 7)]
        out = sliding_extreme(values, windows, take_max=False)
        expected = [values[s:e].min() for s, e in windows]
        np.testing.assert_array_equal(out, expected)

    def test_extreme_rejects_empty_window(self):
        with pytest.raises(PlanningError):
            sliding_extreme(np.arange(10), [(3, 3)], take_max=True)


class TestWindowAggregate:
    def test_avg_on_affine_codes(self):
        values = np.array([100, 102, 104, 106], dtype=np.int64)
        col = direct("v", values, "bd")  # codes are deltas from 100
        out = window_aggregate(col, [(0, 2), (2, 4)], "avg")
        np.testing.assert_array_equal(out, [101.0, 105.0])

    def test_sum_on_affine_codes(self):
        col = direct("v", [10, 20, 30], "ns")
        np.testing.assert_array_equal(window_aggregate(col, [(0, 3)], "sum"), [60])

    def test_min_max_decode_through_order_codes(self):
        values = np.array([5, 1, 9, 3], dtype=np.int64)
        col = direct("v", values, "ed")  # order-preserving, non-affine
        np.testing.assert_array_equal(window_aggregate(col, [(0, 4)], "max"), [9])
        np.testing.assert_array_equal(window_aggregate(col, [(0, 4)], "min"), [1])

    def test_count(self):
        col = decoded_column("v", np.arange(6))
        np.testing.assert_array_equal(
            window_aggregate(col, [(0, 4), (4, 6)], "count"), [4, 2]
        )

    def test_sum_requires_affine(self):
        col = direct("v", [1, 2, 3], "ed")
        with pytest.raises(PlanningError):
            window_aggregate(col, [(0, 3)], "sum")

    def test_unknown_func(self):
        with pytest.raises(PlanningError):
            window_aggregate(decoded_column("v", np.arange(3)), [(0, 3)], "median")


class TestGroupBy:
    def test_combine_keys_dense_ids(self):
        k1 = decoded_column("a", np.array([10, 10, 20, 20]))
        k2 = decoded_column("b", np.array([1, 2, 1, 2]))
        combined = combine_keys([k1, k2])
        assert len(np.unique(combined)) == 4

    def test_combine_keys_on_dict_codes(self, rng):
        values = rng.integers(0, 5, 100)
        col = direct("k", values, "dict")
        combined = combine_keys([col])
        # same grouping as the raw values
        _, expected = np.unique(values, return_inverse=True)
        _, got = np.unique(combined, return_inverse=True)
        np.testing.assert_array_equal(got, expected)

    def test_group_aggregate_sum_and_count(self):
        keys = np.array([0, 0, 1, 1, 0], dtype=np.int64)
        vals = decoded_column("v", np.array([1, 2, 10, 20, 4]))
        results = window_group_aggregate(keys, [vals, None], ["sum", "count"], [(0, 5)])
        (res,) = results
        np.testing.assert_array_equal(res.aggregates[0], [7, 30])
        np.testing.assert_array_equal(res.aggregates[1], [3, 2])
        np.testing.assert_array_equal(res.counts, [3, 2])

    def test_group_aggregate_max_through_codes(self):
        keys = np.array([0, 1, 0, 1], dtype=np.int64)
        col = direct("v", [5, 50, 9, 40], "dict")
        results = window_group_aggregate(keys, [col], ["max"], [(0, 4)])
        np.testing.assert_array_equal(results[0].aggregates[0], [9, 50])

    def test_representatives_are_first_occurrences(self):
        keys = np.array([7, 8, 7, 9], dtype=np.int64)
        results = window_group_aggregate(keys, [None], ["count"], [(0, 4)])
        np.testing.assert_array_equal(results[0].representatives, [0, 1, 3])

    def test_windows_isolated(self):
        keys = np.array([0, 0, 1, 1], dtype=np.int64)
        vals = decoded_column("v", np.array([1, 2, 3, 4]))
        results = window_group_aggregate(keys, [vals], ["sum"], [(0, 2), (2, 4)])
        np.testing.assert_array_equal(results[0].aggregates[0], [3])
        np.testing.assert_array_equal(results[1].aggregates[0], [7])

    def test_group_by_requires_equality_codes(self):
        # aligned ED columns support equality, but a hypothetical column
        # whose codec lacks CAP_EQUALITY must be rejected by combine_keys;
        # build one by compressing with RLE (no capabilities) and wrapping
        # the decompressed values as if they were direct codes
        rle = get_codec("rle")
        cc = rle.compress(np.array([1, 1, 2], dtype=np.int64))
        col = ExecColumn("k", np.array([1, 1, 2]), rle, cc)
        with pytest.raises(PlanningError):
            combine_keys([col])


class TestSelection:
    @pytest.mark.parametrize("codec_name", ["identity", "ns", "bd", "dict", "ed"])
    @pytest.mark.parametrize("op", ["==", "!=", "<", "<=", ">", ">="])
    def test_literal_comparison_matches_values(self, codec_name, op, rng):
        values = rng.integers(0, 50, 200)
        col = direct("v", values, codec_name)
        for literal in (0, 13, 49, 100):
            got = compare_to_literal(col, op, literal)
            expected = eval(f"values {op} literal")  # noqa: S307 - test oracle
            np.testing.assert_array_equal(got, expected, err_msg=f"{op} {literal}")

    def test_absent_equality_literal_is_all_false(self, rng):
        values = rng.integers(0, 10, 50) * 2
        col = direct("v", values, "dict")
        assert not compare_to_literal(col, "==", 3).any()
        assert compare_to_literal(col, "!=", 3).all()

    def test_compare_columns_same_affine_uses_codes(self):
        left = direct("a", [1, 5, 3], "ns")
        right = direct("b", [2, 5, 1], "ns")
        np.testing.assert_array_equal(
            compare_columns(left, right, "=="), [False, True, False]
        )
        np.testing.assert_array_equal(
            compare_columns(left, right, "<"), [True, False, False]
        )

    def test_compare_columns_mixed_codecs_decodes(self):
        left = direct("a", [1, 5, 3], "bd")
        right = direct("b", [2, 5, 1], "dict")
        np.testing.assert_array_equal(
            compare_columns(left, right, ">="), [False, True, True]
        )

    def test_compare_columns_length_mismatch(self):
        with pytest.raises(PlanningError):
            compare_columns(
                decoded_column("a", np.arange(3)),
                decoded_column("b", np.arange(4)),
                "==",
            )

    def test_unknown_operator(self):
        with pytest.raises(PlanningError):
            compare_to_literal(decoded_column("v", np.arange(3)), "~=", 1)


class TestDistinct:
    def test_first_occurrence_kept(self):
        col = direct("v", [3, 1, 3, 2, 1], "dict")
        out = distinct_indices([col], np.arange(5))
        np.testing.assert_array_equal(out, [0, 1, 3])

    def test_multi_column_tuples(self):
        a = decoded_column("a", np.array([1, 1, 2, 1]))
        b = decoded_column("b", np.array([5, 6, 5, 5]))
        out = distinct_indices([a, b], np.arange(4))
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_respects_input_indices(self):
        col = decoded_column("v", np.array([9, 9, 9, 8]))
        out = distinct_indices([col], np.array([1, 2, 3]))
        np.testing.assert_array_equal(out, [1, 3])

    def test_empty_indices(self):
        col = decoded_column("v", np.arange(4))
        assert distinct_indices([col], np.zeros(0, dtype=np.int64)).size == 0

    def test_needs_columns(self):
        with pytest.raises(PlanningError):
            distinct_indices([], np.arange(3))


class TestSemiJoin:
    def test_latest_rows_for_window_keys(self):
        schema = Schema([Field("k"), Field("v")])
        state = PartitionWindowState(WindowSpec.partition("k", 1))
        state.update(
            Batch(schema, {"k": np.array([1, 2, 1]), "v": np.array([10, 20, 11])})
        )
        rows = semi_join_latest(np.array([1, 1, 3]), state)
        np.testing.assert_array_equal(rows["v"], [11])

    def test_no_match_returns_empty(self):
        state = PartitionWindowState(WindowSpec.partition("k", 1))
        assert semi_join_latest(np.array([5]), state) == {}
