"""Golden-format tests: exact payload bytes for tiny known inputs.

These pin the on-the-wire layouts documented in docs/compression.md and
the wire frame header, so accidental format changes fail loudly (anyone
persisting frames across versions depends on this stability).
"""

import hashlib

import numpy as np
import pytest

from repro.compression import get_codec
from repro.compression.kernels import scalar_reference_mode
from repro.stream import CompressedBatch, Field, Schema
from repro.wire import serialize_batch


class TestNSGolden:
    def test_one_byte_unsigned_layout(self):
        cc = get_codec("ns").compress(np.array([1, 255, 0], dtype=np.int64))
        assert cc.meta == {"width": 1, "signed": False, "offset": 0}
        assert bytes(cc.payload) == b"\x01\xff\x00"

    def test_two_byte_little_endian(self):
        cc = get_codec("ns").compress(np.array([0x1234], dtype=np.int64))
        assert bytes(cc.payload) == b"\x34\x12"

    def test_signed_two_complement(self):
        cc = get_codec("ns").compress(np.array([-1, 1], dtype=np.int64))
        assert cc.meta["signed"] is True
        assert bytes(cc.payload) == b"\xff\x01"


class TestBDGolden:
    def test_delta_layout(self):
        cc = get_codec("bd").compress(np.array([100, 103, 101], dtype=np.int64))
        assert cc.meta["offset"] == 100
        assert bytes(cc.payload) == b"\x00\x03\x01"
        assert cc.nbytes == 3 + 8  # deltas + 8-byte base


class TestDictGolden:
    def test_codes_index_sorted_dictionary(self):
        cc = get_codec("dict").compress(np.array([30, 10, 30, 20], dtype=np.int64))
        np.testing.assert_array_equal(cc.meta["dictionary"], [10, 20, 30])
        assert bytes(cc.payload) == b"\x02\x00\x02\x01"


class TestEliasGolden:
    def test_eg_codes_are_value_plus_one(self):
        cc = get_codec("eg").compress(np.array([0, 1, 6], dtype=np.int64))
        # gamma codewords of 1,2,7 as integers = the values; max 7 -> 5
        # bits -> 1 byte each
        assert cc.meta["width"] == 1
        assert bytes(cc.payload) == b"\x01\x02\x07"

    def test_ed_codeword_math(self):
        # value 3 -> x=4 -> n=2 -> code = 4 + 2*4 = 12
        cc = get_codec("ed").compress(np.array([3], dtype=np.int64))
        assert bytes(cc.payload)[0] == 12


class TestRLEGolden:
    def test_values_then_lengths(self):
        cc = get_codec("rle").compress(np.array([5, 5, 9], dtype=np.int64))
        values = cc.payload[:16].view(np.int64)
        lengths = cc.payload[16:].view(np.int32)
        np.testing.assert_array_equal(values, [5, 9])
        np.testing.assert_array_equal(lengths, [2, 1])


class TestNSVGolden:
    def test_descriptor_packing(self):
        # widths: 1,2,1,1 -> descriptor codes 0,1,0,0 packed little-first
        cc = get_codec("nsv").compress(np.array([1, 300, 2, 3], dtype=np.int64))
        assert cc.meta["desc_nbytes"] == 1
        assert cc.payload[0] == 0b00000100  # code 1 in bit positions 2-3
        assert bytes(cc.payload[1:]) == b"\x01\x2c\x01\x02\x03"  # 300 = 0x012c


class TestDeltaChainGolden:
    def test_first_plus_signed_deltas(self):
        cc = get_codec("deltachain").compress(np.array([10, 12, 11], dtype=np.int64))
        assert cc.meta == {"first": 10, "width": 1}
        assert bytes(cc.payload) == b"\x02\xff"  # +2, -1


def _digest_columns():
    """Five seeded 20k-value columns exercising every codec's layout."""
    rng = np.random.default_rng(42)
    return {
        "uniform": rng.integers(0, 1000, 20000),
        "runs": np.repeat(rng.integers(0, 50, 400), 50),
        "wide": rng.integers(0, 2**40, 20000),
        "signed": rng.integers(-500, 500, 20000),
        "allequal": np.full(20000, 7),
    }


#: blake2b-8 digests of compressed payload bytes, captured from the
#: scalar (pre-vectorization) implementations.  A mismatch means the
#: on-wire format changed — that is a breaking change, not a test update.
PAYLOAD_DIGESTS = {
    ("ns", "uniform"): "ee365e9bc0e62687",
    ("ns", "runs"): "dceeb6c04c2ad7e6",
    ("ns", "wide"): "0525933c941e5cce",
    ("ns", "signed"): "1b6b6376307a9b38",
    ("ns", "allequal"): "ea78dd6965e0cf62",
    ("nsv", "uniform"): "b478d6b912e5f5ad",
    ("nsv", "runs"): "cb303fb2c68c095a",
    ("nsv", "wide"): "8893ca45acc69de6",
    ("nsv", "signed"): "bc042cfd3b41f350",
    ("nsv", "allequal"): "5b45cfb7b327c770",
    ("bd", "uniform"): "ee365e9bc0e62687",
    ("bd", "runs"): "dceeb6c04c2ad7e6",
    ("bd", "wide"): "271c37566730cb5a",
    ("bd", "signed"): "aa1cacb9128cab46",
    ("bd", "allequal"): "ca29dc719a4d3e54",
    ("dict", "uniform"): "ee365e9bc0e62687",
    ("dict", "runs"): "dceeb6c04c2ad7e6",
    ("dict", "wide"): "cd9a48d3133c347f",
    ("dict", "signed"): "aa1cacb9128cab46",
    ("dict", "allequal"): "ca29dc719a4d3e54",
    ("rle", "uniform"): "c74d215e080388ba",
    ("rle", "runs"): "8894be5ecbef14a8",
    ("rle", "wide"): "8de8824e2454cd49",
    ("rle", "signed"): "6aadcf69bed7d121",
    ("rle", "allequal"): "8096847cfe9fd434",
    ("bitmap", "uniform"): "e990f7d68c3b7011",
    ("bitmap", "runs"): "866d3817418c3024",
    ("bitmap", "signed"): "0971ba74fd6e98f8",
    ("bitmap", "allequal"): "cea473a66b5a95b9",
    ("eg", "uniform"): "da10afb3609ffdda",
    ("eg", "runs"): "b5e628b90ec76be4",
    ("eg", "allequal"): "23a9c147b75a4e75",
    ("ed", "uniform"): "f9809bc21a995bba",
    ("ed", "runs"): "a11f3c53db459b11",
    ("ed", "wide"): "a407d04aed5b5b0e",
    ("ed", "allequal"): "2ac7eda3c50edf08",
    ("plwah", "uniform"): "cc418dcba5e440ab",
    ("plwah", "runs"): "37c2064250780844",
    ("plwah", "wide"): "cebf71ce38f90825",
    ("plwah", "signed"): "f23d84dd8bcb79f0",
    ("plwah", "allequal"): "a19eced5040591f6",
    ("deltachain", "uniform"): "b458c3cd5c8f619d",
    ("deltachain", "runs"): "6bccb0626622230a",
    ("deltachain", "wide"): "3c66e2e6f97191ab",
    ("deltachain", "signed"): "bf5c3cc46bc9a28c",
    ("deltachain", "allequal"): "b123db3e9b424347",
}


class TestPayloadDigests:
    """The vectorized kernels must not change a single payload byte."""

    @pytest.mark.parametrize("codec_name,col_name", sorted(PAYLOAD_DIGESTS))
    def test_payload_digest_unchanged(self, codec_name, col_name):
        values = np.asarray(_digest_columns()[col_name], dtype=np.int64)
        cc = get_codec(codec_name).compress(values)
        digest = hashlib.blake2b(cc.payload.tobytes(), digest_size=8).hexdigest()
        assert digest == PAYLOAD_DIGESTS[(codec_name, col_name)]
        roundtrip = get_codec(codec_name).decompress(cc)
        assert roundtrip.dtype == np.int64
        np.testing.assert_array_equal(roundtrip, values)

    def test_scalar_reference_emits_identical_digests(self):
        # Spot-check that the oracle implementations produce the same
        # bytes on a reduced input (full 20k scalar runs are slow).
        cols = {
            k: np.asarray(v, dtype=np.int64)[:2000]
            for k, v in _digest_columns().items()
        }
        for (codec_name, col_name) in sorted(PAYLOAD_DIGESTS):
            values = cols[col_name]
            vec = get_codec(codec_name).compress(values)
            with scalar_reference_mode():
                ref = get_codec(codec_name).compress(values)
            assert bytes(vec.payload) == bytes(ref.payload), (codec_name, col_name)


class TestWireGolden:
    def test_frame_header(self):
        schema = Schema([Field("x", "int", 8)])
        cc = get_codec("ns").compress(np.array([7], dtype=np.int64))
        cc.source_size_c = 8
        frame = serialize_batch(
            CompressedBatch(schema=schema, n=1, columns={"x": cc})
        )
        assert frame[:4] == b"CSDB"
        assert frame[4:6] == b"\x01\x00"           # version 1
        assert frame[6:10] == b"\x01\x00\x00\x00"  # n = 1
        assert frame[10:12] == b"\x01\x00"         # 1 column
        assert frame[12:14] == b"\x01\x00"         # name length 1
        assert frame[14:15] == b"x"
