"""Golden-format tests: exact payload bytes for tiny known inputs.

These pin the on-the-wire layouts documented in docs/compression.md and
the wire frame header, so accidental format changes fail loudly (anyone
persisting frames across versions depends on this stability).
"""

import numpy as np

from repro.compression import get_codec
from repro.stream import CompressedBatch, Field, Schema
from repro.wire import serialize_batch


class TestNSGolden:
    def test_one_byte_unsigned_layout(self):
        cc = get_codec("ns").compress(np.array([1, 255, 0], dtype=np.int64))
        assert cc.meta == {"width": 1, "signed": False, "offset": 0}
        assert bytes(cc.payload) == b"\x01\xff\x00"

    def test_two_byte_little_endian(self):
        cc = get_codec("ns").compress(np.array([0x1234], dtype=np.int64))
        assert bytes(cc.payload) == b"\x34\x12"

    def test_signed_two_complement(self):
        cc = get_codec("ns").compress(np.array([-1, 1], dtype=np.int64))
        assert cc.meta["signed"] is True
        assert bytes(cc.payload) == b"\xff\x01"


class TestBDGolden:
    def test_delta_layout(self):
        cc = get_codec("bd").compress(np.array([100, 103, 101], dtype=np.int64))
        assert cc.meta["offset"] == 100
        assert bytes(cc.payload) == b"\x00\x03\x01"
        assert cc.nbytes == 3 + 8  # deltas + 8-byte base


class TestDictGolden:
    def test_codes_index_sorted_dictionary(self):
        cc = get_codec("dict").compress(np.array([30, 10, 30, 20], dtype=np.int64))
        np.testing.assert_array_equal(cc.meta["dictionary"], [10, 20, 30])
        assert bytes(cc.payload) == b"\x02\x00\x02\x01"


class TestEliasGolden:
    def test_eg_codes_are_value_plus_one(self):
        cc = get_codec("eg").compress(np.array([0, 1, 6], dtype=np.int64))
        # gamma codewords of 1,2,7 as integers = the values; max 7 -> 5
        # bits -> 1 byte each
        assert cc.meta["width"] == 1
        assert bytes(cc.payload) == b"\x01\x02\x07"

    def test_ed_codeword_math(self):
        # value 3 -> x=4 -> n=2 -> code = 4 + 2*4 = 12
        cc = get_codec("ed").compress(np.array([3], dtype=np.int64))
        assert bytes(cc.payload)[0] == 12


class TestRLEGolden:
    def test_values_then_lengths(self):
        cc = get_codec("rle").compress(np.array([5, 5, 9], dtype=np.int64))
        values = cc.payload[:16].view(np.int64)
        lengths = cc.payload[16:].view(np.int32)
        np.testing.assert_array_equal(values, [5, 9])
        np.testing.assert_array_equal(lengths, [2, 1])


class TestNSVGolden:
    def test_descriptor_packing(self):
        # widths: 1,2,1,1 -> descriptor codes 0,1,0,0 packed little-first
        cc = get_codec("nsv").compress(np.array([1, 300, 2, 3], dtype=np.int64))
        assert cc.meta["desc_nbytes"] == 1
        assert cc.payload[0] == 0b00000100  # code 1 in bit positions 2-3
        assert bytes(cc.payload[1:]) == b"\x01\x2c\x01\x02\x03"  # 300 = 0x012c


class TestDeltaChainGolden:
    def test_first_plus_signed_deltas(self):
        cc = get_codec("deltachain").compress(np.array([10, 12, 11], dtype=np.int64))
        assert cc.meta == {"first": 10, "width": 1}
        assert bytes(cc.payload) == b"\x02\xff"  # +2, -1


class TestWireGolden:
    def test_frame_header(self):
        schema = Schema([Field("x", "int", 8)])
        cc = get_codec("ns").compress(np.array([7], dtype=np.int64))
        cc.source_size_c = 8
        frame = serialize_batch(
            CompressedBatch(schema=schema, n=1, columns={"x": cc})
        )
        assert frame[:4] == b"CSDB"
        assert frame[4:6] == b"\x01\x00"           # version 1
        assert frame[6:10] == b"\x01\x00\x00\x00"  # n = 1
        assert frame[10:12] == b"\x01\x00"         # 1 column
        assert frame[12:14] == b"\x01\x00"         # name length 1
        assert frame[14:15] == b"x"
