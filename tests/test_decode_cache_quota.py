"""DecodeCache capacity bounds: hard byte cap + per-tenant quotas.

The serving layer shares one cache across tenants, so the cache must be
bounded in bytes (not just entries) and one tenant's churn must evict
that tenant's own entries, not the fleet's.  Eviction order is pinned to
the monotonic insertion sequence so it is deterministic across runs.
"""

import numpy as np
import pytest

from repro.core.decode_cache import DecodeCache


def arr(n, fill):
    return np.full(n, fill, dtype=np.int64)


def intern_fresh(cache, n, fill, tenant=""):
    """Intern a distinct array of n int64 (8n bytes) for a tenant."""
    return cache.intern(arr(n, fill), tenant=tenant)


class TestByteBound:
    def test_total_bytes_never_exceeds_max_bytes(self, tmp_path):
        cache = DecodeCache(max_entries=64, max_bytes=8 * 100)
        for i in range(20):
            intern_fresh(cache, 10, i)  # 80 bytes each
            assert cache.total_bytes <= 8 * 100
        assert cache.evictions > 0

    def test_eviction_is_oldest_first(self):
        cache = DecodeCache(max_entries=64, max_bytes=8 * 25)
        first = intern_fresh(cache, 10, 1)
        second = intern_fresh(cache, 10, 2)
        # inserting a third 80-byte array (240 > 200) evicts the oldest
        intern_fresh(cache, 10, 3)
        hits_before = cache.hits
        cache.intern(arr(10, 2))  # second still cached
        assert cache.hits == hits_before + 1
        cache.intern(arr(10, 1))  # first was evicted: a miss
        assert cache.hits == hits_before + 1
        assert first is not None and second is not None

    def test_oversized_array_returned_uncached(self):
        cache = DecodeCache(max_entries=8, max_bytes=64)
        out = intern_fresh(cache, 100, 7)  # 800 bytes > 64
        assert out.dtype == np.int64 and len(out) == 100
        assert len(cache) == 0
        assert cache.oversized_rejections == 1
        # asking again is another miss, never a poisoned hit
        cache.intern(arr(100, 7))
        assert cache.oversized_rejections == 2

    def test_entry_bound_still_applies(self):
        cache = DecodeCache(max_entries=4)
        for i in range(10):
            intern_fresh(cache, 4, i)
        assert len(cache) == 4


class TestTenantQuota:
    def test_hot_tenant_evicts_its_own_entries(self):
        cache = DecodeCache(
            max_entries=64, max_bytes=8 * 100, tenant_quota_bytes=8 * 30
        )
        intern_fresh(cache, 10, 100, tenant="cold")
        for i in range(10):
            intern_fresh(cache, 10, i, tenant="hot")
            assert cache.tenant_bytes("hot") <= 8 * 30
        # the cold tenant's single entry survived the hot tenant's churn
        assert cache.tenant_bytes("cold") == 80
        hits_before = cache.hits
        cache.intern(arr(10, 100), tenant="cold")
        assert cache.hits == hits_before + 1

    def test_quota_eviction_is_per_tenant_oldest_first(self):
        cache = DecodeCache(max_entries=64, tenant_quota_bytes=8 * 25)
        intern_fresh(cache, 10, 1, tenant="t")
        intern_fresh(cache, 10, 2, tenant="t")
        intern_fresh(cache, 10, 3, tenant="t")  # evicts fill=1
        hits_before = cache.hits
        cache.intern(arr(10, 3), tenant="t")
        cache.intern(arr(10, 2), tenant="t")
        assert cache.hits == hits_before + 2
        cache.intern(arr(10, 1), tenant="t")
        assert cache.hits == hits_before + 2

    def test_bytes_by_tenant_accounting(self):
        cache = DecodeCache(max_entries=64)
        intern_fresh(cache, 10, 1, tenant="a")
        intern_fresh(cache, 20, 2, tenant="b")
        intern_fresh(cache, 5, 3, tenant="b")
        totals = cache.bytes_by_tenant()
        assert totals == {"a": 80, "b": 200}
        assert cache.total_bytes == 280

    def test_quota_larger_than_max_bytes_rejected(self):
        with pytest.raises(ValueError):
            DecodeCache(max_bytes=100, tenant_quota_bytes=200)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_entries": 0},
            {"max_bytes": 0},
            {"tenant_quota_bytes": 0},
        ],
    )
    def test_invalid_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DecodeCache(**kwargs)

    def test_shared_hit_does_not_reattribute_bytes(self):
        # interning identical content from another tenant is a hit; the
        # bytes stay charged to the original inserter (content-addressed
        # storage has one owner: first writer)
        cache = DecodeCache(max_entries=64, tenant_quota_bytes=8 * 100)
        intern_fresh(cache, 10, 9, tenant="a")
        cache.intern(arr(10, 9), tenant="b")
        assert cache.tenant_bytes("a") == 80
        assert cache.tenant_bytes("b") == 0


class TestDeterminism:
    def test_identical_insert_sequences_identical_state(self):
        def build():
            cache = DecodeCache(
                max_entries=8, max_bytes=8 * 40, tenant_quota_bytes=8 * 20
            )
            for i in range(12):
                intern_fresh(cache, 10, i, tenant=f"t{i % 3}")
            return cache

        a, b = build(), build()
        assert a.bytes_by_tenant() == b.bytes_by_tenant()
        assert a.evictions == b.evictions
        assert len(a) == len(b)
