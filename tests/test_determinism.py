"""Determinism: repeated runs with the same seeds produce identical
byte-level results and codec decisions (benchmark reproducibility)."""

import numpy as np

from repro import CompressStreamDB, EngineConfig
from repro.datasets import QUERIES, cluster_monitoring, linear_road, smart_grid


def _run(fast_calibration, seed=11):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        # profile_query=False: selection depends only on the calibration
        # table, not on measured wall-clock query time, so runs are
        # byte-identical (the reproducibility mode)
        EngineConfig(
            mode="adaptive", calibration=fast_calibration, profile_query=False
        ),
    )
    return engine.run(
        smart_grid.source(batch_size=q1.window * 4, batches=3, seed=seed),
        collect_outputs=True,
    )


def test_same_seed_same_bytes_and_choices(fast_calibration):
    a = _run(fast_calibration)
    b = _run(fast_calibration)
    assert a.profiler.bytes_sent == b.profiler.bytes_sent
    assert a.decision_log == b.decision_log
    for name in a.outputs.columns:
        np.testing.assert_array_equal(a.outputs.columns[name], b.outputs.columns[name])


def test_different_seed_different_stream(fast_calibration):
    a = _run(fast_calibration, seed=11)
    b = _run(fast_calibration, seed=99)
    assert a.profiler.bytes_sent != b.profiler.bytes_sent


def _run_faulty(fast_calibration, fault_seed=7):
    from repro.net.faults import FaultProfile
    from repro.net.transport import ReliabilityConfig

    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode="adaptive",
            calibration=fast_calibration,
            profile_query=False,
            fault_profile=FaultProfile(
                drop_rate=0.2, corrupt_rate=0.2, duplicate_rate=0.1,
                stall_rate=0.1, seed=fault_seed,
            ),
            reliability=ReliabilityConfig(max_retries=4),
        ),
    )
    return engine.run(
        smart_grid.source(batch_size=q1.window * 4, batches=4, seed=11),
        collect_outputs=True,
    )


def test_same_fault_seed_same_fault_report(fast_calibration):
    a = _run_faulty(fast_calibration)
    b = _run_faulty(fast_calibration)
    # the whole recovery trace replays: injections, detections, retries,
    # virtual retry time, dead letters — FaultReport compares by value
    assert a.faults == b.faults
    assert a.faults.injected_total > 0  # the profile actually did something
    assert a.profiler.bytes_sent == b.profiler.bytes_sent
    # virtual time (wire + stalls + timeouts + backoff) replays exactly;
    # compress/query stages are wall-clock and may not
    assert a.profiler.seconds["trans"] == b.profiler.seconds["trans"]
    for name in a.outputs.columns:
        np.testing.assert_array_equal(a.outputs.columns[name], b.outputs.columns[name])


def test_different_fault_seed_different_trace(fast_calibration):
    a = _run_faulty(fast_calibration, fault_seed=7)
    b = _run_faulty(fast_calibration, fault_seed=8)
    assert a.faults != b.faults


def test_generators_deterministic():
    for module in (smart_grid, cluster_monitoring, linear_road):
        x = module.generate(500, seed=3)
        y = module.generate(500, seed=3)
        for name in x:
            np.testing.assert_array_equal(x[name], y[name])
