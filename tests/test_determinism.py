"""Determinism: repeated runs with the same seeds produce identical
byte-level results and codec decisions (benchmark reproducibility)."""

import numpy as np

from repro import CompressStreamDB, EngineConfig
from repro.datasets import QUERIES, cluster_monitoring, linear_road, smart_grid


def _run(fast_calibration, seed=11):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        # profile_query=False: selection depends only on the calibration
        # table, not on measured wall-clock query time, so runs are
        # byte-identical (the reproducibility mode)
        EngineConfig(
            mode="adaptive", calibration=fast_calibration, profile_query=False
        ),
    )
    return engine.run(
        smart_grid.source(batch_size=q1.window * 4, batches=3, seed=seed),
        collect_outputs=True,
    )


def test_same_seed_same_bytes_and_choices(fast_calibration):
    a = _run(fast_calibration)
    b = _run(fast_calibration)
    assert a.profiler.bytes_sent == b.profiler.bytes_sent
    assert a.decision_log == b.decision_log
    for name in a.outputs.columns:
        np.testing.assert_array_equal(a.outputs.columns[name], b.outputs.columns[name])


def test_different_seed_different_stream(fast_calibration):
    a = _run(fast_calibration, seed=11)
    b = _run(fast_calibration, seed=99)
    assert a.profiler.bytes_sent != b.profiler.bytes_sent


def test_generators_deterministic():
    for module in (smart_grid, cluster_monitoring, linear_road):
        x = module.generate(500, seed=3)
        y = module.generate(500, seed=3)
        for name in x:
            np.testing.assert_array_equal(x[name], y[name])
