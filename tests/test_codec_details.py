"""Per-codec payload-format and edge-case tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.compression.null_suppression_variable import WIDTH_CHOICES
from repro.compression.plwah import plwah_decode, plwah_encode
from repro.compression.rle import RUN_LENGTH_BYTES
from repro.errors import CodecError
from repro.stats import ColumnStats


class TestNullSuppression:
    def test_width_is_exact_bytes(self):
        codec = get_codec("ns")
        cc = codec.compress(np.array([0, 1, 255], dtype=np.int64))
        assert cc.meta["width"] == 1
        assert cc.nbytes == 3

    def test_three_byte_width_supported(self):
        codec = get_codec("ns")
        values = np.array([1, 1 << 20, (1 << 24) - 1], dtype=np.int64)
        cc = codec.compress(values)
        assert cc.meta["width"] == 3
        assert cc.nbytes == 9
        np.testing.assert_array_equal(codec.decompress(cc), values)

    def test_ratio_matches_eq12(self):
        values = np.array([5, 290, 17], dtype=np.int64)  # max needs 2 bytes
        stats = ColumnStats.from_values(values, size_c=8)
        assert get_codec("ns").estimate_ratio(stats) == 4.0


class TestNSV:
    def test_descriptor_section_size(self):
        codec = get_codec("nsv")
        cc = codec.compress(np.arange(1, 101, dtype=np.int64))
        assert cc.meta["desc_nbytes"] == 25  # 100 elements / 4 per byte

    def test_mixed_widths_payload(self):
        codec = get_codec("nsv")
        values = np.array([1, 300, 70000, 1 << 40], dtype=np.int64)
        cc = codec.compress(values)
        # widths 1 + 2 + 4 + 8 = 15 data bytes + 1 descriptor byte
        assert cc.nbytes == 16
        np.testing.assert_array_equal(codec.decompress(cc), values)

    def test_width_choices_are_machine_widths(self):
        np.testing.assert_array_equal(WIDTH_CHOICES, [1, 2, 4, 8])

    def test_signed_mixed_widths(self):
        codec = get_codec("nsv")
        values = np.array([-1, -300, 70000, -(1 << 40), 127], dtype=np.int64)
        cc = codec.compress(values)
        np.testing.assert_array_equal(codec.decompress(cc), values)


class TestRLE:
    def test_run_structure(self):
        codec = get_codec("rle")
        values = np.repeat(np.array([5, 9, 5], dtype=np.int64), [3, 2, 4])
        cc = codec.compress(values)
        assert cc.meta["runs"] == 3
        assert cc.nbytes == 3 * (8 + RUN_LENGTH_BYTES)

    def test_ratio_matches_eq15(self):
        values = np.repeat(np.arange(4, dtype=np.int64), 6)  # ARL = 6
        stats = ColumnStats.from_values(values, size_c=8)
        assert get_codec("rle").estimate_ratio(stats) == pytest.approx(8 * 6 / 12)

    def test_worst_case_expands(self):
        values = np.arange(100, dtype=np.int64)  # no runs at all
        cc = get_codec("rle").compress(values)
        assert cc.nbytes > values.nbytes  # honest accounting: RLE can expand


class TestDictionary:
    def test_code_width_grows_with_kindnum(self):
        codec = get_codec("dict")
        small = codec.compress(np.arange(200, dtype=np.int64))
        large = codec.compress(np.arange(300, dtype=np.int64))
        assert small.meta["width"] == 1
        assert large.meta["width"] == 2

    def test_nbytes_includes_dictionary(self):
        codec = get_codec("dict")
        values = np.array([10, 10, 20], dtype=np.int64)
        cc = codec.compress(values)
        assert cc.nbytes == 3 * 1 + 2 * 8  # 3 codes + 2 dictionary entries

    def test_single_distinct_value(self):
        codec = get_codec("dict")
        cc = codec.compress(np.full(50, 7, dtype=np.int64))
        np.testing.assert_array_equal(codec.decompress(cc), np.full(50, 7))


class TestBitmap:
    def test_charged_bytes_follow_eq17(self):
        codec = get_codec("bitmap")
        values = np.array([0, 1, 2, 3, 4] * 16, dtype=np.int64)  # kindnum 5
        cc = codec.compress(values)
        # 2^ceil(log2 5) = 8 bits/element -> 80 bytes + 5*8 dict
        assert cc.nbytes == 80 + 40

    def test_detects_corrupt_planes(self):
        codec = get_codec("bitmap")
        cc = codec.compress(np.array([0, 1, 0, 1], dtype=np.int64))
        cc.payload = np.zeros_like(cc.payload)  # no plane set anywhere
        with pytest.raises(CodecError):
            codec.decompress(cc)


class TestPLWAH:
    def test_encode_all_zero(self):
        bits = np.zeros(310, dtype=bool)
        words = plwah_encode(bits)
        assert words.size == 1  # one fill word covers all ten 31-bit groups
        np.testing.assert_array_equal(plwah_decode(words, 310), bits)

    def test_encode_all_one(self):
        bits = np.ones(62, dtype=bool)
        words = plwah_encode(bits)
        assert words.size == 1
        np.testing.assert_array_equal(plwah_decode(words, 62), bits)

    def test_single_dirty_bit_absorbed(self):
        # 31 zeros then one set bit in the next group: position list kicks in
        bits = np.zeros(62, dtype=bool)
        bits[40] = True
        words = plwah_encode(bits)
        assert words.size == 1  # fill + absorbed dirty group
        np.testing.assert_array_equal(plwah_decode(words, 62), bits)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random(1000) < 0.03
        words = plwah_encode(bits)
        np.testing.assert_array_equal(plwah_decode(words, 1000), bits)

    def test_dense_roundtrip(self, rng):
        bits = rng.random(500) < 0.7
        words = plwah_encode(bits)
        np.testing.assert_array_equal(plwah_decode(words, 500), bits)

    def test_sparse_beats_plain_bitmap(self, rng):
        values = np.repeat(rng.integers(0, 4, size=40), 64)  # long runs
        plain = get_codec("bitmap").compress(values)
        plwah = get_codec("plwah").compress(values)
        assert plwah.nbytes < plain.nbytes

    def test_decode_validates_length(self):
        words = plwah_encode(np.zeros(31, dtype=bool))
        with pytest.raises(CodecError):
            plwah_decode(words, 3100)


class TestGzip:
    def test_level_validation(self):
        from repro.compression.gzip_codec import GzipCodec

        with pytest.raises(CodecError):
            GzipCodec(level=0)

    def test_high_ratio_on_redundant_data(self):
        codec = get_codec("gzip")
        cc = codec.compress(np.zeros(4096, dtype=np.int64))
        assert cc.ratio > 50

    def test_detects_truncated_payload(self):
        codec = get_codec("gzip")
        cc = codec.compress(np.arange(100, dtype=np.int64))
        cc.n = 99  # metadata no longer matches the payload
        with pytest.raises(CodecError):
            codec.decompress(cc)


class TestIdentity:
    def test_ratio_is_one(self, rng):
        values = rng.integers(0, 1 << 60, 128)
        cc = get_codec("identity").compress(values)
        assert cc.ratio == 1.0

    def test_direct_codes_are_values(self, rng):
        values = rng.integers(-5, 5, 64)
        codec = get_codec("identity")
        cc = codec.compress(values)
        np.testing.assert_array_equal(codec.direct_codes(cc), values)


# ----- PLWAH hypothesis properties -------------------------------------


# segments chosen to sit on (and just off) the 31-bit word boundaries the
# fill/literal encoding pivots on
_GROUP = 31
_seg_len = st.one_of(
    st.sampled_from(
        [1, _GROUP - 1, _GROUP, _GROUP + 1, 2 * _GROUP, 4 * _GROUP + 1]
    ),
    st.integers(min_value=1, max_value=5 * _GROUP),
)
_segment = st.tuples(st.sampled_from(["zeros", "ones", "mixed"]), _seg_len)


def _render_segments(segments, seed):
    rng = np.random.default_rng(seed)
    parts = []
    for kind, n in segments:
        if kind == "zeros":
            parts.append(np.zeros(n, dtype=bool))
        elif kind == "ones":
            parts.append(np.ones(n, dtype=bool))
        else:
            parts.append(rng.random(n) < 0.5)
    return np.concatenate(parts) if parts else np.zeros(0, dtype=bool)


class TestPLWAHProperties:
    @given(st.lists(_segment, min_size=1, max_size=12), st.integers(0, 999))
    @settings(max_examples=80, deadline=None)
    def test_fill_literal_boundary_roundtrip(self, segments, seed):
        bits = _render_segments(segments, seed)
        words = plwah_encode(bits)
        np.testing.assert_array_equal(plwah_decode(words, bits.size), bits)

    @given(
        st.integers(min_value=1, max_value=6 * _GROUP),
        st.integers(min_value=0, max_value=6 * _GROUP - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_dirty_bit_anywhere(self, n, pos):
        bits = np.zeros(n, dtype=bool)
        bits[pos % n] = True
        words = plwah_encode(bits)
        np.testing.assert_array_equal(plwah_decode(words, n), bits)

    @pytest.mark.slow
    @given(st.lists(_segment, min_size=1, max_size=40), st.integers(0, 999))
    @settings(max_examples=400, deadline=None)
    def test_fill_literal_boundary_roundtrip_deep(self, segments, seed):
        bits = _render_segments(segments, seed)
        words = plwah_encode(bits)
        np.testing.assert_array_equal(plwah_decode(words, bits.size), bits)
