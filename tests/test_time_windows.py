"""Tests for time-based windows: scheduler semantics, SQL integration,
cross-batch behavior and compressed/baseline equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.errors import PlanningError, SQLSyntaxError
from repro.operators.base import ExecColumn, decoded_column
from repro.sql import QueryResult, make_executor, parse_query, plan_query
from repro.stream import Batch, Field, Schema, TimeWindowScheduler, WindowSpec

SCHEMA = Schema([Field("timestamp"), Field("k", "int", 4), Field("v", "int", 4)])
CATALOG = {"S": SCHEMA}


class TestScheduler:
    def _feed_all(self, spec, ts):
        sched = TimeWindowScheduler(spec)
        return sched.feed(np.asarray(ts, dtype=np.int64))

    def test_tumbling_extents(self):
        layout = self._feed_all(
            WindowSpec.time(10, 10), [0, 1, 9, 10, 11, 19, 25]
        )
        # windows [0,10) and [10,20) closed by ts 25; [20,30) still open
        assert layout.windows == ((0, 3), (3, 6))
        assert layout.retain_start == 6  # ts 25 belongs to the open window

    def test_overlapping_extents(self):
        layout = self._feed_all(WindowSpec.time(10, 5), [0, 4, 7, 12, 22])
        # closed: [0,10) -> idx 0..2, [5,15) -> idx 2..3, [10,20) -> idx 3
        assert layout.windows == ((0, 3), (2, 4), (3, 4))

    def test_empty_windows_skipped(self):
        layout = self._feed_all(WindowSpec.time(5, 5), [0, 1, 27])
        # [0,5) has tuples; [5,10)...[20,25) are empty and emit nothing
        assert layout.windows == ((0, 2),)

    def test_cross_batch_continuity(self):
        sched = TimeWindowScheduler(WindowSpec.time(10, 10))
        first = sched.feed(np.array([0, 3, 8]))
        assert first.windows == ()  # window [0,10) still open
        assert first.retain_start == 0
        # next feed receives tail (3 carried) + new tuples
        second = sched.feed(np.array([0, 3, 8, 11, 25]))
        assert second.carry == 3
        assert second.windows == ((0, 3), (3, 4))  # [0,10) and [10,20)

    def test_alignment_to_first_timestamp(self):
        layout = self._feed_all(WindowSpec.time(10, 10), [100, 105, 109, 110, 125])
        # t0 = 100: [100,110) closes with 3 tuples
        assert layout.windows[0] == (0, 3)

    def test_out_of_order_rejected(self):
        sched = TimeWindowScheduler(WindowSpec.time(10, 10))
        with pytest.raises(PlanningError):
            sched.feed(np.array([5, 3]))

    def test_requires_time_spec(self):
        with pytest.raises(PlanningError):
            TimeWindowScheduler(WindowSpec.count(4))

    def test_empty_feed(self):
        sched = TimeWindowScheduler(WindowSpec.time(10, 10))
        layout = sched.feed(np.zeros(0, dtype=np.int64))
        assert layout.windows == ()


class TestParsing:
    def test_time_window_syntax(self):
        q = parse_query("select avg(v) from S [range 30 seconds slide 5]")
        w = q.sources[0].window
        assert (w.mode, w.size, w.slide, w.time_column) == ("time", 30, 5, "timestamp")

    def test_explicit_on_column(self):
        q = parse_query("select avg(v) from S [range 30 seconds on k]")
        assert q.sources[0].window.time_column == "k"

    def test_slide_unit_echo(self):
        q = parse_query("select avg(v) from S [range 30 seconds slide 10 seconds]")
        assert q.sources[0].window.slide == 10

    def test_on_without_seconds_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select avg(v) from S [range 30 on k]")


class TestPlanning:
    def test_time_column_gets_values_requirement(self):
        plan = plan_query("select avg(v) as m from S [range 10 seconds]", CATALOG)
        assert plan.profile.column_uses["timestamp"].needs_values

    def test_unknown_time_column_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select avg(v) from S [range 10 seconds on ghost]", CATALOG)

    def test_float_time_column_rejected(self):
        schema = Schema([Field("t", "float", 4, decimals=1), Field("v", "int", 4)])
        with pytest.raises(PlanningError):
            plan_query("select avg(v) from T [range 10 seconds on t]", {"T": schema})


def _stream(n=60, seed=0):
    rng = np.random.default_rng(seed)
    gaps = rng.integers(0, 4, n)
    return Batch.from_values(
        SCHEMA,
        {
            "timestamp": np.cumsum(gaps),
            "k": rng.integers(0, 3, n),
            "v": rng.integers(-20, 100, n),
        },
    )


def _run(text, stream, bounds, codec_name=None):
    plan = plan_query(text, CATALOG)
    ex = make_executor(plan)
    results = []
    prev = 0
    for bound in bounds:
        part = stream.slice(prev, bound)
        prev = bound
        if part.n == 0:
            continue
        cols = {}
        for name in SCHEMA.names:
            values = part.column(name)
            if codec_name is None:
                cols[name] = decoded_column(name, values)
            else:
                codec = get_codec(codec_name)
                cc = codec.compress(values)
                use = plan.profile.use_of(name)
                if use is not None and use.served_directly_by(codec):
                    cols[name] = ExecColumn(name, codec.direct_codes(cc), codec, cc)
                else:
                    cols[name] = decoded_column(name, codec.decompress(cc))
        results.append(ex.execute(cols, part.n))
    return QueryResult.merge(results)


class TestExecution:
    TEXT = "select timestamp, avg(v) as m, count(*) as c from S [range 12 seconds slide 4]"

    def test_grouped_time_windows(self):
        stream = _stream()
        res = _run(
            "select k, max(v) as hi from S [range 8 seconds slide 8] group by k",
            stream,
            [stream.n],
        )
        assert res.n_rows > 0

    def test_split_equals_whole(self):
        stream = _stream(seed=3)
        whole = _run(self.TEXT, stream, [stream.n])
        split = _run(self.TEXT, stream, [13, 27, 41, stream.n])
        assert split.n_rows == whole.n_rows
        for name in whole.columns:
            np.testing.assert_array_equal(split.columns[name], whole.columns[name])

    @pytest.mark.parametrize("codec_name", ["ns", "bd", "dict"])
    def test_compressed_equals_baseline(self, codec_name):
        stream = _stream(seed=5)
        base = _run(self.TEXT, stream, [stream.n])
        got = _run(self.TEXT, stream, [20, stream.n], codec_name)
        assert got.n_rows == base.n_rows
        for name in base.columns:
            np.testing.assert_allclose(got.columns[name], base.columns[name])

    def test_where_before_time_windows(self):
        stream = _stream(seed=7)
        res = _run(
            "select count(*) as c from S [range 10 seconds slide 10] where v >= 0",
            stream,
            [stream.n],
        )
        assert (res.columns["c"] > 0).all()


@settings(max_examples=30, deadline=None)
@given(
    gaps=st.lists(st.integers(min_value=0, max_value=6), min_size=8, max_size=80),
    size=st.integers(min_value=2, max_value=20),
    slide=st.integers(min_value=1, max_value=20),
    cut=st.integers(min_value=1, max_value=79),
)
def test_time_window_split_property(gaps, size, slide, cut):
    n = len(gaps)
    stream = Batch.from_values(
        SCHEMA,
        {
            "timestamp": np.cumsum(gaps),
            "k": np.arange(n) % 3,
            "v": (np.arange(n) * 13) % 97,
        },
    )
    text = f"select timestamp, avg(v) as m from S [range {size} seconds slide {slide}]"
    whole = _run(text, stream, [n])
    cut = min(cut, n - 1)
    split = _run(text, stream, [cut, n])
    assert split.n_rows == whole.n_rows
    for name in whole.columns:
        np.testing.assert_array_equal(split.columns[name], whole.columns[name])
