"""Unit tests for the SQL lexer and parser (Table III dialect)."""

import pytest

from repro.datasets.queries import QUERY_TEXT
from repro.errors import SQLSyntaxError
from repro.sql import parse, parse_query, tokenize
from repro.sql.ast import AggregateCall, BinaryOp, ColumnRef, Literal
from repro.stream.window import MODE_COUNT, MODE_PARTITION, MODE_UNBOUNDED


class TestLexer:
    def test_tokens(self):
        toks = tokenize("select a, b from S [range 10 slide 2]")
        kinds = [t.kind for t in toks]
        assert kinds[-1] == "EOF"
        assert [t.value for t in toks[:4]] == ["select", "a", ",", "b"]

    def test_two_char_symbols(self):
        toks = tokenize("a == b != c <= d >= e")
        symbols = [t.value for t in toks if t.kind == "SYMBOL"]
        assert symbols == ["==", "!=", "<=", ">="]

    def test_numbers(self):
        toks = tokenize("42 3.14")
        assert [t.value for t in toks[:2]] == ["42", "3.14"]

    def test_unknown_character(self):
        with pytest.raises(SQLSyntaxError) as exc:
            tokenize("select ; from")
        assert exc.value.position == 7

    def test_positions_recorded(self):
        toks = tokenize("ab cd")
        assert toks[0].pos == 0
        assert toks[1].pos == 3


class TestParserBasics:
    def test_simple_aggregate(self):
        q = parse_query("select ts, avg(v) as m from S [range 8 slide 2]")
        assert len(q.items) == 2
        agg = q.items[1].expr
        assert isinstance(agg, AggregateCall)
        assert (agg.func, agg.arg.name) == ("avg", "v")
        assert q.items[1].alias == "m"
        src = q.sources[0]
        assert (src.stream, src.window.mode) == ("S", MODE_COUNT)
        assert (src.window.size, src.window.slide) == (8, 2)

    def test_default_slide_is_one(self):
        q = parse_query("select avg(v) from S [range 8]")
        assert q.sources[0].window.slide == 1

    def test_unbounded_window(self):
        q = parse_query("select a from S [range unbounded]")
        assert q.sources[0].window.mode == MODE_UNBOUNDED

    def test_partition_window(self):
        q = parse_query("select a from S [partition by k rows 3]")
        w = q.sources[0].window
        assert (w.mode, w.partition_by, w.rows) == (MODE_PARTITION, "k", 3)

    def test_group_by_and_where(self):
        from repro.sql.ast import BoolOp

        q = parse_query(
            "select k, sum(v) from S [range 4] where v > 10 and k == 2 group by k"
        )
        assert [c.name for c in q.group_by] == ["k"]
        assert isinstance(q.where, BoolOp) and q.where.op == "and"
        assert [c.op for c in q.where.items] == [">", "=="]

    def test_single_equals_normalized(self):
        q = parse_query("select a from S [range unbounded] where a = 5")
        assert q.where.op == "=="

    def test_or_precedence(self):
        from repro.sql.ast import BoolOp, Comparison

        q = parse_query(
            "select a from S [range unbounded] "
            "where a == 1 or a == 2 and a < 9"
        )
        # AND binds tighter: OR(a==1, AND(a==2, a<9))
        assert isinstance(q.where, BoolOp) and q.where.op == "or"
        first, second = q.where.items
        assert isinstance(first, Comparison)
        assert isinstance(second, BoolOp) and second.op == "and"

    def test_negative_literal(self):
        q = parse_query("select a from S [range unbounded] where a >= -5")
        assert q.where.right.value == -5

    def test_distinct_flag(self):
        q = parse_query("select distinct a from S [range unbounded]")
        assert q.distinct

    def test_arithmetic_expression(self):
        q = parse_query("select (position/5280) as segment from S [range unbounded]")
        expr = q.items[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "/"
        assert isinstance(expr.left, ColumnRef) and expr.left.name == "position"
        assert isinstance(expr.right, Literal) and expr.right.value == 5280

    def test_operator_precedence(self):
        q = parse_query("select a + b * 2 as x from S [range unbounded]")
        expr = q.items[0].expr
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_qualified_column_refs(self):
        q = parse_query(
            "select L.ts from S [range 4] as A, S [partition by v rows 1] as L "
            "where A.v == L.v"
        )
        assert q.items[0].expr.table == "L"
        assert q.sources[0].alias == "A"

    def test_count_star(self):
        q = parse_query("select count(*) from S [range 4]")
        agg = q.items[0].expr
        assert agg.func == "count" and agg.arg is None

    def test_keywords_case_insensitive(self):
        q = parse_query("SELECT AVG(v) FROM S [RANGE 8 SLIDE 8] GROUP BY v")
        assert q.group_by[0].name == "v"

    def test_output_names(self):
        q = parse_query("select ts, avg(v), sum(v) as s from S [range 4]")
        assert [i.output_name for i in q.items] == ["ts", "avg_v", "s"]


class TestDerivedStreams:
    def test_q3_prefix_form(self):
        script = parse(QUERY_TEXT["q3"])
        assert len(script.derived) == 1
        derived = script.derived[0]
        assert derived.name == "SegSpeedStr"
        assert derived.query.sources[0].window.mode == MODE_UNBOUNDED
        assert len(script.main.sources) == 2
        assert script.main.distinct

    def test_plain_query_has_no_derived(self):
        script = parse("select a from S [range 4]")
        assert script.derived == ()


class TestAllPaperQueries:
    @pytest.mark.parametrize("name", sorted(QUERY_TEXT))
    def test_table_iii_parses(self, name):
        script = parse(QUERY_TEXT[name])
        assert script.main.items


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "select",
            "select a",
            "select a from",
            "select a from S",
            "select a from S [range]",
            "select a from S [range 4 slide]",
            "select a from S [partition by k]",
            "select a from S [range 4.5]",
            "select avg() from S [range 4]",
            "select sum(*) from S [range 4]",
            "select a from S [range 4] where",
            "select a from S [range 4] group",
            "select a from S [range 4] extra",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(SQLSyntaxError):
            parse(text)

    def test_parse_query_rejects_derived(self):
        with pytest.raises(SQLSyntaxError):
            parse_query(QUERY_TEXT["q3"])


class TestErrorDiagnostics:
    """Malformed input must point at the offending lexeme with line/column."""

    def test_missing_order_by_expr(self):
        with pytest.raises(SQLSyntaxError) as exc:
            parse("select a from S [range 4] order by")
        err = exc.value
        assert (err.line, err.column) == (1, 35)
        assert "<end of input>" in str(err)
        assert "line 1, column 35" in str(err)

    @pytest.mark.parametrize("bad", ["0", "2.5", "x", "-3"])
    def test_limit_rejects_non_positive_integer(self, bad):
        with pytest.raises(SQLSyntaxError) as exc:
            parse(f"select a from S [range 4] order by a limit {bad}")
        err = exc.value
        assert "limit expects a positive integer" in str(err)
        assert err.line == 1
        assert err.column == 44  # points at the bad operand, not at LIMIT

    def test_limit_error_names_lexeme(self):
        with pytest.raises(SQLSyntaxError) as exc:
            parse("select a from S [range 4] order by a limit q")
        assert "(near 'q')" in str(exc.value)

    def test_join_missing_window_multiline(self):
        with pytest.raises(SQLSyntaxError) as exc:
            parse("select a from S [range 4]\njoin T on")
        err = exc.value
        assert (err.line, err.column) == (2, 8)
        assert "(near 'on')" in str(err)

    def test_left_without_join_source(self):
        with pytest.raises(SQLSyntaxError) as exc:
            parse("select a from S [range 4] left join")
        assert "<end of input>" in str(exc.value)

    def test_join_missing_on(self):
        with pytest.raises(SQLSyntaxError) as exc:
            parse("select a from S [range 4] join T [partition by k rows 1]")
        assert "expected ON" in str(exc.value)

    def test_trailing_garbage_after_order_by(self):
        with pytest.raises(SQLSyntaxError) as exc:
            parse("select a from S [range 4]\n  order by a descc")
        err = exc.value
        assert (err.line, err.column) == (2, 14)
        assert "(near 'descc')" in str(err)

    def test_position_survives_on_exception(self):
        with pytest.raises(SQLSyntaxError) as exc:
            parse("select a from S [range 4] order by a limit 0")
        assert exc.value.position == 43  # byte offset kept alongside line/col
