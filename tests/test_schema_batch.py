"""Unit tests for schemas, quantization, and columnar batches."""

import numpy as np
import pytest

from repro.compression import get_codec
from repro.errors import QuantizationError, SchemaError
from repro.stream import Batch, CompressedBatch, Field, Schema
from repro.stream.quantize import dequantize, detect_decimals, quantize


class TestField:
    def test_defaults(self):
        f = Field("x")
        assert (f.kind, f.size, f.decimals) == ("int", 8, 0)

    def test_float_scale(self):
        assert Field("v", "float", 4, decimals=2).scale == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="1bad"),
            dict(name="x", kind="text"),
            dict(name="x", size=3),
            dict(name="x", kind="int", decimals=2),
            dict(name="x", kind="float", decimals=10),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SchemaError):
            Field(**{"name": "x", **kwargs})


class TestSchema:
    def test_tuple_bytes(self, simple_schema):
        assert simple_schema.tuple_bytes == 8 + 4 + 4

    def test_lookup_and_contains(self, simple_schema):
        assert "ts" in simple_schema
        assert simple_schema["load"].decimals == 2
        with pytest.raises(SchemaError):
            simple_schema["nope"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a"), Field("a")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_equality(self, simple_schema):
        clone = Schema(list(simple_schema.fields))
        assert clone == simple_schema
        assert Schema([Field("z")]) != simple_schema


class TestQuantize:
    def test_roundtrip(self):
        values = np.array([1.25, -3.5, 0.0, 100.75])
        stored = quantize(values, 2)
        np.testing.assert_array_equal(stored, [125, -350, 0, 10075])
        np.testing.assert_array_equal(dequantize(stored, 2), values)

    def test_lossy_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.array([0.123]), 2)

    def test_nan_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.array([np.nan]), 2)

    def test_magnitude_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.array([1e300]), 0)

    def test_detect_decimals(self):
        assert detect_decimals(np.array([1.0, 2.0])) == 0
        assert detect_decimals(np.array([1.5, 2.25])) == 2
        assert detect_decimals(np.array([0.125])) == 3

    def test_detect_decimals_raises_beyond_limit(self):
        with pytest.raises(QuantizationError):
            detect_decimals(np.array([1 / 3]), max_decimals=6)


class TestBatch:
    def test_from_values_quantizes_floats(self, simple_schema):
        b = Batch.from_values(
            simple_schema,
            {"ts": [1, 2], "key": [7, 7], "load": [1.25, 2.5]},
        )
        np.testing.assert_array_equal(b.column("load"), [125, 250])
        assert b.n == 2

    def test_from_rows(self, simple_schema):
        b = Batch.from_rows(simple_schema, [(1, 7, 1.25), (2, 8, 0.75)])
        np.testing.assert_array_equal(b.column("key"), [7, 8])

    def test_missing_column_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            Batch.from_values(simple_schema, {"ts": [1], "key": [1]})

    def test_extra_column_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            Batch(
                simple_schema,
                {
                    "ts": np.array([1]),
                    "key": np.array([1]),
                    "load": np.array([1]),
                    "bogus": np.array([1]),
                },
            )

    def test_ragged_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            Batch(
                simple_schema,
                {"ts": np.arange(3), "key": np.arange(2), "load": np.arange(3)},
            )

    def test_slice_and_take(self, simple_schema):
        b = Batch.from_values(
            simple_schema,
            {"ts": np.arange(10), "key": np.arange(10), "load": np.zeros(10)},
        )
        np.testing.assert_array_equal(b.slice(2, 5).column("ts"), [2, 3, 4])
        np.testing.assert_array_equal(b.take(np.array([0, 9])).column("ts"), [0, 9])

    def test_concat(self, simple_schema):
        b1 = Batch.from_values(simple_schema, {"ts": [1], "key": [1], "load": [0.0]})
        b2 = Batch.from_values(simple_schema, {"ts": [2], "key": [2], "load": [0.5]})
        merged = Batch.concat([b1, b2])
        assert merged.n == 2
        np.testing.assert_array_equal(merged.column("ts"), [1, 2])

    def test_concat_schema_mismatch(self, simple_schema):
        other = Schema([Field("x")])
        b1 = Batch.from_values(simple_schema, {"ts": [1], "key": [1], "load": [0.0]})
        b2 = Batch.from_values(other, {"x": [1]})
        with pytest.raises(SchemaError):
            Batch.concat([b1, b2])

    def test_output_value_dequantizes(self, simple_schema):
        b = Batch.from_values(simple_schema, {"ts": [1], "key": [1], "load": [1.25]})
        np.testing.assert_array_equal(
            b.output_value("load", np.array([125])), [1.25]
        )
        np.testing.assert_array_equal(b.output_value("ts", np.array([5])), [5])

    def test_uncompressed_nbytes(self, simple_schema):
        b = Batch.from_values(
            simple_schema,
            {"ts": np.arange(4), "key": np.arange(4), "load": np.zeros(4)},
        )
        assert b.uncompressed_nbytes == 4 * 16


class TestCompressedBatch:
    def _make(self, simple_schema, n=8):
        codec = get_codec("ns")
        cols = {
            name: codec.compress(np.arange(n, dtype=np.int64))
            for name in simple_schema.names
        }
        return CompressedBatch(schema=simple_schema, n=n, columns=cols)

    def test_nbytes_and_ratio(self, simple_schema):
        cb = self._make(simple_schema)
        assert cb.nbytes == sum(cc.nbytes for cc in cb.columns.values())
        assert cb.ratio == cb.uncompressed_nbytes / cb.nbytes

    def test_choices_derived(self, simple_schema):
        cb = self._make(simple_schema)
        assert cb.choices == {"ts": "ns", "key": "ns", "load": "ns"}

    def test_missing_column_rejected(self, simple_schema):
        codec = get_codec("ns")
        with pytest.raises(SchemaError):
            CompressedBatch(
                schema=simple_schema,
                n=4,
                columns={"ts": codec.compress(np.arange(4, dtype=np.int64))},
            )

    def test_length_mismatch_rejected(self, simple_schema):
        codec = get_codec("ns")
        cols = {
            name: codec.compress(np.arange(4, dtype=np.int64))
            for name in simple_schema.names
        }
        with pytest.raises(SchemaError):
            CompressedBatch(schema=simple_schema, n=5, columns=cols)
