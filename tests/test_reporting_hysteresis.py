"""Tests for the reporting module and selector hysteresis."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveSelector,
    CostModel,
    QueryProfile,
    SystemParams,
)
from repro.errors import CodecError
from repro.net import Channel
from repro.reporting import TextTable, compare_runs, stage_breakdown_table
from repro.stats import ColumnStats


class TestTextTable:
    def test_plain_render(self):
        t = TextTable(["a", "bb"], title="T")
        t.add(1, 2.5).add("x", "y")
        out = t.render()
        assert out.splitlines()[0] == "T"
        assert "2.500" in out
        assert "--" in out

    def test_markdown_render(self):
        t = TextTable(["a", "b"], title="T")
        t.add(1, 2)
        md = t.render(markdown=True)
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "**T**" in md

    def test_cell_count_enforced(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_needs_headers(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_chained_add(self):
        t = TextTable(["a"]).add(1).add(2)
        assert len(t.rows) == 2

    def test_str(self):
        assert "a" in str(TextTable(["a"]))


class TestRunComparison:
    def _reports(self, fast_calibration):
        from repro import CompressStreamDB, EngineConfig
        from repro.stream import Field, GeneratorSource, Schema

        schema = Schema([Field("x"), Field("y", "int", 4)])
        engine = lambda mode: CompressStreamDB(  # noqa: E731
            {"S": schema},
            "select x, sum(y) as s from S [range 16 slide 16] group by x",
            EngineConfig(mode=mode, calibration=fast_calibration),
        )
        src = lambda: GeneratorSource(  # noqa: E731
            schema,
            lambda i: {
                "x": np.arange(128) % 4,
                "y": np.arange(128) % 7,
            },
            limit=2,
        )
        return {
            "baseline": engine("baseline").run(src()),
            "ns": engine("static:ns").run(src()),
        }

    def test_compare_normalized(self, fast_calibration):
        reports = self._reports(fast_calibration)
        table = compare_runs(reports, baseline="baseline")
        out = table.render()
        assert "1.00x" in out  # baseline vs itself
        assert "ns" in out

    def test_compare_absolute(self, fast_calibration):
        reports = self._reports(fast_calibration)
        out = compare_runs(reports).render()
        assert "tup/s" in out

    def test_unknown_baseline(self, fast_calibration):
        reports = self._reports(fast_calibration)
        with pytest.raises(KeyError):
            compare_runs(reports, baseline="ghost")

    def test_stage_breakdown(self, fast_calibration):
        reports = self._reports(fast_calibration)
        out = stage_breakdown_table(reports).render()
        assert "compress" in out
        assert "%" in out


class TestHysteresis:
    def _selector(self, fast_calibration, margin):
        model = CostModel(fast_calibration, SystemParams(), Channel(bandwidth_mbps=100))
        return AdaptiveSelector(model, switch_margin=margin)

    def test_negative_margin_rejected(self, fast_calibration):
        with pytest.raises(CodecError):
            self._selector(fast_calibration, -0.1)

    def test_incumbent_sticks_within_margin(self, fast_calibration):
        """Scripted costs: a challenger 10% better must not displace the
        incumbent under a 20% margin, but must once it is 50% better."""
        from repro.core.cost_model import StageEstimate

        scripted = {"ns": 1.0, "bd": 2.0}

        class ScriptedModel(CostModel):
            def estimate_column(self, codec, stats, size_b, use, profile, rb):
                return StageEstimate(query=scripted.get(codec.name, 100.0))

        model = ScriptedModel(
            fast_calibration, SystemParams(), Channel(bandwidth_mbps=100)
        )
        from repro.compression import get_codec

        pool = [get_codec("ns"), get_codec("bd")]
        selector = AdaptiveSelector(model, pool, switch_margin=0.2)
        stats = {"c": ColumnStats.from_values(np.arange(64))}
        profile = QueryProfile()
        assert selector.select(stats, profile, 64)["c"].name == "ns"
        scripted["bd"] = 0.9  # 10% better than the incumbent: within margin
        assert selector.select(stats, profile, 64)["c"].name == "ns"
        scripted["bd"] = 0.5  # 50% better: beats the margin
        assert selector.select(stats, profile, 64)["c"].name == "bd"

    def test_zero_margin_switches_freely(self, fast_calibration, rng):
        selector = self._selector(fast_calibration, margin=0.0)
        profile = QueryProfile()
        runs = {"c": ColumnStats.from_values(np.repeat(np.arange(8), 128))}
        first = selector.select(runs, profile, 1024)["c"].name
        wide = {"c": ColumnStats.from_values(rng.integers(0, 1 << 45, 1024))}
        second = selector.select(wide, profile, 1024)["c"].name
        assert second != first

    def test_big_shift_overrides_margin(self, fast_calibration, rng):
        selector = self._selector(fast_calibration, margin=0.2)
        profile = QueryProfile()
        runs = {"c": ColumnStats.from_values(np.repeat(np.arange(4), 256))}
        first = selector.select(runs, profile, 1024)["c"].name
        # negatives make many codecs inapplicable and change costs sharply
        negs = {"c": ColumnStats.from_values(rng.integers(-(1 << 40), 1 << 40, 1024))}
        second = selector.select(negs, profile, 1024)["c"].name
        assert second != first

    def test_inapplicable_incumbent_replaced(self, fast_calibration, rng):
        selector = self._selector(fast_calibration, margin=5.0)
        profile = QueryProfile()
        positive = {"c": ColumnStats.from_values(rng.integers(0, 50, 512))}
        first = selector.select(positive, profile, 512)["c"].name
        if first in ("eg", "ed"):
            negative = {"c": ColumnStats.from_values(rng.integers(-50, 50, 512))}
            second = selector.select(negative, profile, 512)["c"].name
            assert second not in ("eg", "ed")
