"""Unit tests for window specs, buffers, schedulers, partition state."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.stream import (
    Batch,
    Field,
    PartitionWindowState,
    Schema,
    SlidingWindowBuffer,
    WindowSpec,
)
from repro.stream.window import WindowScheduler


def _batch(values):
    schema = Schema([Field("x")])
    return Batch(schema, {"x": np.asarray(values, dtype=np.int64)})


class TestWindowSpec:
    def test_count_constructor(self):
        spec = WindowSpec.count(1024, 8)
        assert (spec.mode, spec.size, spec.slide) == ("count", 1024, 8)

    def test_partition_constructor(self):
        spec = WindowSpec.partition("vehicle", 1)
        assert (spec.partition_by, spec.rows) == ("vehicle", 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mode="count", size=0),
            dict(mode="count", size=4, slide=0),
            dict(mode="partition", rows=1),
            dict(mode="partition", partition_by="k", rows=0),
            dict(mode="weird"),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PlanningError):
            WindowSpec(**kwargs)


class TestSlidingWindowBuffer:
    def test_windows_within_batch(self):
        buf = SlidingWindowBuffer(WindowSpec.count(3, 1))
        merged, windows = buf.feed(_batch(range(5)))
        assert windows == [(0, 3), (1, 4), (2, 5)]
        assert buf.buffered == 2  # tuples 3,4 wait for the next batch

    def test_cross_batch_window(self):
        buf = SlidingWindowBuffer(WindowSpec.count(4, 4))
        _, w1 = buf.feed(_batch(range(6)))
        assert w1 == [(0, 4)]
        merged, w2 = buf.feed(_batch(range(6, 10)))
        assert w2 == [(0, 4)]  # coordinates within merged (buffer tail first)
        np.testing.assert_array_equal(merged.column("x")[:2], [4, 5])

    def test_slide_larger_than_size_skips(self):
        buf = SlidingWindowBuffer(WindowSpec.count(2, 5))
        _, w1 = buf.feed(_batch(range(6)))
        assert w1 == [(0, 2), (5, 7)] or w1 == [(0, 2)]
        # window (5,7) needs tuple 6: not yet available
        assert w1 == [(0, 2)]
        _, w2 = buf.feed(_batch(range(6, 12)))
        assert w2 == [(0, 2), (5, 7)]  # merged starts at global tuple 5

    def test_requires_count_window(self):
        with pytest.raises(PlanningError):
            SlidingWindowBuffer(WindowSpec.unbounded())


class TestWindowScheduler:
    def test_exact_tumbling_never_carries(self):
        sched = WindowScheduler(WindowSpec.count(4, 4))
        for _ in range(5):
            layout = sched.feed(8)
            assert layout.carry == 0
            assert layout.windows == ((0, 4), (4, 8))
            assert layout.retain_start == 8

    def test_carry_accumulates_until_window_fits(self):
        sched = WindowScheduler(WindowSpec.count(10, 10))
        assert sched.feed(4).windows == ()
        assert sched.pending == 4
        layout = sched.feed(4)
        assert layout.carry == 4
        assert layout.windows == ()
        layout = sched.feed(4)
        assert layout.carry == 8
        assert layout.windows == ((0, 10),)
        assert layout.retain_start == 10
        assert sched.pending == 2

    def test_overlapping_retention(self):
        sched = WindowScheduler(WindowSpec.count(4, 1))
        layout = sched.feed(6)
        assert layout.windows == ((0, 4), (1, 5), (2, 6))
        assert layout.retain_start == 3  # tuples 3,4,5 feed future windows

    def test_rejects_negative_feed(self):
        sched = WindowScheduler(WindowSpec.count(4, 4))
        with pytest.raises(PlanningError):
            sched.feed(-1)

    def test_requires_count_window(self):
        with pytest.raises(PlanningError):
            WindowScheduler(WindowSpec.partition("k", 1))


class TestPartitionWindowState:
    def _schema(self):
        return Schema([Field("key"), Field("val")])

    def _batch(self, keys, vals):
        return Batch(
            self._schema(),
            {
                "key": np.asarray(keys, dtype=np.int64),
                "val": np.asarray(vals, dtype=np.int64),
            },
        )

    def test_latest_row_per_key(self):
        state = PartitionWindowState(WindowSpec.partition("key", 1))
        state.update(self._batch([1, 2, 1], [10, 20, 11]))
        rows = state.lookup(np.array([1, 2]))
        np.testing.assert_array_equal(rows["val"], [11, 20])

    def test_latest_rows_cross_batches(self):
        state = PartitionWindowState(WindowSpec.partition("key", 2))
        state.update(self._batch([1, 1, 1], [10, 11, 12]))
        state.update(self._batch([1], [13]))
        rows = state.lookup(np.array([1]))
        np.testing.assert_array_equal(rows["val"], [12, 13])

    def test_partial_refill_keeps_older_rows(self):
        state = PartitionWindowState(WindowSpec.partition("key", 3))
        state.update(self._batch([5], [1]))
        state.update(self._batch([5], [2]))
        rows = state.lookup(np.array([5]))
        np.testing.assert_array_equal(rows["val"], [1, 2])

    def test_unknown_keys_skipped(self):
        state = PartitionWindowState(WindowSpec.partition("key", 1))
        state.update(self._batch([1], [10]))
        assert state.lookup(np.array([99])) == {}
        assert state.lookup(np.array([])) == {}

    def test_len_counts_keys(self):
        state = PartitionWindowState(WindowSpec.partition("key", 1))
        state.update(self._batch([1, 2, 3, 1], [0, 0, 0, 0]))
        assert len(state) == 3

    def test_requires_partition_window(self):
        with pytest.raises(PlanningError):
            PartitionWindowState(WindowSpec.count(4))
