"""Unit tests for the planner: binding, requirements, plan shapes."""

import pytest

from repro.compression.base import CAP_AFFINE, CAP_EQUALITY, CAP_ORDER
from repro.compression import get_codec
from repro.datasets import QUERIES, QUERY_TEXT
from repro.errors import PlanningError
from repro.sql import JoinPlan, PassthroughPlan, Planner, WindowAggPlan, plan_query
from repro.sql.planner import OUT_AGG, OUT_EXPR, OUT_KEY, OUT_LAST
from repro.stream import Field, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
        Field("pos", "int", 4),
    ]
)
CATALOG = {"S": SCHEMA}


class TestWindowAggPlanning:
    def test_shapes_and_kinds(self):
        plan = plan_query(
            "select ts, k, avg(v) as m from S [range 8] group by k", CATALOG
        )
        assert isinstance(plan, WindowAggPlan)
        kinds = [o.kind for o in plan.outputs]
        assert kinds == [OUT_LAST, OUT_KEY, OUT_AGG]
        assert plan.group_keys == ("k",)
        assert plan.window.size == 8

    def test_capability_requirements(self):
        plan = plan_query(
            "select k, avg(v), max(pos) from S [range 8] where ts > 5 group by k",
            CATALOG,
        )
        uses = plan.profile.column_uses
        assert CAP_EQUALITY in uses["k"].caps
        assert CAP_AFFINE in uses["v"].caps
        assert CAP_ORDER in uses["pos"].caps
        assert CAP_ORDER in uses["ts"].caps  # range predicate

    def test_float_literal_quantized(self):
        plan = plan_query("select avg(v) from S [range 8] where v >= 1.25", CATALOG)
        assert plan.where.literal == 125

    def test_unrepresentable_literal_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select avg(v) from S [range 8] where v == 1.234", CATALOG)

    def test_flipped_literal_predicate(self):
        plan = plan_query("select avg(v) from S [range 8] where 10 < pos", CATALOG)
        pred = plan.where
        assert (pred.column, pred.op, pred.literal) == ("pos", ">", 10)

    def test_or_predicate_tree(self):
        from repro.sql.planner import LiteralPredicate, PredicateGroup

        plan = plan_query(
            "select avg(v) from S [range 8] where k == 1 or k == 2 and pos > 5",
            CATALOG,
        )
        tree = plan.where
        assert isinstance(tree, PredicateGroup) and tree.op == "or"
        assert isinstance(tree.children[0], LiteralPredicate)
        assert isinstance(tree.children[1], PredicateGroup)
        assert tree.children[1].op == "and"

    def test_avg_output_field_is_float(self):
        plan = plan_query("select avg(v) as m from S [range 8]", CATALOG)
        out = plan.outputs[0]
        assert out.out_field.kind == "float"
        assert out.src_decimals == 2

    def test_unknown_column_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select avg(nope) from S [range 8]", CATALOG)

    def test_unknown_stream_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select avg(v) from Mystery [range 8]", CATALOG)

    def test_distinct_with_aggregation_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select distinct avg(v) from S [range 8]", CATALOG)

    def test_pure_projection_needs_unbounded(self):
        with pytest.raises(PlanningError):
            plan_query("select ts, k from S [range 8]", CATALOG)

    def test_expression_rejected_under_window_agg(self):
        with pytest.raises(PlanningError):
            plan_query("select (pos/2) as x, avg(v) from S [range 8]", CATALOG)


class TestPassthroughPlanning:
    def test_projection_plan(self):
        plan = plan_query(
            "select ts, (pos/100) as cell from S [range unbounded]", CATALOG
        )
        assert isinstance(plan, PassthroughPlan)
        assert [o.kind for o in plan.outputs] == ["column", OUT_EXPR]

    def test_non_distinct_projection_needs_values(self):
        plan = plan_query("select ts from S [range unbounded]", CATALOG)
        assert plan.profile.column_uses["ts"].needs_values

    def test_distinct_projection_needs_equality_only(self):
        plan = plan_query("select distinct k from S [range unbounded]", CATALOG)
        use = plan.profile.column_uses["k"]
        assert not use.needs_values
        assert CAP_EQUALITY in use.caps

    def test_expression_on_float_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select (v/2) as h from S [range unbounded]", CATALOG)

    def test_aggregate_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select avg(v) from S [range unbounded]", CATALOG)

    def test_group_by_rejected(self):
        with pytest.raises(PlanningError):
            plan_query("select k from S [range unbounded] group by k", CATALOG)


class TestJoinPlanning:
    def test_q3_shape(self):
        q3 = QUERIES["q3"]
        plan = plan_query(QUERY_TEXT["q3"], q3.catalog)
        assert isinstance(plan, JoinPlan)
        assert plan.join_key == "vehicle"
        assert plan.window.size == 30
        assert plan.partition.rows == 1
        assert plan.derived is not None
        assert plan.stream == "PosSpeedStr"  # physical stream
        assert {o.name for o in plan.outputs} >= {"segment", "vehicle"}

    def test_join_without_derived(self):
        plan = plan_query(
            "select L.ts, L.v from S [range 4] as A, "
            "S [partition by k rows 1] as L where A.k == L.k",
            CATALOG,
        )
        assert isinstance(plan, JoinPlan)
        assert plan.derived is None
        assert plan.profile.column_uses["k"].needs_values

    @pytest.mark.parametrize(
        "text",
        [
            # two count windows
            "select L.ts from S [range 4] as A, S [range 4] as L where A.k == L.k",
            # join on a different column than the partition key
            "select L.ts from S [range 4] as A, S [partition by k rows 1] as L "
            "where A.ts == L.ts",
            # non-equality predicate
            "select L.ts from S [range 4] as A, S [partition by k rows 1] as L "
            "where A.k > L.k",
            # different streams -- not supported
            "select L.ts from S [range 4] as A, T [partition by k rows 1] as L "
            "where A.k == L.k",
            # missing predicate
            "select L.ts from S [range 4] as A, S [partition by k rows 1] as L",
        ],
    )
    def test_invalid_join_forms(self, text):
        catalog = dict(CATALOG)
        catalog["T"] = SCHEMA
        with pytest.raises(PlanningError):
            plan_query(text, catalog)

    def test_selecting_window_side_rejected(self):
        with pytest.raises(PlanningError):
            plan_query(
                "select A.ts from S [range 4] as A, S [partition by k rows 1] as L "
                "where A.k == L.k",
                CATALOG,
            )


class TestColumnUse:
    def test_served_directly_rules(self):
        from repro.core.query_profile import ColumnUse

        bd = get_codec("bd")
        ed = get_codec("ed")
        rle = get_codec("rle")
        agg_use = ColumnUse("v", caps=frozenset({CAP_AFFINE}))
        assert agg_use.served_directly_by(bd)
        assert not agg_use.served_directly_by(ed)   # ED is not affine
        assert not agg_use.served_directly_by(rle)  # β = 1
        values_use = ColumnUse("v", needs_values=True)
        assert values_use.served_directly_by(bd)    # affine decodes for free
        assert not values_use.served_directly_by(ed)

    def test_merge_unions(self):
        from repro.core.query_profile import ColumnUse

        a = ColumnUse("v", caps=frozenset({CAP_ORDER}))
        b = ColumnUse("v", caps=frozenset({CAP_EQUALITY}), needs_values=True)
        merged = a.merge(b)
        assert merged.caps == frozenset({CAP_ORDER, CAP_EQUALITY})
        assert merged.needs_values

    def test_merge_rejects_different_columns(self):
        from repro.core.query_profile import ColumnUse

        with pytest.raises(ValueError):
            ColumnUse("a").merge(ColumnUse("b"))


class TestAllPaperQueriesPlan:
    @pytest.mark.parametrize("name", sorted(QUERY_TEXT))
    def test_plans_against_dataset_schemas(self, name):
        q = QUERIES[name]
        plan = Planner(q.catalog).plan_text(QUERY_TEXT[name])
        assert plan.profile.referenced
