"""Edge cases for the join executor: multi-row partitions, empty windows,
filtered derived streams, and example-script sanity."""

import py_compile
from pathlib import Path

import numpy as np
import pytest

from repro.operators.base import decoded_column
from repro.sql import make_executor, plan_query
from repro.stream import Batch, Field, Schema

SCHEMA = Schema([Field("ts"), Field("k", "int", 4), Field("v", "int", 4)])
CATALOG = {"S": SCHEMA}


def run(text, columns, parts=None):
    plan = plan_query(text, CATALOG)
    ex = make_executor(plan)
    batch = Batch.from_values(SCHEMA, columns)
    bounds = parts or [batch.n]
    from repro.sql import QueryResult

    results = []
    prev = 0
    for b in bounds:
        part = batch.slice(prev, b)
        prev = b
        cols = {n: decoded_column(n, part.column(n)) for n in SCHEMA.names}
        results.append(ex.execute(cols, part.n))
    return QueryResult.merge(results)


class TestPartitionRows:
    TEXT2 = (
        "select L.ts, L.k from S [range 4 slide 4] as A, "
        "S [partition by k rows 2] as L where A.k == L.k"
    )

    def test_two_latest_rows_per_key(self):
        res = run(
            self.TEXT2,
            {"ts": [1, 2, 3, 4], "k": [7, 7, 7, 8], "v": [0, 0, 0, 0]},
        )
        # key 7: latest two rows (ts 2, 3); key 8: only one row exists
        np.testing.assert_array_equal(np.sort(res.columns["ts"]), [2, 3, 4])

    def test_rows_accumulate_across_batches(self):
        res = run(
            self.TEXT2,
            {
                "ts": [1, 2, 3, 4, 5, 6, 7, 8],
                "k": [9, 9, 9, 9, 9, 9, 9, 9],
                "v": [0] * 8,
            },
            parts=[4, 8],
        )
        # two windows; each emits the 2 latest rows of key 9 at window end
        np.testing.assert_array_equal(np.sort(res.columns["ts"]), [3, 4, 7, 8])


class TestJoinWithDerivedFilter:
    def test_where_in_derived_stream(self):
        text = (
            "( select ts, k from S [range unbounded] where v >= 10 ) as F "
            "select L.ts from F [range 2 slide 2] as A, "
            "F [partition by k rows 1] as L where A.k == L.k"
        )
        res = run(
            text,
            {
                "ts": [1, 2, 3, 4, 5, 6],
                "k": [1, 1, 1, 1, 1, 1],
                "v": [0, 20, 30, 0, 40, 50],
            },
        )
        # rows with v<10 never enter the derived stream: windows form over
        # ts {2,3} and {5,6}; latest per window: ts 3 and ts 6
        np.testing.assert_array_equal(np.sort(res.columns["ts"]), [3, 6])


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "smart_grid_monitoring.py",
            "linear_road_tolls.py",
            "cluster_anomaly.py",
            "edge_deployment.py",
        ],
    )
    def test_compiles(self, name):
        path = Path(__file__).resolve().parent.parent / "examples" / name
        assert path.exists()
        py_compile.compile(str(path), doraise=True)
