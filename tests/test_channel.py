"""Unit tests for the simulated network channel."""

import pytest

from repro.errors import ChannelError
from repro.net import Channel


class TestTransmitMath:
    def test_eq5_bandwidth_term(self):
        ch = Channel(bandwidth_mbps=8.0)  # 1 MB/s
        assert ch.transmit_seconds(1_000_000) == pytest.approx(1.0)

    def test_eq4_latency_added_per_batch(self):
        ch = Channel(bandwidth_mbps=8.0, latency_s=0.25)
        assert ch.transmit_seconds(1_000_000) == pytest.approx(1.25)

    def test_zero_bytes_costs_latency_only(self):
        ch = Channel(bandwidth_mbps=100.0, latency_s=0.1)
        assert ch.transmit_seconds(0) == pytest.approx(0.1)

    def test_single_node_is_free(self):
        ch = Channel.single_node()
        assert ch.is_single_node
        assert ch.transmit_seconds(10**9) == 0.0

    def test_halving_bandwidth_doubles_time(self):
        fast = Channel(bandwidth_mbps=1000.0)
        slow = Channel(bandwidth_mbps=500.0)
        nbytes = 123_456
        assert slow.transmit_seconds(nbytes) == pytest.approx(
            2 * fast.transmit_seconds(nbytes)
        )


class TestAccounting:
    def test_totals_accumulate(self):
        ch = Channel(bandwidth_mbps=100.0)
        ch.transmit(1000)
        ch.transmit(2000)
        assert ch.bytes_sent == 3000
        assert ch.batches_sent == 2
        assert ch.seconds_spent == pytest.approx(ch.transmit_seconds(3000))

    def test_reset(self):
        ch = Channel(bandwidth_mbps=100.0)
        ch.transmit(1000)
        ch.reset()
        assert (ch.bytes_sent, ch.batches_sent, ch.seconds_spent) == (0, 0, 0.0)


class TestValidation:
    def test_negative_bytes_rejected(self):
        with pytest.raises(ChannelError):
            Channel(bandwidth_mbps=10).transmit_seconds(-1)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ChannelError):
            Channel(bandwidth_mbps=0)

    def test_bad_latency_rejected(self):
        with pytest.raises(ChannelError):
            Channel(bandwidth_mbps=10, latency_s=-1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_bandwidth_rejected(self, bad):
        with pytest.raises(ChannelError):
            Channel(bandwidth_mbps=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_latency_rejected(self, bad):
        with pytest.raises(ChannelError):
            Channel(bandwidth_mbps=10, latency_s=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_hop_rejected(self, bad):
        from repro.net import Hop

        with pytest.raises(ChannelError):
            Hop("uplink", bandwidth_mbps=bad)
        with pytest.raises(ChannelError):
            Hop("uplink", bandwidth_mbps=10, latency_s=bad)
