"""Property-based end-to-end equivalence: for *arbitrary* generated
streams, window geometries and batch splits, every compression mode must
produce exactly the results of the uncompressed baseline.

This is the repository's strongest correctness artifact: hypothesis
searches over data shapes (including negatives, constants, bursts) and
window/batch interactions (cross-batch windows, partial windows, skips).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.errors import CodecNotApplicable
from repro.operators.base import ExecColumn, decoded_column
from repro.sql import QueryResult, make_executor, plan_query
from repro.stream import Batch, Field, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "int", 4),
    ]
)
CATALOG = {"S": SCHEMA}

DIRECT_CODECS = ("ns", "bd", "dict", "eg", "ed")
DECODE_CODECS = ("nsv", "rle", "bitmap", "deltachain")


def columns_for(batch, codec_name, profile):
    """Server-style materialization: direct only when the codec serves
    every use of the column (mirrors repro.core.server.Server)."""
    codec = get_codec(codec_name)
    out = {}
    for name in batch.schema.names:
        values = batch.column(name)
        use = profile.use_of(name)
        try:
            cc = codec.compress(values)
        except CodecNotApplicable:
            out[name] = decoded_column(name, values)
            continue
        if use is not None and use.served_directly_by(codec):
            out[name] = ExecColumn(name, codec.direct_codes(cc), codec, cc)
        else:
            out[name] = decoded_column(name, codec.decompress(cc))
    return out


# data: bursts of repeated keys, drifting ts, mixed-sign values
data_strategy = st.tuples(
    st.integers(min_value=20, max_value=120),   # total tuples
    st.integers(min_value=0, max_value=2**31),  # ts base
    st.integers(min_value=1, max_value=6),      # distinct keys
    st.booleans(),                              # negative values?
    st.integers(min_value=0, max_value=10_000), # seed
)

geometry_strategy = st.tuples(
    st.integers(min_value=2, max_value=20),  # window size
    st.integers(min_value=1, max_value=25),  # slide
    st.integers(min_value=1, max_value=4),   # number of batch splits
)


def make_stream(total, ts_base, nkeys, negatives, seed):
    rng = np.random.default_rng(seed)
    lo = -50 if negatives else 0
    return Batch.from_values(
        SCHEMA,
        {
            "ts": ts_base + np.arange(total) // 3,
            "k": np.repeat(rng.integers(0, nkeys, total), 1)[:total],
            "v": rng.integers(lo, 100, total),
        },
    )


def split_points(total, parts, seed):
    rng = np.random.default_rng(seed + 991)
    if parts <= 1 or total < 2:
        return [total]
    cuts = sorted(set(rng.integers(1, total, size=parts - 1).tolist()))
    bounds = cuts + [total]
    return bounds


def run_split(plan_text, stream, bounds, codec_name):
    plan = plan_query(plan_text, CATALOG)
    ex = make_executor(plan)
    results = []
    prev = 0
    for bound in bounds:
        part = stream.slice(prev, bound)
        prev = bound
        if part.n == 0:
            continue
        if codec_name == "baseline":
            cols = {n: decoded_column(n, part.column(n)) for n in SCHEMA.names}
        else:
            cols = columns_for(part, codec_name, plan.profile)
        results.append(ex.execute(cols, part.n))
    return QueryResult.merge(results)


def assert_equal_results(got, expected, context):
    assert got.n_rows == expected.n_rows, context
    for name in expected.columns:
        np.testing.assert_array_equal(
            got.columns[name], expected.columns[name], err_msg=f"{context}:{name}"
        )


@settings(max_examples=40, deadline=None)
@given(data=data_strategy, geom=geometry_strategy)
def test_windowed_avg_equivalence(data, geom):
    stream = make_stream(*data)
    size, slide, parts = geom
    text = f"select ts, avg(v) as m from S [range {size} slide {slide}]"
    bounds = split_points(stream.n, parts, data[-1])
    expected = run_split(text, stream, [stream.n], "baseline")
    for codec_name in DIRECT_CODECS + DECODE_CODECS:
        got = run_split(text, stream, bounds, codec_name)
        assert_equal_results(got, expected, f"{codec_name} size={size} slide={slide}")


@settings(max_examples=40, deadline=None)
@given(data=data_strategy, geom=geometry_strategy)
def test_grouped_minmax_equivalence(data, geom):
    stream = make_stream(*data)
    size, slide, parts = geom
    text = (
        f"select k, max(v) as hi, min(v) as lo, count(*) as c "
        f"from S [range {size} slide {slide}] group by k"
    )
    bounds = split_points(stream.n, parts, data[-1])
    expected = run_split(text, stream, [stream.n], "baseline")
    for codec_name in ("ns", "dict", "ed", "rle"):
        got = run_split(text, stream, bounds, codec_name)
        assert_equal_results(got, expected, f"{codec_name} size={size} slide={slide}")


@settings(max_examples=30, deadline=None)
@given(
    data=data_strategy,
    literal=st.integers(min_value=-60, max_value=110),
    op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
)
def test_filtered_window_equivalence(data, literal, op):
    stream = make_stream(*data)
    text = f"select count(*) as c from S [range 5 slide 5] where v {op} {literal}"
    expected = run_split(text, stream, [stream.n], "baseline")
    for codec_name in DIRECT_CODECS:
        got = run_split(text, stream, [stream.n], codec_name)
        assert_equal_results(got, expected, f"{codec_name} v {op} {literal}")


@settings(max_examples=25, deadline=None)
@given(data=data_strategy, threshold=st.integers(min_value=0, max_value=90))
def test_having_equivalence(data, threshold):
    stream = make_stream(*data)
    text = (
        "select k, avg(v) as m from S [range 8 slide 8] group by k "
        f"having avg(v) >= {threshold}"
    )
    expected = run_split(text, stream, [stream.n], "baseline")
    for codec_name in ("ns", "bd", "dict"):
        got = run_split(text, stream, [stream.n], codec_name)
        assert_equal_results(got, expected, f"{codec_name} having>={threshold}")
