"""Hypothesis property suite: parse <-> unparse round-trip fixed point.

Every AST the widened grammar can express must survive
``to_sql -> parse -> to_sql`` unchanged: the rendered text is a fixed
point and the re-parsed tree equals the generated one.  This is the
contract the differential oracle's generator leans on — it builds
queries as AST nodes and feeds the engine their rendered text, so any
render/parse asymmetry would silently test a different query.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.queries import QUERY_TEXT
from repro.sql import parse, parse_query, to_sql
from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    JoinClause,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    SourceRef,
)
from repro.stream.window import WindowSpec
from repro.workloads import QUERIES as WORKLOAD_QUERIES

# ----- strategies -------------------------------------------------------

names = st.sampled_from(["alpha", "beta", "gamma", "val", "num", "ts"])
bindings = st.sampled_from(["A", "B", "L0", "L1"])
streams = st.sampled_from(["S", "T", "Events"])

column_refs = st.builds(
    ColumnRef, name=names, table=st.none() | bindings
)
plain_refs = st.builds(ColumnRef, name=names, table=st.none())

literals = st.builds(
    Literal,
    value=st.integers(-1000, 1000)
    | st.integers(1, 99_999).map(lambda n: n / 100),
)

aggregates = st.one_of(
    st.builds(
        AggregateCall,
        func=st.sampled_from(["avg", "sum", "max", "min"]),
        arg=plain_refs,
    ),
    st.builds(AggregateCall, func=st.just("count"), arg=st.none() | plain_refs),
)


def _binops(children):
    return st.builds(
        BinaryOp,
        op=st.sampled_from(["+", "-", "*", "/"]),
        left=children,
        right=children,
    )


arith_exprs = st.recursive(
    column_refs | literals, _binops, max_leaves=4
)

select_exprs = arith_exprs | aggregates

comparisons = st.builds(
    Comparison,
    op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    left=column_refs | aggregates | _binops(column_refs | literals),
    right=literals | column_refs,
)

# the grammar's or-of-ands shape: OR over comparisons / AND groups
and_groups = st.builds(
    BoolOp,
    op=st.just("and"),
    items=st.lists(comparisons, min_size=2, max_size=3).map(tuple),
)
conditions = st.one_of(
    comparisons,
    and_groups,
    st.builds(
        BoolOp,
        op=st.just("or"),
        items=st.lists(comparisons | and_groups, min_size=2, max_size=3).map(
            tuple
        ),
    ),
)

count_windows = st.integers(1, 100).flatmap(
    lambda size: st.builds(
        WindowSpec.count, st.just(size), st.integers(1, size)
    )
)
time_windows = st.integers(1, 100).flatmap(
    lambda size: st.builds(
        WindowSpec.time, st.just(size), st.integers(1, size), names
    )
)
partition_windows = st.builds(
    WindowSpec.partition, names, st.integers(1, 4)
)
windows = st.one_of(
    count_windows,
    time_windows,
    st.just(WindowSpec.unbounded()),
    partition_windows,
)

sources = st.builds(
    SourceRef, stream=streams, window=windows, alias=st.none() | bindings
)

join_clauses = st.builds(
    JoinClause,
    source=st.builds(
        SourceRef, stream=streams, window=partition_windows, alias=bindings
    ),
    on=st.builds(
        Comparison, op=st.just("=="), left=column_refs, right=column_refs
    ),
    outer=st.booleans(),
)

select_items = st.builds(
    SelectItem, expr=select_exprs, alias=st.none() | st.sampled_from(["out", "m"])
)

order_items = st.builds(
    OrderItem, expr=plain_refs | aggregates, desc=st.booleans()
)


@st.composite
def queries(draw):
    n_sources = draw(st.integers(1, 2))
    srcs = []
    seen = set()
    for _ in range(n_sources):
        src = draw(sources)
        if src.binding in seen:
            continue
        seen.add(src.binding)
        srcs.append(src)
    joins = tuple(
        j
        for j in draw(st.lists(join_clauses, max_size=2))
        if j.source.binding not in seen and not seen.add(j.source.binding)
    )
    return Query(
        items=tuple(draw(st.lists(select_items, min_size=1, max_size=3))),
        sources=tuple(srcs),
        where=draw(st.none() | conditions),
        group_by=tuple(draw(st.lists(plain_refs, max_size=2))),
        having=draw(st.none() | conditions),
        distinct=draw(st.booleans()),
        joins=joins,
        order_by=tuple(draw(st.lists(order_items, max_size=2))),
        limit=draw(st.none() | st.integers(1, 50)),
    )


# ----- the fixed-point property ----------------------------------------


@settings(max_examples=200, deadline=None)
@given(query=queries())
def test_generated_ast_round_trips(query):
    rendered = to_sql(query)
    parsed = parse_query(rendered)
    assert parsed == query
    assert to_sql(parsed) == rendered


@settings(max_examples=100, deadline=None)
@given(query=queries())
def test_rerender_is_fixed_point(query):
    once = to_sql(parse_query(to_sql(query)))
    assert to_sql(parse_query(once)) == once


# ----- real corpora round-trip through the same machinery ---------------


def test_paper_queries_round_trip():
    for name, text in QUERY_TEXT.items():
        script = parse(text)
        rendered = to_sql(script)
        assert parse(rendered) == script, name
        assert to_sql(parse(rendered)) == rendered, name


def test_workload_corpus_round_trips():
    for name, entry in WORKLOAD_QUERIES.items():
        script = parse(entry.sql)
        rendered = to_sql(script)
        assert parse(rendered) == script, name
        assert to_sql(parse(rendered)) == rendered, name
