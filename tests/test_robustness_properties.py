"""Robustness properties: wire-format fuzzing, cost-model monotonicity,
engine pool configuration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.core import CostModel, QueryProfile, SystemParams
from repro.core.query_profile import ColumnUse
from repro.net import Channel
from repro.stats import ColumnStats
from repro.stream import Batch, CompressedBatch, Field, Schema
from repro.wire import WireFormatError, deserialize_batch, serialize_batch

SCHEMA = Schema([Field("x", "int", 8), Field("y", "int", 4)])


def _frame():
    codec = get_codec("ns")
    batch = Batch.from_values(SCHEMA, {"x": np.arange(32), "y": np.arange(32) % 5})
    columns = {}
    for f in SCHEMA:
        cc = codec.compress(batch.column(f.name))
        cc.source_size_c = f.size
        columns[f.name] = cc
    return serialize_batch(CompressedBatch(schema=SCHEMA, n=32, columns=columns))


class TestWireFuzz:
    @settings(max_examples=80, deadline=None)
    @given(data=st.binary(min_size=0, max_size=300))
    def test_random_bytes_never_crash(self, data):
        """Arbitrary input must raise WireFormatError, never decode."""
        with pytest.raises(WireFormatError):
            deserialize_batch(data, SCHEMA)

    @settings(max_examples=60, deadline=None)
    @given(pos=st.integers(min_value=0, max_value=200), bit=st.integers(0, 7))
    def test_single_bitflip_detected(self, pos, bit):
        frame = bytearray(_frame())
        pos = pos % len(frame)
        frame[pos] ^= 1 << bit
        # either the checksum catches it, or (if the flip hit the CRC
        # trailer itself) the body no longer matches the altered CRC
        with pytest.raises(WireFormatError):
            deserialize_batch(bytes(frame), SCHEMA)

    @settings(max_examples=40, deadline=None)
    @given(cut=st.integers(min_value=1, max_value=200))
    def test_truncation_detected(self, cut):
        frame = _frame()
        cut = min(cut, len(frame) - 1)
        with pytest.raises(WireFormatError):
            deserialize_batch(frame[:-cut], SCHEMA)


class TestCostModelProperties:
    def _estimate(
        self, fast_calibration, bandwidth, codec="ns", n=4096, r_profile=None
    ):
        model = CostModel(
            fast_calibration, SystemParams(), Channel(bandwidth_mbps=bandwidth)
        )
        stats = ColumnStats.from_values(
            np.random.default_rng(0).integers(0, 100, n), size_c=8
        )
        use = r_profile and ColumnUse("c", caps=frozenset({"affine"}))
        profile = r_profile or QueryProfile()
        return model.estimate_column(
            get_codec(codec), stats, n, use, profile, 8 if r_profile else 0
        )

    @pytest.mark.parametrize("pair", [(10, 100), (100, 500), (500, 1000)])
    def test_trans_monotone_in_bandwidth(self, fast_calibration, pair):
        slow, fast = pair
        assert (
            self._estimate(fast_calibration, slow).trans
            > self._estimate(fast_calibration, fast).trans
        )

    def test_total_scales_with_batch_size(self, fast_calibration):
        small = self._estimate(fast_calibration, 100, n=1024)
        large = self._estimate(fast_calibration, 100, n=8192)
        assert large.total > small.total

    def test_better_ratio_never_hurts_trans(self, fast_calibration):
        ns = self._estimate(fast_calibration, 100, codec="ns")
        ident = self._estimate(fast_calibration, 100, codec="identity")
        assert ns.trans <= ident.trans

    def test_stage_estimates_nonnegative(self, fast_calibration):
        for codec in ("ns", "bd", "rle", "bitmap", "gzip", "deltachain"):
            est = self._estimate(fast_calibration, 50, codec=codec)
            assert est.compress >= 0
            assert est.trans >= 0
            assert est.decompress >= 0
            assert est.query >= 0


class TestEnginePoolConfig:
    def test_custom_pool_respected(self, fast_calibration):
        from repro import CompressStreamDB, EngineConfig
        from repro.stream import GeneratorSource

        schema = Schema([Field("a"), Field("b", "int", 4)])
        engine = CompressStreamDB(
            {"S": schema},
            "select a, sum(b) as s from S [range 8 slide 8] group by a",
            EngineConfig(
                mode="adaptive",
                calibration=fast_calibration,
                pool=["identity", "ns"],  # only these may be chosen
            ),
        )
        src = GeneratorSource(
            schema, lambda i: {"a": np.arange(64) % 3, "b": np.arange(64)}, limit=2
        )
        report = engine.run(src)
        assert set(report.final_choices.values()) <= {"identity", "ns"}

    def test_adaptive_plwah_mode_includes_plwah(self, fast_calibration):
        from repro import CompressStreamDB, EngineConfig
        from repro.core.selector import AdaptiveSelector

        schema = Schema([Field("a")])
        engine = CompressStreamDB(
            {"S": schema},
            "select count(*) as c from S [range 8 slide 8]",
            EngineConfig(mode="adaptive+plwah", calibration=fast_calibration),
        )
        pipeline = engine.make_pipeline()
        selector = pipeline.client.selector
        assert isinstance(selector, AdaptiveSelector)
        assert "plwah" in {c.name for c in selector.pool}
