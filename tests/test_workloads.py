"""Tests for repro.workloads: traces, corpus, fixtures and replay."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import WorkloadError
from repro.sql.executor import QueryResult
from repro.sql.planner import JoinPlan, Planner, WindowAggPlan
from repro.workloads import (
    QUERIES,
    TRACES,
    bless_entries,
    check_fixture,
    decode_fixture,
    encode_fixture,
    fixture_path,
    get_entry,
    get_trace,
    load_fixture,
    replay,
    run_baseline,
    run_fleet,
    run_single,
    save_fixture,
    select_entries,
)


class TestTraces:
    @pytest.mark.parametrize("name", sorted(TRACES))
    def test_deterministic(self, name):
        trace = TRACES[name]
        a = list(trace.make_source(batch_size=64, batches=4, seed=3))
        b = list(trace.make_source(batch_size=64, batches=4, seed=3))
        for ba, bb in zip(a, b):
            for f in trace.schema:
                np.testing.assert_array_equal(ba.column(f.name), bb.column(f.name))

    def test_seed_changes_data(self):
        trace = TRACES["smart_grid_spikes"]
        a = next(iter(trace.make_source(batch_size=64, batches=1, seed=1)))
        b = next(iter(trace.make_source(batch_size=64, batches=1, seed=2)))
        assert not np.array_equal(a.column("value"), b.column("value"))

    def test_phases_cycle(self):
        trace = TRACES["codec_flip_adversarial"]
        source = trace.make_source(batch_size=32, batches=None, seed=0)
        names = [source.phase_for_batch(i).name for i in range(0, 8, 2)]
        assert names == ["constant", "ramp", "noise", "dict"]

    def test_flip_ref_misses_keys(self):
        # ref spans 4x the key domain: the outer-join miss path stays hot
        trace = TRACES["codec_flip_adversarial"]
        batch = next(iter(trace.make_source(batch_size=256, batches=1, seed=0)))
        assert batch.column("ref").max() >= 8 > batch.column("key").max()

    def test_unknown_trace(self):
        with pytest.raises(WorkloadError):
            get_trace("nope")


class TestCorpus:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_entry_plans(self, name):
        entry = QUERIES[name]
        plan = Planner(entry.catalog).plan_text(entry.sql)
        assert plan is not None

    def test_new_surface_coverage(self):
        tagged = [e for e in QUERIES.values() if e.tags and "paper" not in e.tags]
        assert len(tagged) >= 6
        all_tags = {t for e in tagged for t in e.tags}
        assert {
            "order-limit",
            "or-predicate",
            "having-or",
            "multiway-join",
            "outer-join",
        } <= all_tags

    def test_multiway_is_three_sources(self):
        entry = get_entry("flip_multiway")
        plan = Planner(entry.catalog).plan_text(entry.sql)
        assert isinstance(plan, JoinPlan)
        assert len(plan.sides) == 2  # probe + two partition sides

    def test_outer_side_planned(self):
        entry = get_entry("flip_outer")
        plan = Planner(entry.catalog).plan_text(entry.sql)
        assert isinstance(plan, JoinPlan)
        assert [side.outer for side in plan.sides] == [False, True]

    def test_order_limit_planned(self):
        entry = get_entry("sg_top_plugs")
        plan = Planner(entry.catalog).plan_text(entry.sql)
        assert isinstance(plan, WindowAggPlan)
        assert plan.limit == 3 and len(plan.order_by) == 2

    def test_select_filters_compose(self):
        quick_sg = select_entries(trace="smart_grid_spikes", quick=True)
        assert [e.name for e in quick_sg] == ["sg_top_plugs"]

    def test_empty_selection_rejected(self):
        with pytest.raises(WorkloadError):
            select_entries(trace="smart_grid_spikes", names=["q1"])

    def test_unknown_query(self):
        with pytest.raises(WorkloadError):
            get_entry("q99")

    def test_serve_duck_type(self):
        entry = get_entry("sg_top_plugs")
        assert entry.text(slide=entry.window) == entry.sql
        assert set(entry.catalog) == {"SmartGridStr"}


class TestFixtures:
    def _result(self):
        return QueryResult(
            columns={
                "k": np.array([2, 1, 1], dtype=np.int64),
                "v": np.array([np.nan, 0.5, 1.5]),
            },
            n_rows=3,
        )

    def test_encode_decode_roundtrip_with_nan(self):
        entry = get_entry("q1")
        doc = encode_fixture(entry, self._result())
        assert json.dumps(doc)  # strict JSON: NaN went to null
        restored = decode_fixture(doc)
        assert restored.n_rows == 3
        assert np.isnan(restored.columns["v"]).sum() == 1
        assert restored.columns["k"].dtype == np.int64

    def test_save_load_check(self, tmp_path):
        entry = get_entry("q1")
        result = self._result()
        save_fixture(entry, result, tmp_path)
        assert check_fixture(entry, result, tmp_path) is None

    def test_mismatch_reported_not_raised(self, tmp_path):
        entry = get_entry("q1")
        save_fixture(entry, self._result(), tmp_path)
        other = self._result()
        other.columns["k"] = other.columns["k"] + 1
        detail = check_fixture(entry, other, tmp_path)
        assert detail is not None and "k" in detail

    def test_missing_fixture_raises(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_fixture("q1", tmp_path)

    def test_stale_geometry_raises(self, tmp_path):
        entry = get_entry("q1")
        save_fixture(entry, self._result(), tmp_path)
        doc = json.loads(fixture_path("q1", tmp_path).read_text())
        doc["geometry"]["batches"] += 1
        fixture_path("q1", tmp_path).write_text(json.dumps(doc))
        with pytest.raises(WorkloadError):
            check_fixture(entry, self._result(), tmp_path)

    def test_version_mismatch_raises(self, tmp_path):
        entry = get_entry("q1")
        save_fixture(entry, self._result(), tmp_path)
        doc = json.loads(fixture_path("q1", tmp_path).read_text())
        doc["version"] = 99
        fixture_path("q1", tmp_path).write_text(json.dumps(doc))
        with pytest.raises(WorkloadError):
            load_fixture("q1", tmp_path)


class TestGoldenReplay:
    """The committed fixtures are the expected results — Q1-Q6 + surface."""

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_single_engine_matches_golden(self, name):
        entry = QUERIES[name]
        detail = check_fixture(entry, run_single(entry))
        assert detail is None, detail

    def test_fleet_path_matches_golden(self):
        entry = get_entry("flip_outer")
        detail = check_fixture(entry, run_fleet(entry))
        assert detail is None, detail

    def test_baseline_blessed(self):
        # the committed fixture must equal the decode-first reference
        entry = get_entry("sg_having_or")
        detail = check_fixture(entry, run_baseline(entry))
        assert detail is None, detail

    def test_outer_join_fixture_has_misses(self):
        doc = load_fixture("flip_outer")
        w = doc["columns"]["refW"]["values"]
        assert any(v is None for v in w) and any(v is not None for v in w)
        # key column of the outer side keeps the probe value on a miss
        assert doc["columns"]["refW"]["dtype"] == "float"


class TestReplayCampaign:
    def test_bless_then_replay(self, tmp_path):
        rep = replay(
            names=["sg_top_plugs"],
            paths=("single",),
            bless=True,
            fixture_dir=tmp_path,
        )
        assert rep.blessed == ["sg_top_plugs"]
        assert rep.pass_rate == 1.0 and rep.checks == 1

    def test_tampered_fixture_scores_not_raises(self, tmp_path):
        entry = get_entry("cm_busy_users")
        bless_entries([entry], tmp_path)
        path = fixture_path(entry.name, tmp_path)
        doc = json.loads(path.read_text())
        doc["columns"]["totalCPU"]["values"][0] += 1.0
        path.write_text(json.dumps(doc))
        rep = replay(names=[entry.name], paths=("single",), fixture_dir=tmp_path)
        assert rep.pass_rate == 0.0
        assert rep.failures[0].detail

    def test_unknown_path_rejected(self):
        with pytest.raises(WorkloadError):
            replay(names=["q1"], paths=("warp",))

    def test_report_json_shape(self, tmp_path):
        rep = replay(
            names=["flip_order_limit"],
            paths=("single",),
            bless=True,
            fixture_dir=tmp_path,
        )
        doc = rep.to_json()
        assert doc["pass_rate"] == 1.0
        assert doc["outcomes"][0]["query"] == "flip_order_limit"
        assert doc["outcomes"][0]["tuples"] > 0


class TestWorkloadsCLI:
    def test_quick_passes(self, capsys, tmp_path):
        out_json = tmp_path / "report.json"
        code = main(["workloads", "--quick", "--no-fleet", "--json", str(out_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "pass rate    100.0%" in out
        doc = json.loads(out_json.read_text())
        assert doc["failed"] == 0

    def test_unknown_query_is_usage_error(self, capsys):
        assert main(["workloads", "--query", "q99"]) == 2
        assert "error" in capsys.readouterr().err
