"""End-to-end recovery protocol: retry/backoff, dedup, quarantine, demotion.

The contract under test (docs/robustness.md): over a lossy link every
batch is either delivered *bit-identically* to the clean-link run or
quarantined to the dead-letter list — never silently corrupted — and
``FaultReport.detected == recovered + quarantined`` always holds.
"""

import numpy as np
import pytest

from repro import CompressStreamDB, EngineConfig
from repro.compression import get_codec
from repro.core import Client, StaticSelector
from repro.core.selector import SelectorBase
from repro.datasets import QUERIES, smart_grid
from repro.errors import CodecError, TransportError
from repro.net import (
    Channel,
    FaultProfile,
    FaultyChannel,
    Hop,
    MultiHopChannel,
    ReliabilityConfig,
    ReliableTransport,
)
from repro.net.transport import pack_envelope, unpack_envelope
from repro.sql import plan_query
from repro.stream import Batch, Field, Schema

SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("k", "int", 4),
        Field("v", "float", 4, decimals=2),
    ]
)
QUERY = "select ts, k, avg(v) as m from S [range 8 slide 8] group by k"


def make_compressed(n=64, seed=0):
    rng = np.random.default_rng(seed)
    batch = Batch.from_values(
        SCHEMA,
        {
            "ts": np.arange(n) + 100,
            "k": rng.integers(0, 4, n),
            "v": np.round(rng.integers(0, 200, n) / 4, 2),
        },
    )
    plan = plan_query(QUERY, {"S": SCHEMA})
    client = Client(SCHEMA, StaticSelector("ns"), plan.profile)
    return client.compress_batch(batch).batch


def make_transport(profile=None, config=None):
    channel = FaultyChannel(Channel(bandwidth_mbps=100.0), profile=profile)
    return ReliableTransport(channel, SCHEMA, config)


class TestEnvelope:
    def test_roundtrip(self):
        env = pack_envelope(7, b"payload")
        assert unpack_envelope(env) == (7, b"payload")

    def test_seq_range_enforced(self):
        with pytest.raises(TransportError):
            pack_envelope(-1, b"x")
        with pytest.raises(TransportError):
            pack_envelope(1 << 32, b"x")

    def test_short_envelope_rejected(self):
        with pytest.raises(TransportError):
            unpack_envelope(b"CS")

    def test_bit_flip_anywhere_detected(self):
        env = bytearray(pack_envelope(3, b"some frame bytes"))
        for pos in range(len(env)):
            flipped = bytearray(env)
            flipped[pos] ^= 0x10
            with pytest.raises(TransportError):
                unpack_envelope(bytes(flipped))

    def test_corrupted_seq_is_caught_not_misrouted(self):
        # the envelope CRC covers the header: a bit-flip in the sequence
        # number must fail validation, not dedup against the wrong seq
        env = bytearray(pack_envelope(0, b"frame"))
        env[4] ^= 0x01  # first byte of the little-endian seq field
        with pytest.raises(TransportError):
            unpack_envelope(bytes(env))


class TestReliabilityConfig:
    def test_backoff_grows_and_caps(self):
        cfg = ReliabilityConfig(
            backoff_base_s=0.01, backoff_factor=2.0, backoff_cap_s=0.05
        )
        assert cfg.backoff_s(0) == pytest.approx(0.01)
        assert cfg.backoff_s(1) == pytest.approx(0.02)
        assert cfg.backoff_s(2) == pytest.approx(0.04)
        assert cfg.backoff_s(3) == pytest.approx(0.05)  # capped
        assert cfg.backoff_s(20) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(TransportError):
            ReliabilityConfig(max_retries=-1)
        with pytest.raises(TransportError):
            ReliabilityConfig(rto_s=-0.1)
        with pytest.raises(TransportError):
            ReliabilityConfig(backoff_factor=0.5)


class TestReliableTransport:
    def test_requires_faulty_channel(self):
        with pytest.raises(TransportError):
            ReliableTransport(Channel(bandwidth_mbps=10.0), SCHEMA)

    def test_clean_link_first_try(self):
        transport = make_transport()
        compressed = make_compressed()
        outcome = transport.send_batch(compressed)
        assert outcome.attempts == 1
        assert not outcome.quarantined
        assert outcome.delivered.nbytes == compressed.nbytes
        assert transport.report.detected == 0
        assert transport.report.retry_seconds == 0.0

    def test_delivered_batch_decodes_to_original_values(self):
        transport = make_transport(FaultProfile(corrupt_rate=0.5, seed=2))
        compressed = make_compressed()
        outcome = transport.send_batch(compressed)
        delivered = outcome.delivered
        for name in ("ts", "k", "v"):
            codec = get_codec(delivered.columns[name].codec)
            np.testing.assert_array_equal(
                codec.decompress(delivered.columns[name]),
                get_codec(compressed.columns[name].codec).decompress(
                    compressed.columns[name]
                ),
            )

    def test_drop_triggers_timeout_and_retry(self):
        # seed chosen so the first copy drops and a retry succeeds
        transport = make_transport(
            FaultProfile(drop_rate=0.5, seed=1),
            ReliabilityConfig(rto_s=0.1, backoff_base_s=0.01),
        )
        report = transport.report
        sent = 0
        while report.detected == 0:
            outcome = transport.send_batch(make_compressed(seed=sent))
            sent += 1
            assert not outcome.quarantined  # 50% loss always recovers here
        assert report.timeouts > 0
        assert report.retried > 0
        assert report.recovered == report.detected
        assert report.retry_seconds > 0

    def test_corruption_detected_and_retried(self):
        transport = make_transport(
            FaultProfile(corrupt_rate=1.0, seed=3), ReliabilityConfig(max_retries=2)
        )
        outcome = transport.send_batch(make_compressed())
        # every attempt arrives mangled: CRC catches each, then quarantine
        assert outcome.quarantined
        assert outcome.attempts == 3
        assert transport.report.corrupt_frames == 3
        assert transport.report.quarantined == 1

    def test_total_loss_quarantines_after_max_retries(self):
        cfg = ReliabilityConfig(max_retries=4)
        transport = make_transport(FaultProfile(drop_rate=1.0), cfg)
        compressed = make_compressed()
        outcome = transport.send_batch(compressed)
        assert outcome.quarantined
        assert outcome.attempts == cfg.max_retries + 1
        report = transport.report
        assert report.timeouts == cfg.max_retries + 1
        assert report.quarantined == 1
        assert report.quarantined_tuples == compressed.n
        [letter] = report.dead_letters
        assert letter.seq == 0
        assert letter.attempts == cfg.max_retries + 1

    def test_duplicates_deduplicated_by_seq(self):
        transport = make_transport(FaultProfile(duplicate_rate=1.0))
        outcome = transport.send_batch(make_compressed())
        assert not outcome.quarantined
        assert outcome.attempts == 1
        assert transport.report.duplicates_discarded == 1
        assert transport.report.detected == 0  # a dup is not a failure

    def test_stall_charges_virtual_time(self):
        stalled = make_transport(FaultProfile(stall_rate=1.0, stall_s=0.5))
        clean = make_transport()
        compressed = make_compressed()
        slow = stalled.send_batch(compressed)
        fast = clean.send_batch(compressed)
        assert slow.seconds == pytest.approx(fast.seconds + 0.5)

    def test_retransmissions_count_bytes_on_wire(self):
        transport = make_transport(
            FaultProfile(drop_rate=1.0), ReliabilityConfig(max_retries=3)
        )
        outcome = transport.send_batch(make_compressed())
        assert outcome.bytes_on_wire == transport.channel.bytes_sent
        assert outcome.bytes_on_wire % outcome.attempts == 0

    def test_invariant_detected_eq_recovered_plus_quarantined(self):
        transport = make_transport(
            FaultProfile(
                drop_rate=0.4,
                corrupt_rate=0.3,
                truncate_rate=0.2,
                duplicate_rate=0.2,
                seed=13,
            ),
            ReliabilityConfig(max_retries=2),
        )
        for i in range(30):
            transport.send_batch(make_compressed(seed=i))
        report = transport.report
        assert report.detected > 0
        assert report.detected == report.recovered + report.quarantined


def run_engine(profile, fast_calibration, batches=4, collect=True, **cfg):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode="adaptive",
            calibration=fast_calibration,
            profile_query=False,
            fault_profile=profile,
            reliability=cfg.pop("reliability", ReliabilityConfig(max_retries=6)),
            **cfg,
        ),
    )
    return engine.run(
        smart_grid.source(batch_size=q1.window * 4, batches=batches, seed=11),
        collect_outputs=collect,
    )


class TestEndToEndRecovery:
    def test_lossy_run_matches_clean_run_bit_for_bit(self, fast_calibration):
        clean = run_engine(None, fast_calibration)
        lossy = run_engine(
            FaultProfile(drop_rate=0.05, corrupt_rate=0.05, seed=7),
            fast_calibration,
        )
        faults = lossy.faults
        assert faults is not None
        assert faults.detected == faults.recovered + faults.quarantined
        assert faults.quarantined == 0
        assert lossy.delivered_tuples == lossy.tuples
        for name in clean.outputs.columns:
            np.testing.assert_array_equal(
                clean.outputs.columns[name], lossy.outputs.columns[name]
            )

    def test_heavy_loss_still_never_corrupts_output(self, fast_calibration):
        clean = run_engine(None, fast_calibration, batches=6)
        lossy = run_engine(
            FaultProfile(
                drop_rate=0.3,
                corrupt_rate=0.3,
                truncate_rate=0.2,
                duplicate_rate=0.2,
                seed=5,
            ),
            fast_calibration,
            batches=6,
        )
        faults = lossy.faults
        assert faults.injected_total > 0
        assert faults.detected == faults.recovered + faults.quarantined
        if faults.quarantined == 0:
            for name in clean.outputs.columns:
                np.testing.assert_array_equal(
                    clean.outputs.columns[name], lossy.outputs.columns[name]
                )

    def test_dead_link_terminates_cleanly(self, fast_calibration):
        report = run_engine(
            FaultProfile(drop_rate=1.0),
            fast_calibration,
            reliability=ReliabilityConfig(max_retries=2),
        )
        faults = report.faults
        assert faults.quarantined == report.profiler.batches
        assert faults.recovered == 0
        assert faults.detected == faults.quarantined
        assert report.delivered_tuples == 0
        assert report.goodput == 0.0
        assert len(faults.dead_letters) == faults.quarantined
        # outputs exist but are empty: nothing was processed
        assert report.outputs.n_rows == 0

    def test_fault_report_absent_on_clean_config(self, fast_calibration):
        report = run_engine(None, fast_calibration, reliability=None)
        assert report.faults is None

    def test_queued_channel_composes(self, fast_calibration):
        from repro.core import SystemParams

        report = run_engine(
            FaultProfile(drop_rate=0.2, seed=3),
            fast_calibration,
            params=SystemParams(arrival_rate_tps=2_000_000.0),
        )
        faults = report.faults
        assert faults.detected == faults.recovered + faults.quarantined
        assert report.delivered_tuples + faults.quarantined_tuples == report.tuples

    def test_multihop_per_hop_profiles_compose(self, fast_calibration):
        def factory():
            return FaultyChannel(
                MultiHopChannel(
                    [Hop("uplink", 20.0, 0.002), Hop("backbone", 1000.0, 0.01)]
                ),
                hop_profiles=[
                    FaultProfile(drop_rate=0.3, corrupt_rate=0.2, seed=4),
                    FaultProfile(),  # clean backbone
                ],
            )

        report = run_engine(
            None, fast_calibration, channel_factory=factory, batches=6
        )
        faults = report.faults
        assert faults.injected_total > 0
        assert faults.detected == faults.recovered + faults.quarantined
        assert report.delivered_tuples + faults.quarantined_tuples == report.tuples


class _AlwaysFailCodec:
    """A codec stub whose compression always explodes on live data."""

    name = "flaky"

    def compress(self, values):
        raise CodecError("synthetic failure")


class _FlakySelector(SelectorBase):
    """Selects the failing codec until the caller demotes it."""

    def __init__(self):
        self._flaky = _AlwaysFailCodec()
        self._identity = get_codec("identity")

    def select(self, stats_by_column, profile, size_b, excluded=None):
        excluded = excluded or {}
        return {
            name: (
                self._identity
                if self._flaky.name in excluded.get(name, set())
                else self._flaky
            )
            for name in stats_by_column
        }


class TestCodecDemotion:
    def make_client(self, **kwargs):
        plan = plan_query(QUERY, {"S": SCHEMA})
        return Client(
            SCHEMA, _FlakySelector(), plan.profile, redecide_every=1, **kwargs
        )

    def batch(self, seed=0):
        rng = np.random.default_rng(seed)
        return Batch.from_values(
            SCHEMA,
            {
                "ts": np.arange(32) + 1,
                "k": rng.integers(0, 4, 32),
                "v": np.round(rng.integers(0, 100, 32) / 4, 2),
            },
        )

    def test_failures_fall_back_to_identity_each_batch(self):
        client = self.make_client(demote_after=3)
        outcome = client.compress_batch(self.batch())
        assert all(c == "identity" for c in outcome.choices.values())
        assert not client.demotions  # below the threshold

    def test_demotion_at_threshold_and_recorded(self):
        client = self.make_client(demote_after=3)
        for i in range(3):
            client.compress_batch(self.batch(seed=i))
        assert client.demotions  # every column hit the threshold
        demoted = client.demoted_codecs
        assert set(demoted) == {"ts", "k", "v"}
        assert all(codecs == {"flaky"} for codecs in demoted.values())
        incident = client.demotions[0]
        assert incident.codec == "flaky"
        assert incident.failures == 3
        assert "CodecError" in incident.reason

    def test_demoted_codec_never_reselected(self):
        client = self.make_client(demote_after=2)
        for i in range(6):
            outcome = client.compress_batch(self.batch(seed=i))
        # redecide_every=1: post-demotion re-decisions must honor excluded
        assert all(c == "identity" for c in outcome.choices.values())
        assert len(client.demotions) == 3  # once per column, never again

    def test_demotions_surface_in_run_report(self, fast_calibration):
        report = run_engine(
            FaultProfile(drop_rate=0.1, seed=2), fast_calibration,
            demote_after=1,
        )
        # a healthy adaptive run demotes nothing, but the field is wired
        assert report.faults.codec_demotions == []
