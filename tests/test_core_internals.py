"""Unit tests for core internals: profiler, metrics, pipeline helpers."""

import numpy as np
import pytest

from repro.core.metrics import RunReport
from repro.core.pipeline import measure_query_profile, name_is_eager
from repro.core.profiler import STAGES, BatchTiming, Profiler
from repro.sql import plan_query
from repro.stream import Batch, Field, Schema

SCHEMA = Schema([Field("ts"), Field("k", "int", 4), Field("v", "int", 4)])
CATALOG = {"S": SCHEMA}


class TestBatchTiming:
    def test_total(self):
        t = BatchTiming(wait=1, compress=2, trans=3, decompress=4, query=5)
        assert t.total == 15

    def test_defaults_zero(self):
        assert BatchTiming().total == 0.0


class TestProfiler:
    def _record(self, profiler, query=1.0, trans=2.0, tuples=10, sent=100, raw=200):
        profiler.record_batch(
            BatchTiming(query=query, trans=trans),
            tuples=tuples,
            bytes_sent=sent,
            bytes_uncompressed=raw,
        )

    def test_accumulation(self):
        p = Profiler()
        self._record(p)
        self._record(p)
        assert p.batches == 2
        assert p.tuples == 20
        assert p.bytes_sent == 200
        assert p.seconds["query"] == 2.0
        assert p.total_seconds == 6.0
        assert len(p.per_batch) == 2

    def test_breakdown_sums_to_one(self):
        p = Profiler()
        self._record(p)
        assert sum(p.breakdown().values()) == pytest.approx(1.0)

    def test_breakdown_empty_run(self):
        assert all(v == 0.0 for v in Profiler().breakdown().values())

    def test_merge(self):
        a, b = Profiler(), Profiler()
        self._record(a)
        self._record(b, query=3.0)
        merged = a.merge(b)
        assert merged.batches == 2
        assert merged.seconds["query"] == 4.0
        # originals untouched
        assert a.batches == 1

    def test_stage_names_stable(self):
        assert STAGES == ("wait", "compress", "trans", "decompress", "query")


class TestRunReport:
    def test_zero_run_metrics(self):
        rep = RunReport(profiler=Profiler())
        assert rep.throughput == 0.0
        assert rep.avg_latency == 0.0
        assert rep.compression_ratio == float("inf")
        assert rep.space_saving == 0.0

    def test_summary_contains_key_numbers(self):
        p = Profiler()
        p.record_batch(
            BatchTiming(query=0.5), tuples=100, bytes_sent=50, bytes_uncompressed=100
        )
        rep = RunReport(profiler=p)
        s = rep.summary()
        assert "tuples=100" in s
        assert "50.0%" in s  # space saving

    def test_ratio_math(self):
        p = Profiler()
        p.record_batch(
            BatchTiming(query=1.0), tuples=10, bytes_sent=25, bytes_uncompressed=100
        )
        rep = RunReport(profiler=p)
        assert rep.compression_ratio == 4.0
        assert rep.space_saving == 0.75
        assert rep.throughput == 10.0
        assert rep.avg_latency == 1.0


class TestMeasureQueryProfile:
    def test_fills_profile_without_consuming_executor_state(self):
        plan = plan_query(
            "select k, avg(v) as m from S [range 8 slide 8] group by k", CATALOG
        )
        batch = Batch.from_values(
            SCHEMA,
            {"ts": np.arange(64), "k": np.arange(64) % 4, "v": np.arange(64)},
        )
        assert plan.profile.mem_seconds == 0.0
        measure_query_profile(plan, batch, memory_fraction=0.6)
        assert plan.profile.mem_seconds > 0.0
        assert plan.profile.op_seconds > 0.0
        ratio = plan.profile.mem_seconds / (
            plan.profile.mem_seconds + plan.profile.op_seconds
        )
        assert ratio == pytest.approx(0.6, rel=1e-6)


class TestNameIsEager:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("ns", True),
            ("eg", True),
            ("identity", True),
            ("bd", False),
            ("rle", False),
            ("deltachain", False),
        ],
    )
    def test_classification(self, name, expected):
        assert name_is_eager(name) == expected
