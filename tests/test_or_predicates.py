"""Execution tests for OR predicate trees (incl. on compressed codes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.operators.base import ExecColumn, decoded_column
from repro.sql import make_executor, plan_query
from repro.stream import Batch, Field, Schema

SCHEMA = Schema([Field("ts"), Field("k", "int", 4), Field("v", "int", 4)])
CATALOG = {"S": SCHEMA}


def run(query, columns, codec_name=None):
    plan = plan_query(query, CATALOG)
    ex = make_executor(plan)
    batch = Batch.from_values(SCHEMA, columns)
    cols = {}
    for name in SCHEMA.names:
        values = batch.column(name)
        if codec_name is None:
            cols[name] = decoded_column(name, values)
        else:
            codec = get_codec(codec_name)
            cc = codec.compress(values)
            use = plan.profile.use_of(name)
            if use is not None and use.served_directly_by(codec):
                cols[name] = ExecColumn(name, codec.direct_codes(cc), codec, cc)
            else:
                cols[name] = decoded_column(name, codec.decompress(cc))
    return ex.execute(cols, batch.n)


COLUMNS = {
    "ts": np.arange(12),
    "k": [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2],
    "v": [5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60],
}


class TestOrExecution:
    def test_simple_or(self):
        res = run(
            "select ts from S [range unbounded] where k == 0 or k == 2", COLUMNS
        )
        expected = [i for i, k in enumerate(COLUMNS["k"]) if k in (0, 2)]
        np.testing.assert_array_equal(res.columns["ts"], expected)

    def test_precedence_and_binds_tighter(self):
        # k == 0 OR (k == 1 AND v > 30)
        res = run(
            "select ts from S [range unbounded] where k == 0 or k == 1 and v > 30",
            COLUMNS,
        )
        expected = [
            i
            for i, (k, v) in enumerate(zip(COLUMNS["k"], COLUMNS["v"]))
            if k == 0 or (k == 1 and v > 30)
        ]
        np.testing.assert_array_equal(res.columns["ts"], expected)

    def test_or_under_window_aggregation(self):
        res = run(
            "select count(*) as c from S [range 4 slide 4] where v < 15 or v >= 50",
            COLUMNS,
        )
        kept = sum(1 for v in COLUMNS["v"] if v < 15 or v >= 50)
        assert res.columns["c"].sum() == (kept // 4) * 4  # whole windows only

    @pytest.mark.parametrize("codec_name", ["ns", "bd", "dict", "ed"])
    def test_or_on_compressed_codes(self, codec_name):
        base = run(
            "select ts from S [range unbounded] where k == 2 or v <= 10", COLUMNS
        )
        got = run(
            "select ts from S [range unbounded] where k == 2 or v <= 10",
            COLUMNS,
            codec_name,
        )
        np.testing.assert_array_equal(got.columns["ts"], base.columns["ts"])


@settings(max_examples=40, deadline=None)
@given(
    ks=st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=60),
    a=st.integers(min_value=0, max_value=4),
    b=st.integers(min_value=0, max_value=120),
    c=st.integers(min_value=0, max_value=4),
)
def test_or_equivalence_property(ks, a, b, c):
    n = len(ks)
    columns = {
        "ts": np.arange(n),
        "k": np.asarray(ks),
        "v": (np.arange(n) * 7) % 121,
    }
    text = (
        f"select ts from S [range unbounded] "
        f"where k == {a} or v >= {b} and k != {c}"
    )
    expected = run(text, columns)
    for codec_name in ("ns", "dict"):
        got = run(text, columns, codec_name)
        np.testing.assert_array_equal(
            got.columns["ts"], expected.columns["ts"], err_msg=codec_name
        )
