"""Unit tests for seeded fault injection (repro.net.faults)."""

import pytest

from repro.errors import ChannelError
from repro.net import (
    Channel,
    FaultInjector,
    FaultProfile,
    FaultyChannel,
    Hop,
    MultiHopChannel,
    QueuedChannel,
)

FRAME = bytes(range(256)) * 4


class TestFaultProfile:
    def test_default_is_lossless(self):
        assert FaultProfile().is_lossless

    def test_lossy_helper(self):
        p = FaultProfile.lossy(0.25, seed=3)
        assert p.drop_rate == p.corrupt_rate == 0.25
        assert not p.is_lossless

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), float("inf")])
    def test_rates_must_be_probabilities(self, bad):
        with pytest.raises(ChannelError):
            FaultProfile(drop_rate=bad)
        with pytest.raises(ChannelError):
            FaultProfile(stall_rate=bad)

    def test_stall_s_must_be_finite_nonnegative(self):
        with pytest.raises(ChannelError):
            FaultProfile(stall_s=-0.1)
        with pytest.raises(ChannelError):
            FaultProfile(stall_s=float("inf"))


class TestFaultInjector:
    def test_lossless_profile_passes_frames_through(self):
        inj = FaultInjector(FaultProfile())
        assert inj.apply(FRAME) == [(FRAME, 0.0)]
        assert inj.injected_total == 0

    def test_empty_frame_rejected(self):
        with pytest.raises(ChannelError):
            FaultInjector(FaultProfile()).apply(b"")

    def test_certain_drop(self):
        inj = FaultInjector(FaultProfile(drop_rate=1.0))
        assert inj.apply(FRAME) == []
        assert inj.counts["drop"] == 1

    def test_certain_corrupt_flips_bits(self):
        inj = FaultInjector(FaultProfile(corrupt_rate=1.0))
        [(payload, delay)] = inj.apply(FRAME)
        assert payload != FRAME
        assert len(payload) == len(FRAME)
        assert delay == 0.0

    def test_certain_truncate_shortens(self):
        inj = FaultInjector(FaultProfile(truncate_rate=1.0, seed=5))
        [(payload, _)] = inj.apply(FRAME)
        assert len(payload) < len(FRAME)
        assert FRAME.startswith(payload)

    def test_certain_duplicate_delivers_two(self):
        inj = FaultInjector(FaultProfile(duplicate_rate=1.0))
        assert inj.apply(FRAME) == [(FRAME, 0.0), (FRAME, 0.0)]
        assert inj.counts["duplicate"] == 1

    def test_certain_stall_charges_delay(self):
        inj = FaultInjector(FaultProfile(stall_rate=1.0, stall_s=0.2))
        assert inj.apply(FRAME) == [(FRAME, 0.2)]

    def test_same_seed_replays_identically(self):
        p = FaultProfile(
            drop_rate=0.3,
            corrupt_rate=0.3,
            truncate_rate=0.2,
            duplicate_rate=0.2,
            stall_rate=0.2,
            seed=9,
        )
        a, b = FaultInjector(p), FaultInjector(p)
        for _ in range(200):
            assert a.apply(FRAME) == b.apply(FRAME)
        assert a.counts == b.counts
        assert a.injected_total > 0

    def test_different_seeds_diverge(self):
        pa = FaultProfile(drop_rate=0.5, seed=1)
        pb = FaultProfile(drop_rate=0.5, seed=2)
        a, b = FaultInjector(pa), FaultInjector(pb)
        results_a = [a.apply(FRAME) for _ in range(100)]
        results_b = [b.apply(FRAME) for _ in range(100)]
        assert results_a != results_b

    def test_all_kinds_eventually_fire(self):
        inj = FaultInjector(
            FaultProfile(
                drop_rate=0.2,
                corrupt_rate=0.2,
                truncate_rate=0.2,
                duplicate_rate=0.2,
                stall_rate=0.2,
                seed=3,
            )
        )
        for _ in range(300):
            inj.apply(FRAME)
        assert all(count > 0 for count in inj.counts.values())


class TestFaultyChannel:
    def test_timing_delegates_to_inner(self):
        inner = Channel(bandwidth_mbps=8.0, latency_s=0.25)
        faulty = FaultyChannel(inner, FaultProfile.lossy(0.5))
        assert faulty.transmit_seconds(10**6) == inner.transmit_seconds(10**6)

    def test_counters_mirror_inner(self):
        faulty = FaultyChannel(Channel(bandwidth_mbps=100.0))
        faulty.transmit(1000)
        faulty.transmit(2000)
        assert faulty.bytes_sent == faulty.inner.bytes_sent == 3000
        assert faulty.batches_sent == 2
        faulty.reset()
        assert faulty.bytes_sent == faulty.inner.bytes_sent == 0

    def test_send_requires_queued_channel(self):
        faulty = FaultyChannel(Channel(bandwidth_mbps=100.0))
        with pytest.raises(ChannelError):
            faulty.send(100, ready_time=0.0)

    def test_send_delegates_to_queued_inner(self):
        inner = QueuedChannel(bandwidth_mbps=100.0)
        faulty = FaultyChannel(inner)
        seconds, done = faulty.send(1000, ready_time=0.0)
        assert seconds > 0
        assert faulty.bytes_sent == inner.bytes_sent == 1000

    def test_cannot_nest(self):
        faulty = FaultyChannel(Channel(bandwidth_mbps=10.0))
        with pytest.raises(ChannelError):
            FaultyChannel(faulty)

    def test_profile_and_hop_profiles_exclusive(self):
        link = MultiHopChannel([Hop("up", 10.0), Hop("down", 10.0)])
        with pytest.raises(ChannelError):
            FaultyChannel(
                link,
                profile=FaultProfile(),
                hop_profiles=[FaultProfile(), FaultProfile()],
            )

    def test_hop_profiles_require_multihop(self):
        with pytest.raises(ChannelError):
            FaultyChannel(Channel(bandwidth_mbps=10.0), hop_profiles=[FaultProfile()])

    def test_hop_profile_count_must_match(self):
        link = MultiHopChannel([Hop("up", 10.0), Hop("down", 10.0)])
        with pytest.raises(ChannelError):
            FaultyChannel(link, hop_profiles=[FaultProfile()])

    def test_clean_deliver_roundtrips(self):
        faulty = FaultyChannel(Channel(bandwidth_mbps=10.0))
        assert faulty.deliver(FRAME) == [(FRAME, 0.0)]

    def test_per_hop_drop_composes(self):
        # hop 0 drops everything: nothing reaches (or is counted at) hop 1
        link = MultiHopChannel([Hop("up", 10.0), Hop("down", 10.0)])
        faulty = FaultyChannel(
            link,
            hop_profiles=[
                FaultProfile(drop_rate=1.0),
                FaultProfile(corrupt_rate=1.0),
            ],
        )
        assert faulty.deliver(FRAME) == []
        assert faulty.injected_counts["drop"] == 1
        assert faulty.injected_counts["corrupt"] == 0

    def test_duplicate_then_corrupt_faults_copies_independently(self):
        link = MultiHopChannel([Hop("up", 10.0), Hop("down", 10.0)])
        faulty = FaultyChannel(
            link,
            hop_profiles=[
                FaultProfile(duplicate_rate=1.0),
                FaultProfile(corrupt_rate=0.5, seed=4),
            ],
        )
        copies = [payload for payload, _ in faulty.deliver(FRAME)]
        assert len(copies) == 2
        # with corrupt_rate=0.5 each copy is drawn independently, so over a
        # few frames we must observe both a mangled and an intact copy
        for _ in range(20):
            copies.extend(p for p, _ in faulty.deliver(FRAME))
        assert any(c != FRAME for c in copies)
        assert any(c == FRAME for c in copies)

    def test_stall_delays_accumulate_across_hops(self):
        link = MultiHopChannel([Hop("up", 10.0), Hop("down", 10.0)])
        faulty = FaultyChannel(
            link,
            hop_profiles=[
                FaultProfile(stall_rate=1.0, stall_s=0.1),
                FaultProfile(stall_rate=1.0, stall_s=0.25),
            ],
        )
        assert faulty.deliver(FRAME) == [(FRAME, pytest.approx(0.35))]

    def test_fully_truncated_frame_not_forwarded(self):
        # a truncation to zero bytes upstream must read as a drop downstream,
        # not crash the next hop's injector
        link = MultiHopChannel([Hop("up", 10.0), Hop("down", 10.0)])
        faulty = FaultyChannel(
            link,
            hop_profiles=[
                FaultProfile(truncate_rate=1.0, seed=0),
                FaultProfile(),
            ],
        )
        for _ in range(50):
            for payload, _delay in faulty.deliver(FRAME):
                assert payload  # empty payloads never surface
