#!/usr/bin/env python3
"""Quickstart: compressed stream processing in ~40 lines.

Defines a small sensor stream, runs a windowed streaming SQL query through
CompressStreamDB in three modes (baseline / one static codec / adaptive),
and prints throughput, latency and space savings for each.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CompressStreamDB, EngineConfig, Field, Schema
from repro.stream import GeneratorSource

# 1. Describe the stream: field name, type, wire width, decimals.
SCHEMA = Schema(
    [
        Field("ts", "int", 8),
        Field("sensor", "int", 4),
        Field("reading", "float", 4, decimals=2),
    ]
)

# 2. A deterministic synthetic source: 64 sensors reporting in bursts.
def make_batch(index: int):
    rng = np.random.default_rng(1000 + index)
    n = 8192
    sensor = np.repeat(rng.integers(0, 64, size=n // 32 + 1), 32)[:n]
    return {
        "ts": 1_700_000_000 + index * 80 + np.arange(n) // 100,
        "sensor": sensor,
        "reading": np.round(20.0 + 5.0 * rng.standard_normal(n), 2),
    }


QUERY = (
    "select ts, sensor, avg(reading) as meanReading "
    "from Sensors [range 512 slide 512] group by sensor"
)


def main() -> None:
    print(f"query: {QUERY}\n")
    for mode in ("baseline", "static:bd", "adaptive"):
        engine = CompressStreamDB(
            catalog={"Sensors": SCHEMA},
            query=QUERY,
            config=EngineConfig(mode=mode, bandwidth_mbps=500),
        )
        source = GeneratorSource(SCHEMA, make_batch, limit=8)
        report = engine.run(source, collect_outputs=True)
        print(f"[{mode}]")
        print(f"  {report.summary()}")
        print(f"  codec per column: {report.final_choices}")
        print(f"  result rows: {report.outputs.n_rows}")
    print("\nThe adaptive mode should transmit the fewest bytes and reach")
    print("the highest throughput: that is the paper's headline effect.")


if __name__ == "__main__":
    main()
