#!/usr/bin/env python3
"""Smart-grid load monitoring (the paper's Sec. III case study).

Runs the paper's Q1 (global average load) and Q2 (per-plug load, grouped)
over the DEBS-2014-style smart-grid stream, comparing the uncompressed
baseline against adaptive CompressStreamDB, and shows how the selector's
per-column decisions react when the workload shifts between regimes
(burst / peak / night phases).

Run:  python examples/smart_grid_monitoring.py
"""

from repro import CompressStreamDB, EngineConfig
from repro.datasets import QUERIES, smart_grid


def run_query(name: str, mode: str, batches: int = 6):
    q = QUERIES[name]
    engine = CompressStreamDB(
        q.catalog,
        q.text(slide=q.window),
        EngineConfig(mode=mode, bandwidth_mbps=500),
    )
    source = q.make_source(batch_size=q.window * 20, batches=batches)
    return engine.run(source, collect_outputs=True)


def main() -> None:
    print("== steady workload: Q1 and Q2 ==")
    for name in ("q1", "q2"):
        base = run_query(name, "baseline")
        adaptive = run_query(name, "adaptive")
        speedup = adaptive.throughput / base.throughput
        latency_drop = 1 - adaptive.avg_latency / base.avg_latency
        print(
            f"{name}: speedup {speedup:.2f}x, latency -{latency_drop:.0%}, "
            f"space saving {adaptive.space_saving:.0%}"
        )
        print(f"     codecs: {adaptive.final_choices}")

    print("\n== shifting workload: selector re-decisions ==")
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(mode="adaptive", bandwidth_mbps=100, redecide_every=4),
    )
    workload = smart_grid.dynamic_workload(
        batch_size=q1.window * 8, batches=24, batches_per_phase=8
    )
    report = engine.run(workload)
    for i, decision in enumerate(report.decision_log):
        print(
            f"decision {i}: value -> {decision['value']}, "
            f"house -> {decision['house']}, timestamp -> {decision['timestamp']}"
        )
    print(f"overall: {report.summary()}")


if __name__ == "__main__":
    main()
