#!/usr/bin/env python3
"""Edge deployment: multi-layer topology with a saturated sensor uplink.

Sec. IV-A notes the client/server pair is a simplified model — real IoT
deployments chain sensors through an edge collector to the cloud, and the
codecs are lightweight precisely so compression can run on the sensors.
This example runs the smart-grid stream over a sensor->edge->cloud path
whose uplink is thinner than the raw stream, with an arrival-rate model:
the uncompressed baseline queues up (watch the latency), adaptive
compression fits the uplink.

Run:  python examples/edge_deployment.py
"""

from repro import CompressStreamDB, EngineConfig, SystemParams
from repro.datasets import QUERIES, smart_grid
from repro.net import Hop, MultiHopChannel, QueuedChannel

ARRIVAL_TPS = 150_000   # tuples/second offered by the sensors
UPLINK_MBPS = 25.0      # thinner than the ~29 Mbit/s raw stream


def run(mode):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode=mode,
            params=SystemParams(arrival_rate_tps=ARRIVAL_TPS),
            # queueing happens on the bottleneck uplink; model the path's
            # total as one queued link at the uplink rate plus backbone RTT
            channel_factory=lambda: QueuedChannel(
                bandwidth_mbps=UPLINK_MBPS, latency_s=0.012
            ),
        ),
    )
    pipeline = engine.make_pipeline()
    source = q1.make_source(batch_size=q1.window * 8, batches=8)
    report = pipeline.run(source)
    return report, pipeline.channel


def main() -> None:
    q1 = QUERIES["q1"]
    raw_mbps = ARRIVAL_TPS * q1.schema.tuple_bytes * 8 / 1e6
    print(
        f"sensors offer {raw_mbps:.1f} Mbit/s raw over a "
        f"{UPLINK_MBPS:.0f} Mbit/s uplink\n"
    )
    for mode in ("baseline", "adaptive"):
        report, channel = run(mode)
        offered = raw_mbps / report.compression_ratio / UPLINK_MBPS
        print(f"[{mode}]")
        print(f"  {report.summary()}")
        print(
            f"  offered load on the uplink: {offered:.2f}x "
            f"(queueing delay accumulated: {channel.queue_seconds:.3f}s)"
        )

    print("\nStore-and-forward path breakdown (adaptive, no queueing):")
    q1 = QUERIES["q1"]
    path = MultiHopChannel(
        [Hop("sensor-uplink", UPLINK_MBPS, 0.002), Hop("edge-backbone", 1000.0, 0.010)]
    )
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(mode="adaptive", channel_factory=lambda: path),
    )
    pipeline = engine.make_pipeline()
    report = pipeline.run(q1.make_source(batch_size=q1.window * 8, batches=8))
    for hop_name, seconds in pipeline.channel.breakdown():
        print(f"  {hop_name}: {seconds * 1e3:.2f} ms total")
    print(f"  overall: {report.summary()}")


if __name__ == "__main__":
    main()
