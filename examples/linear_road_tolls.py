#!/usr/bin/env python3
"""Linear Road variable tolling (the paper's Fig. 1 use case).

Uses the Q3 pipeline — a derived stream that maps vehicle positions to
highway segments, joined with the latest position per vehicle — to compute
per-segment congestion and a toy toll decision, all on compressed streams.

Run:  python examples/linear_road_tolls.py
"""

from collections import Counter

import numpy as np

from repro import CompressStreamDB, EngineConfig
from repro.datasets import QUERIES, linear_road


def main() -> None:
    q3 = QUERIES["q3"]
    engine = CompressStreamDB(
        q3.catalog,
        q3.text(slide=30),  # tumbling 30-report windows
        EngineConfig(mode="adaptive", bandwidth_mbps=500),
    )
    source = q3.make_source(batch_size=3000, batches=5)
    report = engine.run(source, collect_outputs=True)

    print("Q3 (latest position per vehicle in each window):")
    print(f"  {report.summary()}")
    print(f"  matched rows: {report.outputs.n_rows}")

    # Toll decision: congested segments (many distinct vehicles, low speed)
    out = report.outputs.columns
    seg_key = out["segment"] * 1000 + out["highway"]
    congestion = Counter(seg_key.tolist())
    speeds = {}
    for key, speed in zip(seg_key.tolist(), out["speed"].tolist()):
        speeds.setdefault(key, []).append(speed)
    print("\n  busiest segments (segment/highway, vehicles seen, avg speed, toll):")
    for key, count in congestion.most_common(5):
        avg_speed = float(np.mean(speeds[key]))
        toll = 0.0 if avg_speed > 40 else round(2.0 * (40 - avg_speed) / 40, 2)
        print(
            f"    segment {key // 1000:3d} hw {key % 1000}: "
            f"{count:4d} reports, {avg_speed:5.1f} mph -> toll ${toll:.2f}"
        )

    # Q4: per-highway/lane average speeds on the same stream
    q4 = QUERIES["q4"]
    engine4 = CompressStreamDB(
        q4.catalog, q4.text(slide=q4.window), EngineConfig(mode="adaptive")
    )
    rep4 = engine4.run(
        q4.make_source(batch_size=q4.window * 10, batches=3), collect_outputs=True
    )
    print(f"\nQ4 (avg speed by highway/lane/direction): {rep4.summary()}")
    print(f"  groups reported: {rep4.outputs.n_rows}")


if __name__ == "__main__":
    main()
