#!/usr/bin/env python3
"""Cluster-monitoring anomaly detection (the paper's Sec. III-D use case).

Streams Google-cluster-style task events through Q5/Q6 (per-category CPU
totals and per-user peak disk) under adaptive compression, then flags
anomalies: categories whose windowed CPU demand spikes above the running
mean, and users with outlier disk requests — the "emit as soon as
possible" scenario the paper motivates.

Run:  python examples/cluster_anomaly.py
"""

import numpy as np

from repro import CompressStreamDB, EngineConfig
from repro.datasets import QUERIES


def main() -> None:
    q5 = QUERIES["q5"]
    engine = CompressStreamDB(
        q5.catalog,
        q5.text(slide=q5.window),
        EngineConfig(mode="adaptive", bandwidth_mbps=500),
    )
    report = engine.run(
        q5.make_source(batch_size=q5.window * 20, batches=6), collect_outputs=True
    )
    print(f"Q5 (total CPU by category): {report.summary()}")

    out = report.outputs.columns
    categories = np.unique(out["category"])
    print("\n  CPU demand spikes (window total > mean + 2*std of category):")
    flagged = 0
    for cat in categories:
        mask = out["category"] == cat
        totals = out["totalCPU"][mask]
        if totals.size < 4:
            continue
        threshold = totals.mean() + 2 * totals.std()
        spikes = np.nonzero(totals > threshold)[0]
        for idx in spikes[:3]:
            flagged += 1
            print(
                f"    category {int(cat)}: window #{int(idx)} "
                f"total {totals[idx]:.2f} vs mean {totals.mean():.2f}"
            )
    if not flagged:
        print("    (no spikes in this run — demand is steady)")

    q6 = QUERIES["q6"]
    engine6 = CompressStreamDB(
        q6.catalog, q6.text(slide=q6.window), EngineConfig(mode="adaptive")
    )
    rep6 = engine6.run(
        q6.make_source(batch_size=q6.window * 20, batches=4), collect_outputs=True
    )
    print(f"\nQ6 (max disk by eventType/user): {rep6.summary()}")
    disk = rep6.outputs.columns["maxDisk"]
    users = rep6.outputs.columns["userId"]
    cutoff = np.quantile(disk, 0.999)
    outliers = np.nonzero(disk >= cutoff)[0][:5]
    print("  disk-request outliers (top 0.1%):")
    for idx in outliers:
        print(f"    user {int(users[idx])}: {disk[idx]:.4f} of machine disk")


if __name__ == "__main__":
    main()
