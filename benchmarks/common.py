"""Shared benchmark helpers: paper workloads + harness registration.

Every ``bench_*.py`` regenerates one table or figure of the paper
(DESIGN.md §4) and registers a :class:`repro.bench.BenchSpec` (module
attribute ``SPEC``) with the unified harness.  Run a script directly
(``python bench_fig5_throughput.py``), through pytest-benchmark
(``pytest benchmarks/ --benchmark-only -s``) or — the canonical way —
through ``python -m repro bench`` (see docs/benchmarking.md), which adds
warmup/repeats, timing statistics and ``BENCH_<suite>.json`` emission.
Rendered tables land in ``benchmarks/results/<name>.txt``.

Scale: ``REPRO_BENCH_SCALE`` (default 1) multiplies batch counts; the
defaults are sized to finish each file in tens of seconds in pure Python
while preserving the paper's per-batch geometry (window size and
windows-per-batch).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro import CompressStreamDB, EngineConfig, RunReport
from repro.bench import BenchSpec, Metric
from repro.bench import register as _register
from repro.core.calibration import default_calibration
from repro.datasets import DATASET_QUERIES, QUERIES
from repro.reporting import TextTable as Table

__all__ = [
    "DATASET_LABELS",
    "METHOD_LABELS",
    "METHODS",
    "Metric",
    "RESULTS_DIR",
    "Table",
    "average",
    "bench_scale",
    "register",
    "run_dataset",
    "run_query",
]

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: the ten processing methods of Figs. 5/6 and Table IV, in paper order
METHODS = (
    "baseline",
    "static:bd",
    "static:bitmap",
    "static:dict",
    "static:rle",
    "static:eg",
    "static:ed",
    "static:ns",
    "static:nsv",
    "adaptive",
)

METHOD_LABELS = {
    "baseline": "Baseline",
    "static:bd": "BD",
    "static:bitmap": "Bitmap",
    "static:dict": "DICT",
    "static:rle": "RLE",
    "static:eg": "EG",
    "static:ed": "ED",
    "static:ns": "NS",
    "static:nsv": "NSV",
    "adaptive": "CompressStreamDB",
}

DATASET_LABELS = {
    "smart_grid": "Smart Grid",
    "linear_road": "Linear Road Benchmark",
    "cluster": "Cluster Monitoring",
}


def bench_scale() -> int:
    return max(int(os.environ.get("REPRO_BENCH_SCALE", "1")), 1)


def register(**kwargs) -> BenchSpec:
    """Register a benchmark with tables persisted under ``results/``."""
    kwargs.setdefault("results_dir", RESULTS_DIR)
    return _register(**kwargs)


def run_query(
    qname: str,
    mode: str,
    bandwidth_mbps: Optional[float] = 500.0,
    batches: int = 3,
    windows_per_batch: int = 20,
    redecide_every: int = 16,
    seed: int = 11,
) -> RunReport:
    """Run one Table III query end-to-end in one processing mode.

    Uses tumbling windows (slide = window) so a batch holds exactly
    ``windows_per_batch`` windows, the paper's batch geometry.
    """
    q = QUERIES[qname]
    engine = CompressStreamDB(
        q.catalog,
        q.text(slide=q.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=bandwidth_mbps,
            calibration=default_calibration(),
            redecide_every=redecide_every,
        ),
    )
    source = q.make_source(
        batch_size=q.window * windows_per_batch,
        batches=batches * bench_scale(),
        seed=seed,
    )
    return engine.run(source)


def run_dataset(dataset: str, mode: str, **kwargs) -> Dict[str, RunReport]:
    """Run both queries of a dataset; the paper reports their average."""
    return {
        qname: run_query(qname, mode, **kwargs) for qname in DATASET_QUERIES[dataset]
    }


def average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
