"""Vectorized codec kernels vs their scalar references.

Times the hot encode/decode paths in both dispatch modes of
:mod:`repro.compression.kernels` — the numpy batch kernels (production)
and the original per-value loops (``scalar_reference_mode``, the
correctness oracle) — and reports the speedups.  The check locks in the
rewrite: the batch kernels must beat the scalar loops by >= 3x on the
decode paths (>= 2x for Elias Delta, whose pointer-doubling decode
sits nearer the scalar loop and whose scalar timing is noisier).
"""

import time

import numpy as np

from common import Metric, Table, register
from repro.compression import kernels
from repro.compression.kernels import scalar_reference_mode


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(fn, repeats):
    vec_s = _best_of(fn, repeats)
    with scalar_reference_mode():
        ref_s = _best_of(fn, repeats)
    return vec_s, ref_s


def collect(n=100_000, repeats=3):
    rng = np.random.default_rng(7)
    values = rng.integers(1, 1_000_000, n).astype(np.int64)
    gamma_bytes = kernels.gamma_stream_encode(values)
    delta_bytes = kernels.delta_stream_encode(values)
    bits = rng.random(n * 4) < 0.01
    words = kernels.plwah_encode(bits)
    signed = rng.integers(-(2**20), 2**20, n).astype(np.int64)
    desc, data = kernels.nsv_pack(signed, True)

    cases = {
        "gamma_encode": (n, lambda: kernels.gamma_stream_encode(values)),
        "gamma_decode": (n, lambda: kernels.gamma_stream_decode(gamma_bytes, n)),
        "delta_encode": (n, lambda: kernels.delta_stream_encode(values)),
        "delta_decode": (n, lambda: kernels.delta_stream_decode(delta_bytes, n)),
        "plwah_encode": (bits.size, lambda: kernels.plwah_encode(bits)),
        "plwah_decode": (bits.size, lambda: kernels.plwah_decode(words, bits.size)),
        "nsv_pack": (n, lambda: kernels.nsv_pack(signed, True)),
        "nsv_unpack": (n, lambda: kernels.nsv_unpack(desc, data, n, True)),
    }
    rows = {}
    for name, (tuples, fn) in cases.items():
        vec_s, ref_s = _measure(fn, repeats)
        rows[name] = {
            "tuples": tuples,
            "vector_s": vec_s,
            "scalar_s": ref_s,
            "speedup": ref_s / vec_s,
        }
    return rows


def report(rows):
    table = Table(
        ["kernel", "scalar tuples/s", "vectorized tuples/s", "speedup"],
        title="Vectorized batch kernels vs scalar references",
    )
    for name, row in rows.items():
        table.add(
            name,
            f"{row['tuples'] / row['scalar_s']:,.0f}",
            f"{row['tuples'] / row['vector_s']:,.0f}",
            f"{row['speedup']:.1f}x",
        )
    note = (
        "scalar = the per-value BitWriter/BitReader and run-loop oracles in "
        "repro.compression.scalar_ref; vectorized = the numpy bit-slicing "
        "kernels that replaced them on the hot path."
    )
    return [table.render(), note]


# floors sit well under the observed medians (gamma ~8x, plwah >100x,
# nsv ~6x, delta ~3x) so scalar-loop timing noise cannot fail a healthy
# build
FLOORS = {
    "gamma_decode": 3.0,
    "delta_decode": 2.0,
    "plwah_decode": 3.0,
    "nsv_unpack": 3.0,
}


def check(rows):
    for name, floor in FLOORS.items():
        assert rows[name]["speedup"] >= floor, (name, rows[name]["speedup"])


def metrics(rows):
    # raw speedups and throughputs are informational: they swing with
    # machine and problem size.  The gated metrics clamp each decode
    # speedup at its floor — exactly the floor on any healthy build
    # regardless of machine, collapsing only on a real regression.
    out = {}
    for name, row in rows.items():
        out[f"{name}_tuples_per_s"] = Metric(
            row["tuples"] / row["vector_s"], better=None
        )
        out[f"{name}_speedup"] = Metric(row["speedup"], better=None)
    for name, floor in FLOORS.items():
        out[f"{name}_speedup_gate"] = Metric(
            min(rows[name]["speedup"], floor), better="higher"
        )
    return out


SPEC = register(
    name="codec_kernels",
    suite="kernels",
    fn=collect,
    params={"n": 100_000, "repeats": 3},
    quick_params={"n": 20_000, "repeats": 2},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda rows: sum(r["tuples"] for r in rows.values()),
    tolerance=0.2,
)


def bench_codec_kernels(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
