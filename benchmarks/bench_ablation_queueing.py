"""Ablation — link saturation and queueing (the Fig. 10 "system pauses").

With an arrival-rate model and a serial link, an uncompressed stream that
outpaces the link accumulates queueing delay batch after batch; the same
stream compressed fits the link and the queue never forms.  This isolates
the stability benefit of compression that the paper's bandwidth-limited
latency curves imply.
"""

from common import Table, register
from repro import CompressStreamDB, EngineConfig, SystemParams
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES

#: the stream produces tuples faster than the thin link can ship them raw
ARRIVAL_TPS = 2e5
BANDWIDTH_MBPS = 30.0


def _run(mode, batches, windows_per_batch):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=BANDWIDTH_MBPS,
            calibration=default_calibration(),
            params=SystemParams(arrival_rate_tps=ARRIVAL_TPS),
        ),
    )
    src = q1.make_source(batch_size=q1.window * windows_per_batch, batches=batches)
    pipeline = engine.make_pipeline()
    report = pipeline.run(src)
    return report, pipeline.channel


def collect(batches=10, windows_per_batch=8):
    return {
        mode: _run(mode, batches, windows_per_batch)
        for mode in ("baseline", "static:ns", "adaptive")
    }


def report(results):
    table = Table(
        [
            "Method",
            "offered load vs link",
            "queue s total",
            "trans s total",
            "avg latency ms",
        ],
        title="Ablation -- queueing under link saturation "
              f"({BANDWIDTH_MBPS:.0f} Mbps link, {ARRIVAL_TPS:,.0f} tuples/s)",
    )
    q1 = QUERIES["q1"]
    raw_bps = ARRIVAL_TPS * q1.schema.tuple_bytes * 8
    for mode, (rep, channel) in results.items():
        offered = raw_bps / rep.compression_ratio / (BANDWIDTH_MBPS * 1e6)
        table.add(
            mode,
            f"{offered:.2f}x",
            f"{channel.queue_seconds:.3f}",
            f"{rep.stage_seconds()['trans']:.3f}",
            f"{rep.avg_latency * 1e3:.2f}",
        )
    note = (
        "Offered load >1x means the link cannot drain the stream: the "
        "uncompressed baseline queues ever-deeper, while compression brings "
        "the offered load under 1x and the queue vanishes."
    )
    return [table.render(), note]


def check(results):
    base_rep, base_ch = results["baseline"]
    comp_rep, comp_ch = results["adaptive"]
    assert base_ch.queue_seconds > 0, "baseline must saturate the link"
    assert comp_ch.queue_seconds < base_ch.queue_seconds * 0.2
    assert comp_rep.avg_latency < base_rep.avg_latency


def metrics(results):
    base_rep, base_ch = results["baseline"]
    comp_rep, comp_ch = results["adaptive"]
    # informational: virtual-time queueing is deterministic but scale-bound
    return {
        "baseline_queue_seconds": base_ch.queue_seconds,
        "adaptive_queue_seconds": comp_ch.queue_seconds,
        "latency_ratio_adaptive_vs_baseline": comp_rep.avg_latency
        / base_rep.avg_latency,
    }


SPEC = register(
    name="ablation_queueing",
    suite="ablation",
    fn=collect,
    params={"batches": 10, "windows_per_batch": 8},
    quick_params={"batches": 4, "windows_per_batch": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda results: sum(rep.tuples for rep, _ in results.values()),
    tolerance=0.35,
)


def bench_ablation_queueing(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
