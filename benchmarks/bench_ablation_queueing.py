"""Ablation — link saturation and queueing (the Fig. 10 "system pauses").

With an arrival-rate model and a serial link, an uncompressed stream that
outpaces the link accumulates queueing delay batch after batch; the same
stream compressed fits the link and the queue never forms.  This isolates
the stability benefit of compression that the paper's bandwidth-limited
latency curves imply.
"""

from common import Table, emit
from repro import CompressStreamDB, EngineConfig, SystemParams
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES

BATCHES = 10
WINDOWS = 8
#: the stream produces tuples faster than the thin link can ship them raw
ARRIVAL_TPS = 2e5
BANDWIDTH_MBPS = 30.0


def _run(mode):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=BANDWIDTH_MBPS,
            calibration=default_calibration(),
            params=SystemParams(arrival_rate_tps=ARRIVAL_TPS),
        ),
    )
    src = q1.make_source(batch_size=q1.window * WINDOWS, batches=BATCHES)
    pipeline = engine.make_pipeline()
    report = pipeline.run(src)
    return report, pipeline.channel


def collect():
    return {mode: _run(mode) for mode in ("baseline", "static:ns", "adaptive")}


def report(results):
    table = Table(
        ["Method", "offered load vs link", "queue s total", "trans s total",
         "avg latency ms"],
        title="Ablation -- queueing under link saturation "
              f"({BANDWIDTH_MBPS:.0f} Mbps link, {ARRIVAL_TPS:,.0f} tuples/s)",
    )
    q1 = QUERIES["q1"]
    raw_bps = ARRIVAL_TPS * q1.schema.tuple_bytes * 8
    for mode, (rep, channel) in results.items():
        offered = raw_bps / rep.compression_ratio / (BANDWIDTH_MBPS * 1e6)
        table.add(
            mode,
            f"{offered:.2f}x",
            f"{channel.queue_seconds:.3f}",
            f"{rep.stage_seconds()['trans']:.3f}",
            f"{rep.avg_latency * 1e3:.2f}",
        )
    note = (
        "Offered load >1x means the link cannot drain the stream: the "
        "uncompressed baseline queues ever-deeper, while compression brings "
        "the offered load under 1x and the queue vanishes."
    )
    emit("ablation_queueing", table.render(), note)


def check(results):
    base_rep, base_ch = results["baseline"]
    comp_rep, comp_ch = results["adaptive"]
    assert base_ch.queue_seconds > 0, "baseline must saturate the link"
    assert comp_ch.queue_seconds < base_ch.queue_seconds * 0.2
    assert comp_rep.avg_latency < base_rep.avg_latency


def bench_ablation_queueing(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(results)
    check(results)


if __name__ == "__main__":
    r = collect()
    report(r)
    check(r)
