"""Regression spec for ``BitWriter.write_unary`` on long zero runs.

The original implementation re-masked the whole accumulator for every
chunk of a zero run, making a single ``write_unary(n)`` quadratic in
``n`` (visible on Elias Gamma's unary prefixes for wide values).  The
fix flushes to byte alignment and extends the buffer directly, which is
O(n / 8).  This spec gates on long-run throughput — the linear and
quadratic implementations differ by ~400x at this run length — and
reports the x2 scaling factor for context.
"""

import time

from common import Metric, Table, register
from repro.compression.bitstream import BitWriter


def _run_cost(count, repeats):
    best = float("inf")
    for _ in range(repeats):
        writer = BitWriter()
        writer.write(1, 3)  # start unaligned, the worst case for the fix
        t0 = time.perf_counter()
        writer.write_unary(count)
        best = min(best, time.perf_counter() - t0)
    return best


def collect(count=8_000_000, repeats=5):
    # both run lengths sit above the allocator's mmap threshold (the
    # zero-block for count/2 is already ~500 KB), so the ratio measures
    # the algorithm, not a page-faulting cliff between the two sizes
    small_s = _run_cost(count // 2, repeats)
    large_s = _run_cost(count, repeats)
    return {
        "count": count,
        "small_s": small_s,
        "large_s": large_s,
        "bits_per_s": count / large_s,
        "scaling": large_s / small_s,  # ~2 linear, ~4 quadratic
    }


def report(result):
    table = Table(
        ["run length (bits)", "time", "bits/s", "x2 scaling factor"],
        title="BitWriter.write_unary long-run cost",
    )
    table.add(
        f"{result['count']:,}",
        f"{result['large_s'] * 1e3:.2f} ms",
        f"{result['bits_per_s']:,.0f}",
        f"{result['scaling']:.2f}",
    )
    note = (
        "scaling is time(n) / time(n/2): ideally ~2 for the linear "
        "buffer-extend implementation vs ~4 for the quadratic accumulator "
        "re-masking it replaced, but in practice dominated by whether the "
        "zero-block allocation hits a warm malloc arena — informational "
        "only; the gate is the throughput floor."
    )
    return [table.render(), note]


def check(result):
    # The quadratic implementation re-masked the accumulator per 32-bit
    # chunk: ~30M bits/s at this run length.  The linear rewrite
    # sustains multiple G bits/s, so the floor leaves orders of
    # magnitude of headroom for slow CI machines while still failing
    # sharply on a quadratic regression.  The 2-point scaling ratio is
    # reported but not asserted: it measures the allocator (arena reuse
    # vs fresh mmap for the zero blocks) as much as the algorithm.
    assert result["bits_per_s"] > 5e8, result["bits_per_s"]


def metrics(result):
    # raw throughput and the 2-point scaling ratio are informational
    # (machine- and allocator-sensitive); the gated metric clamps
    # throughput at a floor ~25x below healthy so it reads exactly the
    # floor on any working build and collapses on a quadratic regression
    return {
        "unary_bits_per_s": Metric(result["bits_per_s"], better=None),
        "unary_x2_scaling": Metric(result["scaling"], better=None),
        "unary_bits_per_s_gate": Metric(
            min(result["bits_per_s"], 5e8), better="higher"
        ),
    }


SPEC = register(
    name="bitstream_unary",
    suite="kernels",
    fn=collect,
    params={"count": 8_000_000, "repeats": 5},
    quick_params={"count": 4_000_000, "repeats": 3},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["count"],
    tolerance=0.2,
)


def bench_bitstream_unary(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
