"""Sec. VII-D — integrating an extra compression scheme (PLWAH).

Paper shape: PLWAH as the *only* compression method transfers ~30 % more
than the adaptive design; adding PLWAH to the adaptive pool can only help
(the selector uses it where it wins), reducing transmission time further
(paper: -10.0 % transfer, +13.4 % overall on their workload).
"""

from common import Table, emit
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid

BATCHES = 4
WINDOWS_PER_BATCH = 8


def _run(mode, pool=None):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=100,
            calibration=default_calibration(),
            pool=pool,
        ),
    )
    source = smart_grid.source(
        batch_size=q1.window * WINDOWS_PER_BATCH, batches=BATCHES
    )
    return engine.run(source)


def collect():
    return {
        "plwah_only": _run("static:plwah"),
        "adaptive": _run("adaptive"),
        "adaptive_plwah": _run("adaptive+plwah"),
    }


def report(reports):
    adaptive = reports["adaptive"]
    table = Table(
        ["Configuration", "trans time vs adaptive", "throughput vs adaptive",
         "space saving"],
        title="Sec. VII-D -- PLWAH integration (Smart Grid, Q1, 100 Mbps)",
    )
    for name, rep in reports.items():
        table.add(
            name,
            f"{rep.stage_seconds()['trans'] / adaptive.stage_seconds()['trans']:+.1%}"
            .replace("+", ""),
            f"{rep.throughput / adaptive.throughput:.2f}x",
            f"{rep.space_saving * 100:.1f}%",
        )
    note = (
        "Paper: PLWAH-only transfers 30.2% more than the adaptive design; "
        "adding PLWAH to the pool reduces transmission by 10.0% and lifts "
        "overall performance by 13.4%."
    )
    emit("plwah_ablation", table.render(), note)


def check(reports):
    trans = {k: r.stage_seconds()["trans"] for k, r in reports.items()}
    # PLWAH alone transfers more than the adaptive mix
    assert trans["plwah_only"] > trans["adaptive"]
    # a larger pool can only improve (or match) transmitted bytes
    assert (
        reports["adaptive_plwah"].profiler.bytes_sent
        <= reports["adaptive"].profiler.bytes_sent * 1.02
    )


def bench_plwah_ablation(benchmark):
    reports = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(reports)
    check(reports)


if __name__ == "__main__":
    r = collect()
    report(r)
    check(r)
