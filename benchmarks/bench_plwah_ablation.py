"""Sec. VII-D — integrating an extra compression scheme (PLWAH).

Paper shape: PLWAH as the *only* compression method transfers ~30 % more
than the adaptive design; adding PLWAH to the adaptive pool can only help
(the selector uses it where it wins), reducing transmission time further
(paper: -10.0 % transfer, +13.4 % overall on their workload).
"""

from common import Metric, Table, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid


def _run(mode, batches, windows_per_batch):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=100,
            calibration=default_calibration(),
        ),
    )
    source = smart_grid.source(
        batch_size=q1.window * windows_per_batch, batches=batches
    )
    return engine.run(source)


def collect(batches=4, windows_per_batch=8):
    return {
        "plwah_only": _run("static:plwah", batches, windows_per_batch),
        "adaptive": _run("adaptive", batches, windows_per_batch),
        "adaptive_plwah": _run("adaptive+plwah", batches, windows_per_batch),
    }


def report(reports):
    adaptive = reports["adaptive"]
    table = Table(
        [
            "Configuration",
            "trans time vs adaptive",
            "throughput vs adaptive",
            "space saving",
        ],
        title="Sec. VII-D -- PLWAH integration (Smart Grid, Q1, 100 Mbps)",
    )
    for name, rep in reports.items():
        table.add(
            name,
            f"{rep.stage_seconds()['trans'] / adaptive.stage_seconds()['trans']:+.1%}"
            .replace("+", ""),
            f"{rep.throughput / adaptive.throughput:.2f}x",
            f"{rep.space_saving * 100:.1f}%",
        )
    note = (
        "Paper: PLWAH-only transfers 30.2% more than the adaptive design; "
        "adding PLWAH to the pool reduces transmission by 10.0% and lifts "
        "overall performance by 13.4%."
    )
    return [table.render(), note]


def check(reports):
    trans = {k: r.stage_seconds()["trans"] for k, r in reports.items()}
    # PLWAH alone transfers more than the adaptive mix
    assert trans["plwah_only"] > trans["adaptive"]
    # a larger pool can only improve (or match) transmitted bytes
    assert (
        reports["adaptive_plwah"].profiler.bytes_sent
        <= reports["adaptive"].profiler.bytes_sent * 1.02
    )


def metrics(reports):
    return {
        "space_saving_adaptive_plwah": Metric(
            reports["adaptive_plwah"].space_saving, better="higher"
        ),
        "plwah_only_trans_vs_adaptive": reports["plwah_only"].stage_seconds()["trans"]
        / reports["adaptive"].stage_seconds()["trans"],
    }


SPEC = register(
    name="plwah_ablation",
    suite="paper",
    fn=collect,
    params={"batches": 4, "windows_per_batch": 8},
    quick_params={"batches": 1, "windows_per_batch": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda reports: sum(r.tuples for r in reports.values()),
    tolerance=0.3,
)


def bench_plwah_ablation(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
