"""Fig. 6 — per-batch latency of ten processing methods on three datasets.

Paper shape: CompressStreamDB has the lowest latency everywhere (-66 %
average; -79.2 % Smart Grid, -58.0 % LRB, -60.8 % Cluster).
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Metric,
    Table,
    average,
    register,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect(batches=3, windows_per_batch=20, cell_repeats=3):
    latency = {}
    tuples = 0
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            # wall-clock noise can only inflate a run's latency, never
            # shrink it, so best-of-N per cell is the robust estimator
            best = float("inf")
            for _ in range(cell_repeats):
                reports = run_dataset(
                    dataset,
                    mode,
                    batches=batches,
                    windows_per_batch=windows_per_batch,
                )
                tuples += sum(r.tuples for r in reports.values())
                best = min(
                    best, average([r.avg_latency for r in reports.values()])
                )
            latency[(dataset, mode)] = best
    return {"latency": latency, "tuples": tuples}


def _normalized(latency):
    return {
        (dataset, mode): latency[(dataset, mode)] / latency[(dataset, "baseline")]
        for dataset in DATASET_QUERIES
        for mode in METHODS
    }


def report(result):
    norm = _normalized(result["latency"])
    table = Table(
        ["Dataset"] + [METHOD_LABELS[m] for m in METHODS],
        title="Fig. 6 -- latency normalized to the uncompressed baseline "
              "(lower is better)",
    )
    for dataset in DATASET_QUERIES:
        table.add(
            DATASET_LABELS[dataset],
            *(f"{norm[(dataset, mode)]:.2f}" for mode in METHODS),
        )

    summary = Table(["Metric", "Value"], title="Headline numbers")
    reductions = [1 - norm[(d, "adaptive")] for d in DATASET_QUERIES]
    summary.add(
        "CompressStreamDB average latency reduction",
        f"{average(reductions) * 100:.1f}% (paper: 66.0%)",
    )
    for d, paper in zip(DATASET_QUERIES, ("79.2%", "58.0%", "60.8%")):
        summary.add(
            f"{DATASET_LABELS[d]} latency reduction",
            f"{(1 - norm[(d, 'adaptive')]) * 100:.1f}% (paper: {paper})",
        )
    return [table.render(), summary.render()]


def check(result):
    norm = _normalized(result["latency"])
    for dataset in DATASET_QUERIES:
        assert norm[(dataset, "adaptive")] < 0.85, (
            f"adaptive latency must be clearly below baseline on {dataset}"
        )
        best_static = min(
            norm[(dataset, m)] for m in METHODS if m not in ("baseline", "adaptive")
        )
        # adaptive must be at or near the front; the slack absorbs the
        # spread between near-tied methods (BD vs adaptive on Linear Road),
        # which shifts by tens of percent across CPU generations
        assert norm[(dataset, "adaptive")] < 1.35 * best_static, (
            f"{dataset}: adaptive {norm[(dataset, 'adaptive')]:.2f} vs "
            f"best static {best_static:.2f}"
        )


def metrics(result):
    norm = _normalized(result["latency"])
    out = {
        f"latency_reduction_{d}": Metric(1 - norm[(d, "adaptive")], better="higher")
        for d in DATASET_QUERIES
    }
    out["latency_reduction_avg"] = Metric(
        average([1 - norm[(d, "adaptive")] for d in DATASET_QUERIES]),
        better="higher",
    )
    return out


SPEC = register(
    name="fig6_latency",
    suite="paper",
    fn=collect,
    params={"batches": 3, "windows_per_batch": 20, "cell_repeats": 3},
    quick_params={"batches": 1, "windows_per_batch": 4, "cell_repeats": 1},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["tuples"],
    tolerance=0.3,
)


def bench_fig6_latency(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
