"""Fig. 6 — per-batch latency of ten processing methods on three datasets.

Paper shape: CompressStreamDB has the lowest latency everywhere (-66 %
average; -79.2 % Smart Grid, -58.0 % LRB, -60.8 % Cluster).
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Table,
    average,
    emit,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect():
    latency = {}
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            reports = run_dataset(dataset, mode)
            latency[(dataset, mode)] = average(
                [r.avg_latency for r in reports.values()]
            )
    return latency


def report(latency):
    table = Table(
        ["Dataset"] + [METHOD_LABELS[m] for m in METHODS],
        title="Fig. 6 -- latency normalized to the uncompressed baseline "
              "(lower is better)",
    )
    norm = {}
    for dataset in DATASET_QUERIES:
        base = latency[(dataset, "baseline")]
        row = [DATASET_LABELS[dataset]]
        for mode in METHODS:
            ratio = latency[(dataset, mode)] / base
            norm[(dataset, mode)] = ratio
            row.append(f"{ratio:.2f}")
        table.add(*row)

    summary = Table(["Metric", "Value"], title="Headline numbers")
    reductions = [1 - norm[(d, "adaptive")] for d in DATASET_QUERIES]
    summary.add(
        "CompressStreamDB average latency reduction",
        f"{average(reductions) * 100:.1f}% (paper: 66.0%)",
    )
    for d, paper in zip(DATASET_QUERIES, ("79.2%", "58.0%", "60.8%")):
        summary.add(
            f"{DATASET_LABELS[d]} latency reduction",
            f"{(1 - norm[(d, 'adaptive')]) * 100:.1f}% (paper: {paper})",
        )
    emit("fig6_latency", table.render(), summary.render())
    return norm


def check(norm):
    for dataset in DATASET_QUERIES:
        assert norm[(dataset, "adaptive")] < 0.85, (
            f"adaptive latency must be clearly below baseline on {dataset}"
        )
        best_static = min(
            norm[(dataset, m)] for m in METHODS if m not in ("baseline", "adaptive")
        )
        # adaptive must be at or near the front; 25% slack absorbs CPU
        # jitter between near-tied methods at the default bench scale
        assert norm[(dataset, "adaptive")] < 1.25 * best_static


def bench_fig6_latency(benchmark):
    latency = benchmark.pedantic(collect, rounds=1, iterations=1)
    check(report(latency))


if __name__ == "__main__":
    check(report(collect()))
