"""Fig. 10 — effect of batch size on latency and space usage.

Paper shape: (a) on a constrained link (100 Mbps) latency grows with batch
size, while at 1 Gbps and in single-node mode batch size barely moves
latency; (b) space occupancy (1/r) shrinks as batches grow (more redundancy
to exploit); (c) varying the window slide in {1, 128, 256, 512, 1024}
changes per-tuple performance by only a few percent thanks to the batch
buffer.
"""

from common import Table, emit
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid

BATCH_SIZES = (2048, 8192, 32768, 131072)
NETWORKS = {"100Mbps": 100.0, "1Gbps": 1000.0, "single-node": None}
SLIDES = (1, 128, 256, 512, 1024)


def _engine(mbps, slide=1024):
    q1 = QUERIES["q1"]
    return CompressStreamDB(
        q1.catalog,
        q1.text(slide=slide),
        EngineConfig(
            mode="adaptive",
            bandwidth_mbps=mbps,
            calibration=default_calibration(),
        ),
    )


def collect_batch_sweep():
    results = {}
    for label, mbps in NETWORKS.items():
        for batch_size in BATCH_SIZES:
            total_tuples = BATCH_SIZES[-1]  # same volume at every size
            batches = max(total_tuples // batch_size, 1)
            report = _engine(mbps).run(
                smart_grid.source(batch_size=batch_size, batches=batches)
            )
            results[(label, batch_size)] = {
                "latency": report.avg_latency,
                "space": 1.0 / report.compression_ratio,
            }
    return results


def collect_slide_sweep():
    """Per-tuple processing time across slides (fixed window 1024)."""
    results = {}
    for slide in SLIDES:
        report = _engine(1000.0, slide=slide).run(
            smart_grid.source(batch_size=1024 * 8, batches=3)
        )
        results[slide] = report.total_seconds / report.tuples
    return results


def report(batch_results, slide_results):
    latency = Table(
        ["Batch size"] + list(NETWORKS),
        title="Fig. 10a -- latency per batch (ms) by batch size and network",
    )
    for batch_size in BATCH_SIZES:
        latency.add(
            batch_size,
            *(
                f"{batch_results[(label, batch_size)]['latency'] * 1e3:.2f}"
                for label in NETWORKS
            ),
        )
    space = Table(
        ["Batch size", "space usage 1/r"],
        title="Fig. 10b -- space occupancy shrinks with batch size",
    )
    for batch_size in BATCH_SIZES:
        space.add(batch_size, f"{batch_results[('1Gbps', batch_size)]['space']:.3f}")

    slides = Table(
        ["Slide", "ns per tuple", "vs slide=1024"],
        title="Fig. 10c -- window slide effect (batch buffer absorbs cross-"
              "window state; slide=1 pays Python output-assembly for 1024x "
              "more result rows, a substrate artifact — see EXPERIMENTS.md)",
    )
    ref = slide_results[1024]
    for slide in SLIDES:
        delta = (slide_results[slide] / ref - 1) * 100
        slides.add(slide, f"{slide_results[slide] * 1e9:.1f}", f"{delta:+.1f}%")
    emit("fig10_batch_size", latency.render(), space.render(), slides.render())


def check(batch_results, slide_results):
    # (a) constrained link: bigger batches -> higher per-batch latency,
    # and the latency *slope* (ms per added tuple) is far steeper at
    # 100 Mbps than at 1 Gbps or on a single node, as in the paper's curves
    def slope(label):
        lo = batch_results[(label, BATCH_SIZES[0])]["latency"]
        hi = batch_results[(label, BATCH_SIZES[-1])]["latency"]
        return (hi - lo) / (BATCH_SIZES[-1] - BATCH_SIZES[0])

    assert (
        batch_results[("100Mbps", BATCH_SIZES[-1])]["latency"]
        > batch_results[("100Mbps", BATCH_SIZES[0])]["latency"]
    )
    assert slope("100Mbps") > 1.5 * slope("1Gbps")
    assert slope("100Mbps") > 2 * slope("single-node")
    # (c) slides of 128+ perform within ~40% of tumbling (CPU-noise slack);
    # slide=1 output volume is a Python-substrate artifact, not a
    # buffering cost
    for slide in (128, 256, 512):
        assert slide_results[slide] / slide_results[1024] < 1.4
    # (b) space usage decreases with batch size
    assert (
        batch_results[("1Gbps", BATCH_SIZES[-1])]["space"]
        < batch_results[("1Gbps", BATCH_SIZES[0])]["space"]
    )


def bench_fig10_batch_size(benchmark):
    batch_results = benchmark.pedantic(collect_batch_sweep, rounds=1, iterations=1)
    slide_results = collect_slide_sweep()
    report(batch_results, slide_results)
    check(batch_results, slide_results)


if __name__ == "__main__":
    b = collect_batch_sweep()
    s = collect_slide_sweep()
    report(b, s)
    check(b, s)
