"""Fig. 10 — effect of batch size on latency and space usage.

Paper shape: (a) on a constrained link (100 Mbps) latency grows with batch
size, while at 1 Gbps and in single-node mode batch size barely moves
latency; (b) space occupancy (1/r) shrinks as batches grow (more redundancy
to exploit); (c) varying the window slide in {1, 128, 256, 512, 1024}
changes per-tuple performance by only a few percent thanks to the batch
buffer.
"""

from common import Table, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid

NETWORKS = {"100Mbps": 100.0, "1Gbps": 1000.0, "single-node": None}


def _engine(mbps, slide=1024):
    q1 = QUERIES["q1"]
    return CompressStreamDB(
        q1.catalog,
        q1.text(slide=slide),
        EngineConfig(
            mode="adaptive",
            bandwidth_mbps=mbps,
            calibration=default_calibration(),
        ),
    )


def collect(
    batch_sizes=(2048, 8192, 32768, 131072),
    slides=(1, 128, 256, 512, 1024),
    slide_batches=3,
):
    batch_sizes = tuple(batch_sizes)
    slides = tuple(slides)

    batch_results = {}
    for label, mbps in NETWORKS.items():
        for batch_size in batch_sizes:
            total_tuples = batch_sizes[-1]  # same volume at every size
            batches = max(total_tuples // batch_size, 1)
            report = _engine(mbps).run(
                smart_grid.source(batch_size=batch_size, batches=batches)
            )
            batch_results[(label, batch_size)] = {
                "latency": report.avg_latency,
                "space": 1.0 / report.compression_ratio,
            }

    # per-tuple processing time across slides (fixed window 1024)
    slide_results = {}
    for slide in slides:
        report = _engine(1000.0, slide=slide).run(
            smart_grid.source(batch_size=1024 * 8, batches=slide_batches)
        )
        slide_results[slide] = report.total_seconds / report.tuples

    return {
        "batch": batch_results,
        "slide": slide_results,
        "batch_sizes": batch_sizes,
        "slides": slides,
    }


def report(result):
    batch_results, slide_results = result["batch"], result["slide"]
    batch_sizes, slides_swept = result["batch_sizes"], result["slides"]
    latency = Table(
        ["Batch size"] + list(NETWORKS),
        title="Fig. 10a -- latency per batch (ms) by batch size and network",
    )
    for batch_size in batch_sizes:
        latency.add(
            batch_size,
            *(
                f"{batch_results[(label, batch_size)]['latency'] * 1e3:.2f}"
                for label in NETWORKS
            ),
        )
    space = Table(
        ["Batch size", "space usage 1/r"],
        title="Fig. 10b -- space occupancy shrinks with batch size",
    )
    for batch_size in batch_sizes:
        space.add(batch_size, f"{batch_results[('1Gbps', batch_size)]['space']:.3f}")

    slides = Table(
        ["Slide", "ns per tuple", "vs slide=1024"],
        title="Fig. 10c -- window slide effect (batch buffer absorbs cross-"
              "window state; slide=1 pays Python output-assembly for 1024x "
              "more result rows, a substrate artifact — see EXPERIMENTS.md)",
    )
    ref = slide_results[slides_swept[-1]]
    for slide in slides_swept:
        delta = (slide_results[slide] / ref - 1) * 100
        slides.add(slide, f"{slide_results[slide] * 1e9:.1f}", f"{delta:+.1f}%")
    return [latency.render(), space.render(), slides.render()]


def check(result):
    batch_results, slide_results = result["batch"], result["slide"]
    batch_sizes = result["batch_sizes"]

    # (a) constrained link: bigger batches -> higher per-batch latency,
    # and the latency *slope* (ms per added tuple) is far steeper at
    # 100 Mbps than at 1 Gbps or on a single node, as in the paper's curves
    def slope(label):
        lo = batch_results[(label, batch_sizes[0])]["latency"]
        hi = batch_results[(label, batch_sizes[-1])]["latency"]
        return (hi - lo) / (batch_sizes[-1] - batch_sizes[0])

    assert (
        batch_results[("100Mbps", batch_sizes[-1])]["latency"]
        > batch_results[("100Mbps", batch_sizes[0])]["latency"]
    )
    assert slope("100Mbps") > 1.5 * slope("1Gbps")
    assert slope("100Mbps") > 2 * slope("single-node")
    # (c) slides of 128+ perform within ~40% of tumbling (CPU-noise slack);
    # slide=1 output volume is a Python-substrate artifact, not a
    # buffering cost
    for slide in (128, 256, 512):
        assert slide_results[slide] / slide_results[1024] < 1.4
    # (b) space usage decreases with batch size
    assert (
        batch_results[("1Gbps", batch_sizes[-1])]["space"]
        < batch_results[("1Gbps", batch_sizes[0])]["space"]
    )


def metrics(result):
    batch_results = result["batch"]
    batch_sizes = result["batch_sizes"]
    # informational: curve endpoints characterizing the sweep
    latency_s = batch_results[("100Mbps", batch_sizes[-1])]["latency"]
    return {
        "space_usage_largest_batch": batch_results[("1Gbps", batch_sizes[-1])]["space"],
        "latency_ms_100mbps_largest": latency_s * 1e3,
    }


SPEC = register(
    name="fig10_batch_size",
    suite="paper",
    fn=collect,
    params={
        "batch_sizes": [2048, 8192, 32768, 131072],
        "slides": [1, 128, 256, 512, 1024],
        "slide_batches": 3,
    },
    quick_params={
        "batch_sizes": [2048, 8192],
        "slides": [128, 1024],
        "slide_batches": 1,
    },
    report=report,
    check=check,
    metrics=metrics,
    tolerance=0.35,
)


def bench_fig10_batch_size(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
