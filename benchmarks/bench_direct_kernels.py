"""Direct-on-compressed operator kernels vs decompress-then-process.

Times the structural serving paths added for β = 1 codecs — RLE
filter/aggregate at run granularity, Bitmap/PLWAH equality predicates on
a single unpacked plane — against decompressing the column first and
running the same operator on expanded values.  The check locks in >= 3x
on every path.
"""

import time

import numpy as np

from common import Metric, Table, register
from repro.compression import get_codec
from repro.operators.aggregation import window_aggregate
from repro.operators.base import ExecColumn, decoded_column
from repro.operators.selection import compare_to_literal


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def collect(n=400_000, run_length=50, kindnum=64, repeats=3):
    rng = np.random.default_rng(11)
    runs_col = np.repeat(
        rng.integers(0, 40, max(n // run_length, 1)).astype(np.int64), run_length
    )[:n]
    cat_col = rng.integers(0, kindnum, n).astype(np.int64)
    windows = [(s, s + 4096) for s in range(0, n - 4096, 2048)]

    rle = get_codec("rle")
    rle_cc = rle.compress(runs_col)

    def rle_direct():
        col = ExecColumn("v", runs=rle.run_view(rle_cc))
        compare_to_literal(col, ">=", 20)
        window_aggregate(col, windows, "sum")
        window_aggregate(col, windows, "max")

    def rle_decode():
        col = decoded_column("v", rle.decompress(rle_cc))
        compare_to_literal(col, ">=", 20)
        window_aggregate(col, windows, "sum")
        window_aggregate(col, windows, "max")

    rows = {
        "rle_filter_agg": {
            "tuples": n,
            "direct_s": _best_of(rle_direct, repeats),
            "decode_s": _best_of(rle_decode, repeats),
        }
    }

    for codec_name in ("bitmap", "plwah"):
        codec = get_codec(codec_name)
        cc = codec.compress(cat_col)

        def plane_direct(codec=codec, cc=cc):
            col = ExecColumn("k", planes=codec.plane_view(cc))
            compare_to_literal(col, "==", 7)

        def plane_decode(codec=codec, cc=cc):
            col = decoded_column("k", codec.decompress(cc))
            compare_to_literal(col, "==", 7)

        rows[f"{codec_name}_plane_filter"] = {
            "tuples": n,
            "direct_s": _best_of(plane_direct, repeats),
            "decode_s": _best_of(plane_decode, repeats),
        }

    for row in rows.values():
        row["speedup"] = row["decode_s"] / row["direct_s"]
    return rows


def report(rows):
    table = Table(
        ["path", "decode tuples/s", "direct tuples/s", "speedup"],
        title="Direct-on-compressed kernels vs decompress-then-process",
    )
    for name, row in rows.items():
        table.add(
            name,
            f"{row['tuples'] / row['decode_s']:,.0f}",
            f"{row['tuples'] / row['direct_s']:,.0f}",
            f"{row['speedup']:.1f}x",
        )
    note = (
        "direct = run-granularity filter/aggregate (RLE) and single-plane "
        "equality masks (Bitmap/PLWAH); decode = decompress the column, "
        "then run the identical operator on expanded values."
    )
    return [table.render(), note]


#: every structural path must beat decompress-then-process by this much
FLOOR = 3.0


def check(rows):
    for name, row in rows.items():
        assert row["speedup"] >= FLOOR, (name, row["speedup"])


def metrics(rows):
    # raw speedups are informational (they swing with machine and
    # problem size, e.g. the bitmap path ranges hundreds-x); the gated
    # metric clamps each speedup at the floor, so it is exactly FLOOR on
    # any healthy build and collapses only on a real regression
    out = {}
    for name, row in rows.items():
        out[f"{name}_tuples_per_s"] = Metric(
            row["tuples"] / row["direct_s"], better=None
        )
        out[f"{name}_speedup"] = Metric(row["speedup"], better=None)
        out[f"{name}_speedup_gate"] = Metric(
            min(row["speedup"], FLOOR), better="higher"
        )
    return out


SPEC = register(
    name="direct_kernels",
    suite="kernels",
    fn=collect,
    params={"n": 400_000, "run_length": 50, "kindnum": 64, "repeats": 3},
    quick_params={"n": 80_000, "repeats": 2},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda rows: sum(r["tuples"] for r in rows.values()),
    tolerance=0.2,
)


def bench_direct_kernels(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
