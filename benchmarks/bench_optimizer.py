"""Optimizer — pushdown + run fusion beat the naive plan on a filtered agg.

Shape: a Q2-style filter-heavy query (a windowed ``avg(value)`` over the
smart-grid schema with a selective single-column WHERE, no group-by) runs
under ``static:rle`` on a stream whose ``value`` column arrives in long
appliance-state runs.  The optimizer must fire predicate pushdown and
filter+aggregate fusion on this plan; the fused executor then evaluates
the predicate once per run instead of once per row and keeps the
surviving column in run form for the affine aggregate.  The gated metric
is the query-stage speedup of the optimized plan over the same engine
with ``optimize=False`` — the escape hatch makes the comparison exact:
identical codecs, identical bytes on the wire, identical answers, only
the plan differs.

Wall-clock noise can only depress a leg's best-of-N time, never inflate
it, so best-of-``cell_repeats`` per leg is the robust estimator (same
policy as bench_fig5_throughput).
"""

import numpy as np
from common import Metric, Table, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import smart_grid
from repro.stream.source import GeneratorSource

#: appliance-state run length of the synthetic trace (plugs hold a power
#: state for ~a minute of readings); well above the fusion rule's
#: run-length floor, and what makes RLE the right pinned codec here
RUN_LENGTH = 64

#: Q2-style filter-heavy shape: windowed aggregate over the filtered
#: column itself, no grouping — exactly the fusion rule's target
SQL = (
    "select avg(value) as avgLoad from SmartGridStr "
    "[range 1024 slide 1024] where value < 3.0"
)

REQUIRED_RULES = ("pushdown", "fusion")


def _generate(n, seed):
    """Smart-grid readings with ``value`` arriving in long state runs."""
    rng = np.random.default_rng(seed)
    n_runs = n // RUN_LENGTH + 1
    # draw from the standby + low-electronics states so the `< 3.0` WHERE
    # is selective (~1/8 of runs survive) but never degenerate-empty
    states = smart_grid._POWER_STATES[rng.integers(0, 24, size=n_runs)]
    cols = smart_grid.generate(n, seed=seed)
    cols["value"] = np.repeat(states, RUN_LENGTH)[:n]
    return cols


def _source(batch_size, batches, seed=3):
    return GeneratorSource(
        smart_grid.SCHEMA,
        lambda index: _generate(batch_size, seed + index),
        limit=batches,
    )


def _engine(optimize):
    return CompressStreamDB(
        {"SmartGridStr": smart_grid.SCHEMA},
        SQL,
        EngineConfig(
            mode="static:rle",
            bandwidth_mbps=500,
            calibration=default_calibration(),
            optimize=optimize,
        ),
    )


def collect(batches=4, windows_per_batch=20, cell_repeats=3):
    batch_size = 1024 * windows_per_batch
    legs = {}
    tuples = 0
    for optimize in (False, True):
        best = None
        for _ in range(cell_repeats):
            engine = _engine(optimize)
            rep = engine.run(
                _source(batch_size, batches), collect_outputs=True
            )
            tuples += rep.tuples
            query_s = rep.stage_seconds()["query"]
            if best is None or query_s < best[0]:
                best = (query_s, rep, getattr(engine._base_plan, "opt", None))
        legs[optimize] = best
    return {"legs": legs, "tuples": tuples}


def report(result):
    (naive_s, naive_rep, _) = result["legs"][False]
    (opt_s, opt_rep, info) = result["legs"][True]
    table = Table(
        ["Plan", "query ms/batch", "throughput tup/s", "rules fired"],
        title="Optimizer -- fused filtered aggregate vs the naive plan "
              "(static:rle, runny smart-grid values)",
    )
    batches = naive_rep.profiler.batches
    table.add(
        "naive (optimize=False)",
        f"{naive_s / batches * 1e3:.3f}",
        f"{naive_rep.throughput:,.0f}",
        "-",
    )
    table.add(
        "optimized",
        f"{opt_s / batches * 1e3:.3f}",
        f"{opt_rep.throughput:,.0f}",
        ", ".join(info.rules_fired) if info else "-",
    )
    return [
        table.render(),
        f"query-stage speedup {naive_s / opt_s:.2f}x "
        f"(estimated cost {info.estimated_cost:,.0f} vs baseline "
        f"{info.baseline_cost:,.0f})" if info else "no optimizer info",
    ]


def check(result):
    (naive_s, naive_rep, _) = result["legs"][False]
    (opt_s, opt_rep, info) = result["legs"][True]
    # the plan must actually have been rewritten by the gated rules
    assert info is not None and not info.fallback, info
    for rule in REQUIRED_RULES:
        assert rule in info.rules_fired, (rule, info.rules_fired)
    # cost model agrees the rewrite wins ...
    assert info.estimated_cost < info.baseline_cost, info
    # ... and the wire + answers are untouched: same bytes, same results
    assert naive_rep.profiler.bytes_sent == opt_rep.profiler.bytes_sent
    a, b = naive_rep.outputs, opt_rep.outputs
    assert a is not None and b is not None
    assert a.n_rows == b.n_rows and sorted(a.columns) == sorted(b.columns)
    for name in a.columns:
        assert np.allclose(a.columns[name], b.columns[name]), name
    # the tentpole gate: pushdown + fusion beat the unoptimized plan
    assert opt_s < naive_s, (opt_s, naive_s)


def metrics(result):
    (naive_s, _, _) = result["legs"][False]
    (opt_s, opt_rep, _) = result["legs"][True]
    return {
        "opt_query_speedup": Metric(naive_s / opt_s, better="higher"),
        # informational scale marker
        "opt_throughput": float(opt_rep.throughput),
    }


SPEC = register(
    name="optimizer_pushdown_fusion",
    suite="optimizer",
    fn=collect,
    params={"batches": 4, "windows_per_batch": 20, "cell_repeats": 3},
    quick_params={"batches": 2, "windows_per_batch": 8, "cell_repeats": 2},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["tuples"],
    tolerance=0.5,
)


def bench_optimizer(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
