"""Fig. 8 — compression / decompression time breakdown per method.

Paper shape: NS has the lowest compress+decompress total; EG/ED are the
slowest eager coders; NSV's cost is dominated by decompression (descriptor
translation); decompression of every lightweight method is a small
fraction of total time; CompressStreamDB sits in the middle — it optimizes
the whole pipeline, not the compression stage.
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Table,
    average,
    register,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect(batches=3, windows_per_batch=20):
    rows = {}
    tuples = 0
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            reports = run_dataset(
                dataset, mode, batches=batches, windows_per_batch=windows_per_batch
            )
            tuples += sum(r.tuples for r in reports.values())
            rows[(dataset, mode)] = {
                "compress": average(
                    [
                        r.stage_seconds()["compress"] / r.profiler.batches
                        for r in reports.values()
                    ]
                ),
                "decompress": average(
                    [
                        r.stage_seconds()["decompress"] / r.profiler.batches
                        for r in reports.values()
                    ]
                ),
                "total": average(
                    [r.total_seconds / r.profiler.batches for r in reports.values()]
                ),
            }
    return {"rows": rows, "tuples": tuples}


def report(result):
    rows = result["rows"]
    blocks = []
    for dataset in DATASET_QUERIES:
        table = Table(
            ["Method", "compress ms/batch", "decompress ms/batch", "of total"],
            title=f"Fig. 8 -- (de)compression time, {DATASET_LABELS[dataset]}",
        )
        for mode in METHODS:
            r = rows[(dataset, mode)]
            share = (r["compress"] + r["decompress"]) / r["total"]
            table.add(
                METHOD_LABELS[mode],
                f"{r['compress'] * 1e3:.3f}",
                f"{r['decompress'] * 1e3:.3f}",
                f"{share * 100:.1f}%",
            )
        blocks.append(table.render())
    return blocks


def check(result):
    rows = result["rows"]
    for dataset in DATASET_QUERIES:
        ns = rows[(dataset, "static:ns")]
        nsv = rows[(dataset, "static:nsv")]
        # NSV pays for decompression; NS decompresses nothing
        assert ns["decompress"] == 0.0
        assert nsv["decompress"] > 0.0
        # decompression of direct methods is zero; of lightweight β = 1
        # methods it stays a minor share of the total
        assert nsv["decompress"] / nsv["total"] < 0.5


def metrics(result):
    rows = result["rows"]
    nsv = rows[("smart_grid", "static:nsv")]
    # informational: stage shares characterize the substrate, not quality
    return {
        "nsv_decompress_share_smart_grid": nsv["decompress"] / nsv["total"],
    }


SPEC = register(
    name="fig8_comp_decomp",
    suite="paper",
    fn=collect,
    params={"batches": 3, "windows_per_batch": 20},
    quick_params={"batches": 1, "windows_per_batch": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["tuples"],
    tolerance=0.3,
)


def bench_fig8_comp_decomp(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
