"""Fig. 8 — compression / decompression time breakdown per method.

Paper shape: NS has the lowest compress+decompress total; EG/ED are the
slowest eager coders; NSV's cost is dominated by decompression (descriptor
translation); decompression of every lightweight method is a small
fraction of total time; CompressStreamDB sits in the middle — it optimizes
the whole pipeline, not the compression stage.
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Table,
    average,
    emit,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect():
    rows = {}
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            reports = run_dataset(dataset, mode)
            rows[(dataset, mode)] = {
                "compress": average(
                    [r.stage_seconds()["compress"] / r.profiler.batches for r in reports.values()]
                ),
                "decompress": average(
                    [r.stage_seconds()["decompress"] / r.profiler.batches for r in reports.values()]
                ),
                "total": average(
                    [r.total_seconds / r.profiler.batches for r in reports.values()]
                ),
            }
    return rows


def report(rows):
    blocks = []
    for dataset in DATASET_QUERIES:
        table = Table(
            ["Method", "compress ms/batch", "decompress ms/batch", "of total"],
            title=f"Fig. 8 -- (de)compression time, {DATASET_LABELS[dataset]}",
        )
        for mode in METHODS:
            r = rows[(dataset, mode)]
            share = (r["compress"] + r["decompress"]) / r["total"]
            table.add(
                METHOD_LABELS[mode],
                f"{r['compress'] * 1e3:.3f}",
                f"{r['decompress'] * 1e3:.3f}",
                f"{share * 100:.1f}%",
            )
        blocks.append(table.render())
    emit("fig8_comp_decomp", *blocks)


def check(rows):
    for dataset in DATASET_QUERIES:
        ns = rows[(dataset, "static:ns")]
        nsv = rows[(dataset, "static:nsv")]
        # NSV pays for decompression; NS decompresses nothing
        assert ns["decompress"] == 0.0
        assert nsv["decompress"] > 0.0
        # decompression of direct methods is zero; of lightweight β = 1
        # methods it stays a minor share of the total
        assert nsv["decompress"] / nsv["total"] < 0.5


def bench_fig8_comp_decomp(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(rows)
    check(rows)


if __name__ == "__main__":
    r = collect()
    report(r)
    check(r)
