"""Sec. II-B motivation — heavyweight compression does not fit streams.

Paper claims: (1) with Gzip, compression takes ~90.5 % of total stream
processing time while transmission drops below 10 %; (2) for methods that
must decompress before querying, decompression overhead relative to query
execution ranges from 2.09x to 31.37x for heavyweight schemes, while the
lightweight methods' decompression stays a negligible share (<1 % of total
in Fig. 8).
"""

from common import Table, register, run_query


def collect(batches=3, windows_per_batch=20):
    return {
        mode: run_query(
            "q1",
            f"static:{mode}",
            bandwidth_mbps=500,
            batches=batches,
            windows_per_batch=windows_per_batch,
        )
        for mode in ("gzip", "ns", "nsv")
    }


def report(reports):
    table = Table(
        [
            "Method",
            "compress %",
            "trans %",
            "decompress %",
            "query %",
            "decompress/query",
        ],
        title="Sec. II-B -- heavyweight vs lightweight compression "
              "(Smart Grid, Q1, 500 Mbps)",
    )
    for name, rep in reports.items():
        b = rep.breakdown()
        s = rep.stage_seconds()
        ratio = s["decompress"] / s["query"] if s["query"] else 0.0
        table.add(
            name.upper(),
            f"{b['compress'] * 100:.1f}%",
            f"{b['trans'] * 100:.1f}%",
            f"{b['decompress'] * 100:.1f}%",
            f"{b['query'] * 100:.1f}%",
            f"{ratio:.2f}x",
        )
    note = (
        "Paper: Gzip spends 90.5% of total time compressing; heavyweight "
        "decompression costs 2.09x-31.37x the query time. Lightweight NS "
        "needs no decompression at all; NSV decompression stays a minor "
        "share of the total."
    )
    return [table.render(), note]


def check(reports):
    gzip_b = reports["gzip"].breakdown()
    ns_b = reports["ns"].breakdown()
    # gzip: compression dominates and dwarfs its transmission share
    assert gzip_b["compress"] > 0.5
    assert gzip_b["compress"] > 4 * gzip_b["trans"]
    # lightweight NS spends almost nothing compressing
    assert ns_b["compress"] < 0.35
    # gzip decompression is expensive relative to the query
    s = reports["gzip"].stage_seconds()
    assert s["decompress"] / s["query"] > 0.2


def metrics(reports):
    # informational: substrate stage shares
    return {
        "gzip_compress_share": reports["gzip"].breakdown()["compress"],
        "ns_compress_share": reports["ns"].breakdown()["compress"],
    }


SPEC = register(
    name="motivation_gzip",
    suite="paper",
    fn=collect,
    params={"batches": 3, "windows_per_batch": 20},
    quick_params={"batches": 1, "windows_per_batch": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda reports: sum(r.tuples for r in reports.values()),
    tolerance=0.3,
)


def bench_motivation_gzip(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
