"""Sec. II-B motivation — heavyweight compression does not fit streams.

Paper claims: (1) with Gzip, compression takes ~90.5 % of total stream
processing time while transmission drops below 10 %; (2) for methods that
must decompress before querying, decompression overhead relative to query
execution ranges from 2.09x to 31.37x for heavyweight schemes, while the
lightweight methods' decompression stays a negligible share (<1 % of total
in Fig. 8).
"""

from common import Table, emit, run_query


def collect():
    gzip = run_query("q1", "static:gzip", bandwidth_mbps=500)
    ns = run_query("q1", "static:ns", bandwidth_mbps=500)
    nsv = run_query("q1", "static:nsv", bandwidth_mbps=500)
    return {"gzip": gzip, "ns": ns, "nsv": nsv}


def report(reports):
    table = Table(
        ["Method", "compress %", "trans %", "decompress %", "query %",
         "decompress/query"],
        title="Sec. II-B -- heavyweight vs lightweight compression "
              "(Smart Grid, Q1, 500 Mbps)",
    )
    for name, rep in reports.items():
        b = rep.breakdown()
        s = rep.stage_seconds()
        ratio = s["decompress"] / s["query"] if s["query"] else 0.0
        table.add(
            name.upper(),
            f"{b['compress'] * 100:.1f}%",
            f"{b['trans'] * 100:.1f}%",
            f"{b['decompress'] * 100:.1f}%",
            f"{b['query'] * 100:.1f}%",
            f"{ratio:.2f}x",
        )
    note = (
        "Paper: Gzip spends 90.5% of total time compressing; heavyweight "
        "decompression costs 2.09x-31.37x the query time. Lightweight NS "
        "needs no decompression at all; NSV decompression stays a minor "
        "share of the total."
    )
    emit("motivation_gzip", table.render(), note)


def check(reports):
    gzip_b = reports["gzip"].breakdown()
    ns_b = reports["ns"].breakdown()
    # gzip: compression dominates and dwarfs its transmission share
    assert gzip_b["compress"] > 0.5
    assert gzip_b["compress"] > 4 * gzip_b["trans"]
    # lightweight NS spends almost nothing compressing
    assert ns_b["compress"] < 0.35
    # gzip decompression is expensive relative to the query
    s = reports["gzip"].stage_seconds()
    assert s["decompress"] / s["query"] > 0.2


def bench_motivation_gzip(benchmark):
    reports = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(reports)
    check(reports)


if __name__ == "__main__":
    r = collect()
    report(r)
    check(r)
