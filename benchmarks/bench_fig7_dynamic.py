"""Fig. 7 — dynamic workload: adaptive vs the best static method.

Paper shape: on a workload whose data properties shift between regimes,
CompressStreamDB beats the *optimal* static compressed method at every
bandwidth, with the largest margin on constrained links (paper: 9.68x over
baseline and 3.97x over static at 100 Mbps).
"""

from common import Metric, Table, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid

BANDWIDTHS = (10, 100, 500, 1000)
STATIC_CANDIDATES = ("static:bd", "static:ns", "static:dict", "static:rle")


def _run(mode, mbps, batches, batches_per_phase, windows_per_batch):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=mbps,
            calibration=default_calibration(),
            redecide_every=batches_per_phase,  # re-decide at phase cadence
            lookahead=3,
        ),
    )
    workload = smart_grid.dynamic_workload(
        batch_size=q1.window * windows_per_batch,
        batches=batches,
        batches_per_phase=batches_per_phase,
    )
    return engine.run(workload)


def collect(batches=18, batches_per_phase=6, windows_per_batch=4):
    results = {}
    for mbps in BANDWIDTHS:
        def throughput(mode):
            return _run(
                mode, mbps, batches, batches_per_phase, windows_per_batch
            ).throughput

        base = throughput("baseline")
        static_best = max((throughput(mode), mode) for mode in STATIC_CANDIDATES)
        results[mbps] = {
            "baseline": base,
            "static": static_best[0],
            "static_mode": static_best[1],
            "adaptive": throughput("adaptive"),
        }
    return results


def report(results):
    table = Table(
        [
            "Bandwidth",
            "Static (best) vs baseline",
            "CompressStreamDB vs baseline",
            "CmpStr vs static",
        ],
        title="Fig. 7 -- speedup on the phase-shifting smart-grid workload",
    )
    for mbps in sorted(results):
        r = results[mbps]
        table.add(
            f"{mbps} Mbps",
            f"{r['static'] / r['baseline']:.2f}x ({r['static_mode']})",
            f"{r['adaptive'] / r['baseline']:.2f}x",
            f"{r['adaptive'] / r['static']:.2f}x",
        )
    note = (
        "Paper: highest margin at 100 Mbps (9.68x over baseline, 3.97x over "
        "static); static cannot follow regime changes, adaptive re-decides "
        "per phase."
    )
    return [table.render(), note]


def check(results):
    for mbps in (10, 100):
        r = results[mbps]
        assert r["adaptive"] > r["static"], (
            f"adaptive must beat the best static method at {mbps} Mbps"
        )
        assert r["adaptive"] > r["baseline"]
    margins = [results[m]["adaptive"] / results[m]["static"] for m in BANDWIDTHS]
    # the advantage must be larger on constrained links than at 1 Gbps
    assert max(margins[:2]) >= margins[-1] * 0.95


def metrics(results):
    r100 = results[100]
    return {
        "speedup_adaptive_100mbps": Metric(
            r100["adaptive"] / r100["baseline"], better="higher"
        ),
        "margin_vs_static_100mbps": Metric(
            r100["adaptive"] / r100["static"], better="higher"
        ),
    }


SPEC = register(
    name="fig7_dynamic",
    suite="paper",
    fn=collect,
    params={"batches": 18, "batches_per_phase": 6, "windows_per_batch": 4},
    quick_params={"batches": 6, "batches_per_phase": 2, "windows_per_batch": 2},
    report=report,
    check=check,
    metrics=metrics,
    tolerance=0.35,
)


def bench_fig7_dynamic(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
