"""Fig. 7 — dynamic workload: adaptive vs the best static method.

Paper shape: on a workload whose data properties shift between regimes,
CompressStreamDB beats the *optimal* static compressed method at every
bandwidth, with the largest margin on constrained links (paper: 9.68x over
baseline and 3.97x over static at 100 Mbps).
"""

from common import Table, emit
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid

BANDWIDTHS = (10, 100, 500, 1000)
STATIC_CANDIDATES = ("static:bd", "static:ns", "static:dict", "static:rle")
BATCHES = 18
BATCHES_PER_PHASE = 6
WINDOWS_PER_BATCH = 4


def _run(mode, mbps):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=mbps,
            calibration=default_calibration(),
            redecide_every=BATCHES_PER_PHASE,  # re-decide at phase cadence
            lookahead=3,
        ),
    )
    workload = smart_grid.dynamic_workload(
        batch_size=q1.window * WINDOWS_PER_BATCH,
        batches=BATCHES,
        batches_per_phase=BATCHES_PER_PHASE,
    )
    return engine.run(workload)


def collect():
    results = {}
    for mbps in BANDWIDTHS:
        base = _run("baseline", mbps).throughput
        static_best = max(
            (_run(mode, mbps).throughput, mode) for mode in STATIC_CANDIDATES
        )
        adaptive = _run("adaptive", mbps).throughput
        results[mbps] = {
            "baseline": base,
            "static": static_best[0],
            "static_mode": static_best[1],
            "adaptive": adaptive,
        }
    return results


def report(results):
    table = Table(
        ["Bandwidth", "Static (best) vs baseline", "CompressStreamDB vs baseline",
         "CmpStr vs static"],
        title="Fig. 7 -- speedup on the phase-shifting smart-grid workload",
    )
    for mbps in BANDWIDTHS:
        r = results[mbps]
        table.add(
            f"{mbps} Mbps",
            f"{r['static'] / r['baseline']:.2f}x ({r['static_mode']})",
            f"{r['adaptive'] / r['baseline']:.2f}x",
            f"{r['adaptive'] / r['static']:.2f}x",
        )
    note = (
        "Paper: highest margin at 100 Mbps (9.68x over baseline, 3.97x over "
        "static); static cannot follow regime changes, adaptive re-decides "
        "per phase."
    )
    emit("fig7_dynamic", table.render(), note)


def check(results):
    for mbps in (10, 100):
        r = results[mbps]
        assert r["adaptive"] > r["static"], (
            f"adaptive must beat the best static method at {mbps} Mbps"
        )
        assert r["adaptive"] > r["baseline"]
    margins = [results[m]["adaptive"] / results[m]["static"] for m in BANDWIDTHS]
    # the advantage must be larger on constrained links than at 1 Gbps
    assert max(margins[:2]) >= margins[-1] * 0.95


def bench_fig7_dynamic(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(results)
    check(results)


if __name__ == "__main__":
    r = collect()
    report(r)
    check(r)
