"""Table IV — relations between time and compression ratio.

For every dataset and method: the transmission-time ratio vs baseline, the
inverse compression ratio 1/r, the query-time ratio vs baseline, and the
inverse query-step ratio 1/r'.  Paper shape: trans_time ratio tracks 1/r
(transmission is byte-proportional), query_time ratio tracks 1/r' (β = 1
methods have r' = 1), CompressStreamDB achieves the lowest trans ratio and
1/r on every dataset, and saves ~66.8 % space on average.
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Metric,
    Table,
    average,
    register,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect(batches=3, windows_per_batch=20):
    cells = {}
    tuples = 0
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            reports = run_dataset(
                dataset, mode, batches=batches, windows_per_batch=windows_per_batch
            )
            tuples += sum(r.tuples for r in reports.values())
            # aggregate TOTALS over the dataset's two queries so the
            # byte-proportionality of transmission holds exactly
            # (averaging per-query ratios would weight them inconsistently)
            sent = sum(r.profiler.bytes_sent for r in reports.values())
            raw = sum(r.profiler.bytes_uncompressed for r in reports.values())
            cells[(dataset, mode)] = {
                "trans": sum(r.stage_seconds()["trans"] for r in reports.values()),
                "query": sum(r.stage_seconds()["query"] for r in reports.values()),
                "inv_r": sent / raw,
                "space_saving": 1.0 - sent / raw,
            }
    return {"cells": cells, "tuples": tuples}


def report(result):
    cells = result["cells"]
    blocks = []
    for dataset in DATASET_QUERIES:
        base = cells[(dataset, "baseline")]
        table = Table(
            ["Ratio"] + [METHOD_LABELS[m] for m in METHODS],
            title=f"Table IV -- {DATASET_LABELS[dataset]}",
        )
        for key, label in (
            ("trans", "trans_time ratio"),
            ("inv_r", "1/r"),
            ("query", "query_time ratio"),
        ):
            row = [label]
            for mode in METHODS:
                value = cells[(dataset, mode)][key]
                if key in ("trans", "query"):
                    value = value / base[key] if base[key] else 0.0
                row.append(f"{value:.3f}")
            table.add(*row)
        blocks.append(table.render())

    adaptive_saving = average(
        [cells[(d, "adaptive")]["space_saving"] for d in DATASET_QUERIES]
    )
    adaptive_trans = average(
        [
            cells[(d, "adaptive")]["trans"] / cells[(d, "baseline")]["trans"]
            for d in DATASET_QUERIES
        ]
    )
    summary = (
        f"CompressStreamDB average space saving: {adaptive_saving * 100:.1f}% "
        f"(paper: 66.8%); average trans_time saving: "
        f"{(1 - adaptive_trans) * 100:.1f}% (paper: 66.7%)"
    )
    blocks.append(summary)
    return blocks


def check(result):
    cells = result["cells"]
    for dataset in DATASET_QUERIES:
        base_trans = cells[(dataset, "baseline")]["trans"]
        for mode in METHODS:
            c = cells[(dataset, mode)]
            trans_ratio = c["trans"] / base_trans
            # trans_time ratio tracks 1/r: byte-accurate channel
            assert abs(trans_ratio - c["inv_r"]) < 0.05 * max(c["inv_r"], 1.0), (
                dataset, mode,
            )
        # CompressStreamDB reaches (or nearly reaches) the best 1/r; the
        # selector optimizes *total time*, so it may trade a few percent of
        # compression ratio for cheaper compression (Sec. VII-C notes it is
        # not the fastest compressor either -- it optimizes the pipeline)
        adaptive_inv_r = cells[(dataset, "adaptive")]["inv_r"]
        best_static = min(
            cells[(dataset, m)]["inv_r"] for m in METHODS if m != "adaptive"
        )
        assert adaptive_inv_r <= best_static * 1.25, dataset
    savings = [cells[(d, "adaptive")]["space_saving"] for d in DATASET_QUERIES]
    assert average(savings) > 0.5, "adaptive must save the majority of bytes"


def metrics(result):
    cells = result["cells"]
    out = {
        f"space_saving_adaptive_{d}": Metric(
            cells[(d, "adaptive")]["space_saving"], better="higher"
        )
        for d in DATASET_QUERIES
    }
    out["space_saving_adaptive_avg"] = Metric(
        average([cells[(d, "adaptive")]["space_saving"] for d in DATASET_QUERIES]),
        better="higher",
    )
    return out


SPEC = register(
    name="table4_ratios",
    suite="paper",
    fn=collect,
    params={"batches": 3, "windows_per_batch": 20},
    quick_params={"batches": 1, "windows_per_batch": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["tuples"],
    tolerance=0.3,
)


def bench_table4_ratios(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
