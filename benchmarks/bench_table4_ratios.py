"""Table IV — relations between time and compression ratio.

For every dataset and method: the transmission-time ratio vs baseline, the
inverse compression ratio 1/r, the query-time ratio vs baseline, and the
inverse query-step ratio 1/r'.  Paper shape: trans_time ratio tracks 1/r
(transmission is byte-proportional), query_time ratio tracks 1/r' (β = 1
methods have r' = 1), CompressStreamDB achieves the lowest trans ratio and
1/r on every dataset, and saves ~66.8 % space on average.
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Table,
    average,
    emit,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect():
    cells = {}
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            reports = run_dataset(dataset, mode)
            # aggregate TOTALS over the dataset's two queries so the
            # byte-proportionality of transmission holds exactly
            # (averaging per-query ratios would weight them inconsistently)
            sent = sum(r.profiler.bytes_sent for r in reports.values())
            raw = sum(r.profiler.bytes_uncompressed for r in reports.values())
            cells[(dataset, mode)] = {
                "trans": sum(r.stage_seconds()["trans"] for r in reports.values()),
                "query": sum(r.stage_seconds()["query"] for r in reports.values()),
                "inv_r": sent / raw,
                "space_saving": 1.0 - sent / raw,
            }
    return cells


def report(cells):
    blocks = []
    for dataset in DATASET_QUERIES:
        base = cells[(dataset, "baseline")]
        table = Table(
            ["Ratio"] + [METHOD_LABELS[m] for m in METHODS],
            title=f"Table IV -- {DATASET_LABELS[dataset]}",
        )
        for key, label in (("trans", "trans_time ratio"), ("inv_r", "1/r"),
                           ("query", "query_time ratio")):
            row = [label]
            for mode in METHODS:
                value = cells[(dataset, mode)][key]
                if key in ("trans", "query"):
                    value = value / base[key] if base[key] else 0.0
                row.append(f"{value:.3f}")
            table.add(*row)
        blocks.append(table.render())

    adaptive_saving = average(
        [cells[(d, "adaptive")]["space_saving"] for d in DATASET_QUERIES]
    )
    adaptive_trans = average(
        [
            cells[(d, "adaptive")]["trans"] / cells[(d, "baseline")]["trans"]
            for d in DATASET_QUERIES
        ]
    )
    summary = (
        f"CompressStreamDB average space saving: {adaptive_saving * 100:.1f}% "
        f"(paper: 66.8%); average trans_time saving: "
        f"{(1 - adaptive_trans) * 100:.1f}% (paper: 66.7%)"
    )
    emit("table4_ratios", *blocks, summary)


def check(cells):
    for dataset in DATASET_QUERIES:
        base_trans = cells[(dataset, "baseline")]["trans"]
        for mode in METHODS:
            c = cells[(dataset, mode)]
            trans_ratio = c["trans"] / base_trans
            # trans_time ratio tracks 1/r: byte-accurate channel
            assert abs(trans_ratio - c["inv_r"]) < 0.05 * max(c["inv_r"], 1.0), (
                dataset, mode,
            )
        # CompressStreamDB reaches (or nearly reaches) the best 1/r; the
        # selector optimizes *total time*, so it may trade a few percent of
        # compression ratio for cheaper compression (Sec. VII-C notes it is
        # not the fastest compressor either -- it optimizes the pipeline)
        adaptive_inv_r = cells[(dataset, "adaptive")]["inv_r"]
        best_static = min(
            cells[(dataset, m)]["inv_r"] for m in METHODS if m != "adaptive"
        )
        assert adaptive_inv_r <= best_static * 1.25, dataset
    savings = [cells[(d, "adaptive")]["space_saving"] for d in DATASET_QUERIES]
    assert average(savings) > 0.5, "adaptive must save the majority of bytes"


def bench_table4_ratios(benchmark):
    cells = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(cells)
    check(cells)


if __name__ == "__main__":
    c = collect()
    report(c)
    check(c)
