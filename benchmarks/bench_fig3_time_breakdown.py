"""Fig. 3 — time breakdown of uncompressed stream processing.

Paper shape: with a 500 Mbps link, network transmission takes the majority
of total time (>=70 % on the paper's native-code testbed) across the six
applications; at 1 Gbps it still takes about half.  Our query kernels are
pure Python (slower than the paper's C++), so the absolute transmission
share is lower, but it must dominate at 500 Mbps vs 1 Gbps and shrink with
bandwidth — the mechanism that makes compression pay.
"""

from common import Table, register, run_query
from repro.datasets import QUERIES


def _compute_seconds(report):
    return sum(v for k, v in report.stage_seconds().items() if k != "trans")


def collect(batches=3, windows_per_batch=20, cell_repeats=3):
    # warm the engine path first: the very first run in a process pays
    # cold-cache costs in the compute stages, which would depress its
    # transmission *share* and distort the 500 Mbps vs 1 Gbps comparison
    run_query("q1", "baseline", bandwidth_mbps=500, batches=1, windows_per_batch=4)
    shares = {}
    trans_seconds = {}
    tuples = 0
    for qname in sorted(QUERIES):
        for mbps in (500, 1000):
            # transmission time is modeled (bytes/bandwidth, deterministic)
            # but the compute stages are wall-clock; take the run with the
            # least compute time so a stray GC/scheduler spike in one run
            # cannot distort the share comparison
            runs = [
                run_query(
                    qname,
                    "baseline",
                    bandwidth_mbps=mbps,
                    batches=batches,
                    windows_per_batch=windows_per_batch,
                )
                for _ in range(cell_repeats)
            ]
            report = min(runs, key=_compute_seconds)
            tuples += report.tuples
            shares[(qname, mbps)] = report.breakdown()["trans"]
            trans_seconds[(qname, mbps)] = report.stage_seconds()["trans"]
    return {"shares": shares, "trans_seconds": trans_seconds, "tuples": tuples}


def report(result):
    shares = result["shares"]
    table = Table(
        ["Query", "trans % @500Mbps", "trans % @1Gbps"],
        title="Fig. 3 -- transmission share of total time (uncompressed baseline)",
    )
    for qname in sorted(QUERIES):
        table.add(
            qname.upper(),
            f"{shares[(qname, 500)] * 100:.1f}%",
            f"{shares[(qname, 1000)] * 100:.1f}%",
        )
    note = (
        "Q3's self-join kernel is Python-bound in this substrate, so its "
        "transmission share is far below the paper's; the windowed "
        "aggregation queries (Q1/Q2/Q4-Q6) reproduce the paper's shape: "
        "transmission dominates at 500 Mbps and shrinks at 1 Gbps."
    )
    return [table.render(), note]


def check(result):
    shares = result["shares"]
    trans = result["trans_seconds"]
    for qname in sorted(QUERIES):
        s500, s1000 = shares[(qname, 500)], shares[(qname, 1000)]
        # the mechanism itself is deterministic: transmission is modeled as
        # bytes/bandwidth, so doubling the link must halve trans seconds
        ratio = trans[(qname, 500)] / trans[(qname, 1000)]
        assert abs(ratio - 2.0) < 0.05, f"{qname}: trans ratio {ratio:.3f}"
        # the *share* mixes in wall-clock compute time; when transmission
        # saturates the share at BOTH bandwidths (tiny compute, e.g. Q1's
        # single aggregation) the ordering rides on ~1 ms of noise — there,
        # domination itself is the Fig. 3 claim, so assert that instead
        if min(s500, s1000) > 0.85:
            continue
        assert s500 > s1000, (
            f"{qname}: halving bandwidth must raise the share "
            f"({s500:.3f} vs {s1000:.3f})"
        )
        if qname != "q3":  # Q3 is join-compute-bound in pure Python
            assert s500 > 0.25, f"{qname}: transmission must dominate at 500 Mbps"


def metrics(result):
    shares = result["shares"]
    # informational: the transmission share is a property of the substrate,
    # not a quality metric to gate on
    return {
        "trans_share_q1_500mbps": shares[("q1", 500)],
        "trans_share_q1_1gbps": shares[("q1", 1000)],
    }


SPEC = register(
    name="fig3_time_breakdown",
    suite="paper",
    fn=collect,
    params={"batches": 3, "windows_per_batch": 20, "cell_repeats": 3},
    quick_params={"batches": 1, "windows_per_batch": 4, "cell_repeats": 1},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["tuples"],
    tolerance=0.3,
)


def bench_fig3_time_breakdown(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
