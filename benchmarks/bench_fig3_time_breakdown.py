"""Fig. 3 — time breakdown of uncompressed stream processing.

Paper shape: with a 500 Mbps link, network transmission takes the majority
of total time (>=70 % on the paper's native-code testbed) across the six
applications; at 1 Gbps it still takes about half.  Our query kernels are
pure Python (slower than the paper's C++), so the absolute transmission
share is lower, but it must dominate at 500 Mbps vs 1 Gbps and shrink with
bandwidth — the mechanism that makes compression pay.
"""

from common import Table, emit, run_query
from repro.datasets import QUERIES


def collect():
    shares = {}
    for qname in sorted(QUERIES):
        for mbps in (500, 1000):
            report = run_query(qname, "baseline", bandwidth_mbps=mbps)
            breakdown = report.breakdown()
            shares[(qname, mbps)] = breakdown["trans"]
    return shares


def report(shares):
    table = Table(
        ["Query", "trans % @500Mbps", "trans % @1Gbps"],
        title="Fig. 3 -- transmission share of total time (uncompressed baseline)",
    )
    for qname in sorted(QUERIES):
        table.add(
            qname.upper(),
            f"{shares[(qname, 500)] * 100:.1f}%",
            f"{shares[(qname, 1000)] * 100:.1f}%",
        )
    note = (
        "Q3's self-join kernel is Python-bound in this substrate, so its "
        "transmission share is far below the paper's; the windowed "
        "aggregation queries (Q1/Q2/Q4-Q6) reproduce the paper's shape: "
        "transmission dominates at 500 Mbps and shrinks at 1 Gbps."
    )
    emit("fig3_time_breakdown", table.render(), note)


def check(shares):
    for qname in sorted(QUERIES):
        s500, s1000 = shares[(qname, 500)], shares[(qname, 1000)]
        assert s500 > s1000, f"{qname}: halving bandwidth must raise the share"
        if qname != "q3":  # Q3 is join-compute-bound in pure Python
            assert s500 > 0.25, f"{qname}: transmission must dominate at 500 Mbps"


def bench_fig3_time_breakdown(benchmark):
    shares = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(shares)
    check(shares)


if __name__ == "__main__":
    s = collect()
    report(s)
    check(s)
