"""Fig. 5 — throughput of ten processing methods on three datasets.

Paper shape: CompressStreamDB beats the baseline on every dataset (3.24x
average in the paper) and matches or beats the best single codec per
dataset (DICT on Smart Grid, NS on Linear Road, BD on Cluster); EG/ED are
inapplicable on Linear Road (negative values -> identity fallback).
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Metric,
    Table,
    average,
    register,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect(batches=3, windows_per_batch=20, cell_repeats=3):
    throughput = {}
    tuples = 0
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            # wall-clock noise can only depress a run's throughput, never
            # inflate it, so best-of-N per cell is the robust estimator
            best = 0.0
            for _ in range(cell_repeats):
                reports = run_dataset(
                    dataset,
                    mode,
                    batches=batches,
                    windows_per_batch=windows_per_batch,
                )
                tuples += sum(r.tuples for r in reports.values())
                best = max(
                    best, average([r.throughput for r in reports.values()])
                )
            throughput[(dataset, mode)] = best
    return {"throughput": throughput, "tuples": tuples}


def _speedups(throughput):
    return {
        (dataset, mode): throughput[(dataset, mode)]
        / throughput[(dataset, "baseline")]
        for dataset in DATASET_QUERIES
        for mode in METHODS
    }


def report(result):
    speedups = _speedups(result["throughput"])
    table = Table(
        ["Dataset"] + [METHOD_LABELS[m] for m in METHODS],
        title="Fig. 5 -- throughput normalized to the uncompressed baseline",
    )
    for dataset in DATASET_QUERIES:
        table.add(
            DATASET_LABELS[dataset],
            *(f"{speedups[(dataset, mode)]:.2f}x" for mode in METHODS),
        )

    adaptive = [speedups[(d, "adaptive")] for d in DATASET_QUERIES]
    best_single = {
        d: max(
            (speedups[(d, m)], METHOD_LABELS[m])
            for m in METHODS
            if m not in ("baseline", "adaptive")
        )
        for d in DATASET_QUERIES
    }
    summary = Table(["Metric", "Value"], title="Headline numbers")
    summary.add(
        "CompressStreamDB average speedup", f"{average(adaptive):.2f}x (paper: 3.24x)"
    )
    for d in DATASET_QUERIES:
        ratio, name = best_single[d]
        summary.add(
            f"{DATASET_LABELS[d]}: CmpStr vs best single ({name} {ratio:.2f}x)",
            f"{speedups[(d, 'adaptive')]:.2f}x",
        )
    return [table.render(), summary.render()]


def check(result) -> None:
    speedups = _speedups(result["throughput"])
    # shape assertions from the paper, with generous slack for Python
    for dataset in DATASET_QUERIES:
        assert speedups[(dataset, "adaptive")] > 1.2, (
            f"adaptive must clearly beat baseline on {dataset}"
        )
        best_static = max(
            speedups[(dataset, m)]
            for m in METHODS
            if m not in ("baseline", "adaptive")
        )
        assert speedups[(dataset, "adaptive")] > 0.85 * best_static, (
            f"adaptive must be competitive with the best single codec on {dataset}"
        )


def metrics(result):
    speedups = _speedups(result["throughput"])
    out = {
        f"speedup_adaptive_{d}": Metric(speedups[(d, "adaptive")], better="higher")
        for d in DATASET_QUERIES
    }
    out["speedup_adaptive_avg"] = Metric(
        average([speedups[(d, "adaptive")] for d in DATASET_QUERIES]),
        better="higher",
    )
    return out


SPEC = register(
    name="fig5_throughput",
    suite="paper",
    fn=collect,
    params={"batches": 3, "windows_per_batch": 20, "cell_repeats": 3},
    quick_params={"batches": 1, "windows_per_batch": 4, "cell_repeats": 1},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["tuples"],
    tolerance=0.3,
)


def bench_fig5_throughput(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
