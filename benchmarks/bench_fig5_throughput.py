"""Fig. 5 — throughput of ten processing methods on three datasets.

Paper shape: CompressStreamDB beats the baseline on every dataset (3.24x
average in the paper) and matches or beats the best single codec per
dataset (DICT on Smart Grid, NS on Linear Road, BD on Cluster); EG/ED are
inapplicable on Linear Road (negative values -> identity fallback).
"""

from common import (
    DATASET_LABELS,
    METHOD_LABELS,
    METHODS,
    Table,
    average,
    emit,
    run_dataset,
)
from repro.datasets import DATASET_QUERIES


def collect():
    throughput = {}
    for dataset in DATASET_QUERIES:
        for mode in METHODS:
            reports = run_dataset(dataset, mode)
            throughput[(dataset, mode)] = average(
                [r.throughput for r in reports.values()]
            )
    return throughput


def report(throughput) -> dict:
    table = Table(
        ["Dataset"] + [METHOD_LABELS[m] for m in METHODS],
        title="Fig. 5 -- throughput normalized to the uncompressed baseline",
    )
    speedups = {}
    for dataset in DATASET_QUERIES:
        base = throughput[(dataset, "baseline")]
        row = [DATASET_LABELS[dataset]]
        for mode in METHODS:
            ratio = throughput[(dataset, mode)] / base
            speedups[(dataset, mode)] = ratio
            row.append(f"{ratio:.2f}x")
        table.add(*row)

    adaptive = [speedups[(d, "adaptive")] for d in DATASET_QUERIES]
    best_single = {
        d: max(
            (speedups[(d, m)], METHOD_LABELS[m])
            for m in METHODS
            if m not in ("baseline", "adaptive")
        )
        for d in DATASET_QUERIES
    }
    summary = Table(["Metric", "Value"], title="Headline numbers")
    summary.add("CompressStreamDB average speedup", f"{average(adaptive):.2f}x (paper: 3.24x)")
    for d in DATASET_QUERIES:
        ratio, name = best_single[d]
        summary.add(
            f"{DATASET_LABELS[d]}: CmpStr vs best single ({name} {ratio:.2f}x)",
            f"{speedups[(d, 'adaptive')]:.2f}x",
        )
    emit("fig5_throughput", table.render(), summary.render())
    return speedups


def check(speedups) -> None:
    # shape assertions from the paper, with generous slack for Python
    for dataset in DATASET_QUERIES:
        assert speedups[(dataset, "adaptive")] > 1.2, (
            f"adaptive must clearly beat baseline on {dataset}"
        )
        best_static = max(
            speedups[(dataset, m)]
            for m in METHODS
            if m not in ("baseline", "adaptive")
        )
        assert speedups[(dataset, "adaptive")] > 0.85 * best_static, (
            f"adaptive must be competitive with the best single codec on {dataset}"
        )


def bench_fig5_throughput(benchmark):
    throughput = benchmark.pedantic(collect, rounds=1, iterations=1)
    check(report(throughput))


if __name__ == "__main__":
    check(report(collect()))
