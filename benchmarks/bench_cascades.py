"""Cascades — composed-codec ratios plus the morph serving win.

Two halves, one spec:

* **Ratio table** (Table-IV style): each cascade family compresses the
  column shape it was composed for, next to its own stage codecs run
  alone.  The shapes are seeded and deterministic, so the gated ratios
  are machine-independent: ``dict+rle`` must collapse what ``dict``
  alone cannot, ``delta+ns`` must narrow a drifting counter that defeats
  plain ``ns``, ``bd+nsv`` must shrug off the rare spikes that widen
  ``bd``'s fixed width, and ``dict+bitmap`` must stay within a hair of
  its stage codecs while adding the bit-plane serving capability.

* **Morph legs**: a ``static:rle`` engine answers an equality-only OR
  filter over a runny small-domain column, once with the optimizer off
  (runs served as runs) and once with it on (the FormatMorph rule
  recompresses the predicate column to bit-planes mid-pipeline).  The
  escape hatch makes the comparison exact — identical codecs, identical
  bytes on the wire, identical answers — and the gate is the query-stage
  speedup, best-of-``cell_repeats`` per leg (noise can only depress a
  best-of-N, never inflate it).
"""

import numpy as np
from common import Metric, Table, register
from repro import CompressStreamDB, EngineConfig
from repro.compression import get_codec
from repro.core.calibration import default_calibration
from repro.stats import ColumnStats
from repro.stream.schema import Field, Schema
from repro.stream.source import GeneratorSource

# ----- ratio half -------------------------------------------------------


def _shapes(n, seed=17):
    """Seeded column shapes, one per cascade family's home regime."""
    rng = np.random.default_rng(seed)
    resid = rng.integers(0, 200, n)
    spikes = rng.random(n) < 0.01
    return {
        # wide categorical values arriving in long runs: dict alone
        # still pays per-row codes, rle alone works but dict+rle must
        # collapse the runs the same way
        "runny_categorical": np.repeat(
            rng.integers(-1_000_000, 1_000_000, max(n // 85, 2)), 85
        )[:n].astype(np.int64),
        # small increments on a huge absolute level: ns sees 8-byte
        # values, the delta stage hands it 1-byte deltas
        "drifting_counter": (
            np.cumsum(rng.integers(0, 7, n)) + 5_000_000_000
        ).astype(np.int64),
        # tight cluster with rare large spikes: the outliers force bd's
        # fixed post-base width wide, nsv re-narrows per value
        "spiky_counter": (
            5_000_000_000 + np.where(spikes, resid + 100_000_000, resid)
        ).astype(np.int64),
        # a handful of arbitrarily wide category constants: bit-planes
        # over dense stage-1 codes
        "wide_categories": rng.choice(
            np.array(
                [-8_000_000_000, -5, 0, 123_456_789_012, 7, 999],
                dtype=np.int64,
            ),
            n,
        ),
    }


#: cascade -> (home shape, the single-stage codecs shown next to it)
RATIO_CASES = {
    "dict+rle": ("runny_categorical", ("dict", "rle")),
    "delta+ns": ("drifting_counter", ("ns", "ed")),
    "bd+nsv": ("spiky_counter", ("bd", "nsv")),
    "dict+bitmap": ("wide_categories", ("dict", "bitmap")),
}


def _ratios(n):
    shapes = _shapes(n)
    out = {}
    for cascade, (shape, singles) in RATIO_CASES.items():
        values = shapes[shape]
        stats = ColumnStats.from_values(values)
        raw = values.size * 8
        cell = {}
        for name in (cascade, *singles):
            codec = get_codec(name)
            if not codec.applicable(stats):
                cell[name] = None
                continue
            cell[name] = raw / codec.compress(values).nbytes
        out[cascade] = {"shape": shape, "ratios": cell}
    return out


# ----- morph half -------------------------------------------------------

MORPH_SCHEMA = Schema(
    [Field("ts", "int", 8), Field("value", "int", 8), Field("kind", "int", 8)]
)

#: seven equality literals: enough for the hint-only cost gate to prefer
#: planes (saving per literal 1 unit at size_c=8 vs a 4-unit conversion)
MORPH_SQL = (
    "select avg(value) as v from S [range 4096 slide 4096] where "
    + " or ".join(f"kind == {v}" for v in (1, 3, 5, 7, 9, 11, 13))
)

#: kind holds a state for ~4 rows: runny enough for rle, too choppy for
#: run-predicate serving to beat per-literal plane masks
MORPH_RUN_LENGTH = 4


def _morph_source(batch_size, batches, seed=3):
    rng = np.random.default_rng(seed)

    def gen(index):
        return {
            "ts": index * batch_size + np.arange(batch_size, dtype=np.int64),
            "value": np.repeat(rng.integers(0, 500, batch_size // 8), 8),
            "kind": np.repeat(
                rng.integers(0, 16, batch_size // MORPH_RUN_LENGTH),
                MORPH_RUN_LENGTH,
            ).astype(np.int64),
        }

    return GeneratorSource(MORPH_SCHEMA, gen, limit=batches)


def _morph_engine(optimize):
    return CompressStreamDB(
        {"S": MORPH_SCHEMA},
        MORPH_SQL,
        EngineConfig(
            mode="static:rle",
            bandwidth_mbps=500,
            calibration=default_calibration(),
            optimize=optimize,
        ),
    )


def collect(n=2048, batches=4, windows_per_batch=16, cell_repeats=4):
    batch_size = 4096 * windows_per_batch
    legs = {}
    tuples = 0
    for optimize in (False, True):
        best = None
        for _ in range(cell_repeats):
            engine = _morph_engine(optimize)
            rep = engine.run(
                _morph_source(batch_size, batches), collect_outputs=True
            )
            tuples += rep.tuples
            query_s = rep.stage_seconds()["query"]
            if best is None or query_s < best[0]:
                best = (query_s, rep, getattr(engine._base_plan, "opt", None))
        legs[optimize] = best
    return {"ratios": _ratios(n), "legs": legs, "tuples": tuples}


def report(result):
    table = Table(
        ["Cascade", "Shape", "cascade x", "stage-1 alone x", "stage-2 alone x"],
        title="Cascaded families vs their single stages "
        "(transmitted ratio, seeded shapes)",
    )
    for cascade, cell in result["ratios"].items():
        ratios = cell["ratios"]
        s1, s2 = RATIO_CASES[cascade][1]

        def fmt(name, ratios=ratios):
            value = ratios[name]
            return f"{value:.2f}" if value is not None else "n/a"

        table.add(cascade, cell["shape"], fmt(cascade), fmt(s1), fmt(s2))

    (naive_s, naive_rep, _) = result["legs"][False]
    (morph_s, morph_rep, info) = result["legs"][True]
    morph_table = Table(
        ["Leg", "query ms/batch", "throughput tup/s", "rules fired"],
        title="Morph serving -- equality-OR filter on a runny "
        "small-domain column (static:rle)",
    )
    batches = naive_rep.profiler.batches
    morph_table.add(
        "morph off (optimize=False)",
        f"{naive_s / batches * 1e3:.3f}",
        f"{naive_rep.throughput:,.0f}",
        "-",
    )
    morph_table.add(
        "morph on",
        f"{morph_s / batches * 1e3:.3f}",
        f"{morph_rep.throughput:,.0f}",
        ", ".join(info.rules_fired) if info else "-",
    )
    lines = [table.render(), morph_table.render()]
    if info:
        morphs = ", ".join(
            f"{m.column}: {m.from_codec} -> {m.to_codec}" for m in info.morphs
        )
        lines.append(
            f"query-stage speedup {naive_s / morph_s:.2f}x; morphs: {morphs}"
        )
    return lines


def check(result):
    ratios = {name: cell["ratios"] for name, cell in result["ratios"].items()}
    # every cascade must beat the raw int64 stream on its home shape
    for cascade, cell in ratios.items():
        assert cell[cascade] is not None and cell[cascade] > 1.0, (cascade, cell)
    # the composed-family wins are data-determined, so they gate hard:
    # each cascade must clearly beat the stage its composition rescues
    assert ratios["dict+rle"]["dict+rle"] > 2 * ratios["dict+rle"]["dict"]
    assert ratios["delta+ns"]["delta+ns"] > 2 * ratios["delta+ns"]["ns"]
    assert ratios["bd+nsv"]["bd+nsv"] > 2 * ratios["bd+nsv"]["bd"]
    assert ratios["bd+nsv"]["bd+nsv"] > 2 * ratios["bd+nsv"]["nsv"]
    # dict+bitmap buys the plane capability, not bytes: parity gate
    db = ratios["dict+bitmap"]
    assert db["dict+bitmap"] > 0.9 * max(db["dict"], db["bitmap"])

    (naive_s, naive_rep, _) = result["legs"][False]
    (morph_s, morph_rep, info) = result["legs"][True]
    # the morph rule must actually have rewritten the plan
    assert info is not None and not info.fallback, info
    assert "morph" in info.rules_fired, info.rules_fired
    assert any(
        m.column == "kind" and m.to_codec == "bitmap" for m in info.morphs
    ), info.morphs
    assert info.estimated_cost < info.baseline_cost, info
    # the escape hatch keeps the comparison exact: same bytes, same rows
    assert naive_rep.profiler.bytes_sent == morph_rep.profiler.bytes_sent
    a, b = naive_rep.outputs, morph_rep.outputs
    assert a is not None and b is not None
    assert a.n_rows == b.n_rows and sorted(a.columns) == sorted(b.columns)
    for name in a.columns:
        assert np.allclose(a.columns[name], b.columns[name]), name
    # the satellite gate: serving planes beats serving runs
    assert morph_s < naive_s, (morph_s, naive_s)


def metrics(result):
    ratios = {name: cell["ratios"] for name, cell in result["ratios"].items()}
    (naive_s, _, _) = result["legs"][False]
    (morph_s, morph_rep, _) = result["legs"][True]
    out = {
        name: Metric(cell[name], better="higher")
        for name, cell in ratios.items()
    }
    out["morph_query_speedup"] = Metric(naive_s / morph_s, better="higher")
    out["morph_throughput"] = float(morph_rep.throughput)
    return out


SPEC = register(
    name="cascade_families",
    suite="cascades",
    fn=collect,
    params={"n": 2048, "batches": 4, "windows_per_batch": 16, "cell_repeats": 4},
    quick_params={"n": 512, "batches": 2, "windows_per_batch": 2, "cell_repeats": 2},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda result: result["tuples"],
    tolerance=0.5,
)


def bench_cascades(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
