"""Ablation — query *without decompression* vs decompress-then-query.

Isolates the paper's third contribution: with identical codecs and
identical bytes on the wire, the only difference is whether the server
runs kernels on compressed codes directly or decompresses every column
first (the conventional design).

Substrate note (see EXPERIMENTS.md): in NumPy, fixed-width codes are
materialized as int64 arrays either way, so for trivially-decodable codecs
(NS, BD) the two paths do nearly identical work — the paper's byte-width
memory-traffic advantage needs native kernels.  The advantage that *does*
survive in Python is skipping genuinely expensive decodes: Elias Delta's
codeword inversion and Dictionary's value gather, exercised here by the
group-by queries Q2 and Q6 (grouping runs on codes directly).
"""

from common import Metric, Table, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES

#: codecs whose decode is materially more expensive than code access
MODES = ("static:ed", "static:dict")
#: shown for honesty: trivially-decodable codecs gain ~nothing in NumPy
INFO_MODES = ("static:ns", "static:bd")
QUERY_NAMES = ("q2", "q6")


def _run(qname, mode, force_decode, batches, windows_per_batch):
    q = QUERIES[qname]
    engine = CompressStreamDB(
        q.catalog,
        q.text(slide=q.window),
        EngineConfig(
            mode=mode,
            bandwidth_mbps=500,
            calibration=default_calibration(),
            force_decode=force_decode,
        ),
    )
    src = q.make_source(batch_size=q.window * windows_per_batch, batches=batches)
    return engine.run(src)


def collect(batches=4, windows_per_batch=20):
    results = {}
    for qname in QUERY_NAMES:
        for mode in MODES + INFO_MODES:
            direct = _run(qname, mode, False, batches, windows_per_batch)
            decoded = _run(qname, mode, True, batches, windows_per_batch)
            results[(qname, mode)] = (direct, decoded)
    return results


def _server_ms(rep):
    seconds = rep.stage_seconds()
    return (seconds["decompress"] + seconds["query"]) / rep.profiler.batches * 1e3


def report(results):
    table = Table(
        [
            "Query",
            "Method",
            "server ms direct",
            "server ms decode-first",
            "direct saves",
        ],
        title="Ablation -- direct processing vs decompress-then-query "
              "(server time = decompress + query, per batch)",
    )
    for (qname, mode), (direct, decoded) in results.items():
        d, f = _server_ms(direct), _server_ms(decoded)
        table.add(
            qname.upper(), mode, f"{d:.3f}", f"{f:.3f}", f"{(1 - d / f) * 100:.1f}%"
        )
    note = (
        "ED and DICT rows show the real direct-processing win (their "
        "decodes are expensive); NS/BD rows are informational -- NumPy "
        "materializes their codes as int64 either way, so the paper's "
        "byte-width scan advantage needs native kernels."
    )
    return [table.render(), note]


def _microbench_decode_vs_direct():
    """Isolated mechanism check: ED/DICT decode vs direct code access."""
    import time

    import numpy as np

    from repro.compression import get_codec

    def best_of(fn, repeats=5):
        fn()  # warm caches
        return min(
            (lambda t0: (fn(), time.perf_counter() - t0)[1])(time.perf_counter())
            for _ in range(repeats)
        )

    rng = np.random.default_rng(3)
    values = rng.integers(0, 5000, size=1 << 19)
    out = {}
    for name in ("ed", "dict"):
        codec = get_codec(name)
        cc = codec.compress(values)
        direct_s = best_of(lambda: codec.direct_codes(cc))
        decode_s = best_of(lambda: codec.decompress(cc))
        out[name] = (direct_s, decode_s)
    return out


def check(results):
    for qname in QUERY_NAMES:
        for mode in MODES:
            direct, decoded = results[(qname, mode)]
            # identical wire bytes; the direct path decodes at most the
            # capability-miss columns (e.g. avg over non-affine ED), a
            # strict subset of decode-everything
            assert direct.profiler.bytes_sent == decoded.profiler.bytes_sent
            assert decoded.stage_seconds()["decompress"] > 0.0
            assert (
                direct.stage_seconds()["decompress"]
                < decoded.stage_seconds()["decompress"]
            )
    # the mechanism, isolated from group-by noise: accessing codes must be
    # clearly cheaper than decoding for the expensive-decode codecs
    micro = _microbench_decode_vs_direct()
    # ED codeword inversion is far costlier than reading codes; DICT's
    # dictionary gather adds a smaller but consistent cost
    thresholds = {"ed": 2.0, "dict": 1.05}
    for name, (direct_s, decode_s) in micro.items():
        assert decode_s > thresholds[name] * direct_s, (
            f"{name}: decode {decode_s:.4f}s vs direct {direct_s:.4f}s"
        )


def metrics(results):
    out = {}
    for mode in MODES:
        savings = []
        for qname in QUERY_NAMES:
            direct, decoded = results[(qname, mode)]
            savings.append(1 - _server_ms(direct) / _server_ms(decoded))
        out[f"direct_saving_{mode.split(':')[1]}"] = Metric(
            sum(savings) / len(savings), better="higher"
        )
    return out


SPEC = register(
    name="ablation_direct",
    suite="ablation",
    fn=collect,
    params={"batches": 4, "windows_per_batch": 20},
    quick_params={"batches": 1, "windows_per_batch": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda results: sum(
        direct.tuples + decoded.tuples for direct, decoded in results.values()
    ),
    tolerance=0.5,
)


def bench_ablation_direct(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
