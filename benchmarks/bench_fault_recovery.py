"""Goodput vs. fault rate — cost of the recovery protocol (docs/robustness.md).

Shape: goodput (delivered tuples per virtual second) degrades monotonically
as the link gets lossier, because retransmissions, timeouts and backoff
waits all charge virtual time; at moderate rates every batch still arrives
(quarantined = 0) and outputs stay bit-identical to a clean-link run, while
a fully dead link quarantines everything and terminates cleanly.

Everything is seeded (fault injection, data generation) and selection runs
calibration-only (``profile_query=False``), so the table reproduces
bit-for-bit across runs.
"""

import numpy as np
from common import Metric, Table, bench_scale, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES
from repro.net.faults import FaultProfile
from repro.net.transport import ReliabilityConfig

#: symmetric drop/corrupt probability per frame copy
FAULT_RATES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 1.0)
QNAME = "q1"
FAULT_SEED = 7


def run_at(rate, batches, windows_per_batch):
    q = QUERIES[QNAME]
    profile = None
    if rate > 0:
        profile = FaultProfile(drop_rate=rate, corrupt_rate=rate, seed=FAULT_SEED)
    engine = CompressStreamDB(
        q.catalog,
        q.text(slide=q.window),
        EngineConfig(
            mode="adaptive",
            bandwidth_mbps=100.0,
            calibration=default_calibration(),
            fault_profile=profile,
            reliability=ReliabilityConfig(max_retries=6),
            profile_query=False,
        ),
    )
    source = q.make_source(
        batch_size=q.window * windows_per_batch,
        batches=batches * bench_scale(),
        seed=11,
    )
    return engine.run(source, collect_outputs=True)


def collect(batches=6, windows_per_batch=8):
    return {
        rate: run_at(rate, batches, windows_per_batch) for rate in FAULT_RATES
    }


def report(reports):
    table = Table(
        [
            "drop=corrupt rate",
            "injected",
            "detected",
            "retried",
            "recovered",
            "quarantined",
            "delivered tuples",
            "delivered %",
            "retry time",
            "goodput tup/s",
        ],
        title="Goodput vs. fault rate (q1, 100 Mbps, max_retries=6)",
    )
    for rate, rep in reports.items():
        faults = rep.faults
        delivered = rep.delivered_tuples
        table.add(
            f"{rate:.2f}",
            faults.injected_total,
            faults.detected,
            faults.retried,
            faults.recovered,
            faults.quarantined,
            delivered,
            f"{delivered / rep.tuples * 100:.1f}%",
            f"{faults.retry_seconds:.3f}s",
            f"{rep.goodput:,.0f}",
        )
    return [table.render()]


def check(reports):
    clean = reports[0.0]
    assert clean.faults.injected_total == 0
    assert clean.faults.detected == 0
    for rate, rep in reports.items():
        faults = rep.faults
        # the robustness invariant: every detected failure is resolved
        assert faults.detected == faults.recovered + faults.quarantined
        assert rep.delivered_tuples + faults.quarantined_tuples == rep.tuples
        if 0 < rate <= 0.1:
            # moderate loss: recovery delivers everything, bit-identically
            assert faults.quarantined == 0
            for name in clean.outputs.columns:
                assert np.array_equal(
                    clean.outputs.columns[name], rep.outputs.columns[name]
                )
    # a fully dead link quarantines every batch instead of hanging
    dead = reports[1.0]
    assert dead.faults.quarantined == dead.profiler.batches
    assert dead.delivered_tuples == 0
    # recovery costs time: goodput at heavy loss below the clean link's
    assert reports[0.4].goodput < clean.goodput


def metrics(reports):
    moderate = reports[0.1]
    # delivered fraction is seeded and deterministic, so it gates tightly
    out = {
        "delivered_fraction_rate_0.1": Metric(
            moderate.delivered_tuples / moderate.tuples, better="higher"
        ),
        # informational: virtual-time goodput ratio under heavy loss
        "goodput_ratio_rate_0.4_vs_clean": reports[0.4].goodput
        / reports[0.0].goodput,
    }
    return out


SPEC = register(
    name="fault_recovery",
    suite="robustness",
    fn=collect,
    params={"batches": 6, "windows_per_batch": 8},
    quick_params={"batches": 3, "windows_per_batch": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda reports: sum(r.tuples for r in reports.values()),
    tolerance=0.35,
)


def bench_fault_recovery(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
