"""Ablation — re-decision cadence and lookahead of the adaptive selector.

Sec. IV-B: codecs are re-selected every preset number of batches using a
five-batch lookahead, and "the overhead of dynamic reselection can be
negligible".  This bench sweeps both knobs on the phase-shifting workload:
too-rare re-decisions miss regime changes (bytes rise); re-deciding every
batch must not collapse throughput (selection is cheap).
"""

from common import Table, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid

CADENCES = (1, 4, 8, 32)
LOOKAHEADS = (1, 5)


def _run(redecide_every, lookahead, batches, batches_per_phase):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode="adaptive",
            bandwidth_mbps=100,
            calibration=default_calibration(),
            redecide_every=redecide_every,
            lookahead=lookahead,
        ),
    )
    workload = smart_grid.dynamic_workload(
        batch_size=q1.window * 4,
        batches=batches,
        batches_per_phase=batches_per_phase,
    )
    return engine.run(workload)


def collect(batches=24, batches_per_phase=8):
    return {
        (cadence, lookahead): _run(cadence, lookahead, batches, batches_per_phase)
        for cadence in CADENCES
        for lookahead in LOOKAHEADS
    }


def report(results):
    table = Table(
        [
            "redecide_every",
            "lookahead",
            "throughput tup/s",
            "bytes sent",
            "space saving",
            "decisions",
        ],
        title="Ablation -- selector re-decision cadence on a dynamic workload",
    )
    for (cadence, lookahead), rep in sorted(results.items()):
        table.add(
            cadence, lookahead,
            f"{rep.throughput:,.0f}",
            rep.profiler.bytes_sent,
            f"{rep.space_saving * 100:.1f}%",
            len(rep.decision_log),
        )
    note = (
        "Per-batch re-decision costs little (lightweight stats + analytic "
        "ratios); cadences beyond the phase length miss regime changes and "
        "ship more bytes."
    )
    return [table.render(), note]


def check(results):
    fastest_cadence = results[(1, 5)]
    slowest_cadence = results[(32, 5)]
    # re-deciding every batch must not cost more than ~35% throughput
    assert fastest_cadence.throughput > 0.65 * slowest_cadence.throughput
    # frequent re-decision tracks phases at least as tightly in bytes
    assert (
        fastest_cadence.profiler.bytes_sent
        <= slowest_cadence.profiler.bytes_sent * 1.1
    )


def metrics(results):
    fastest = results[(1, 5)]
    slowest = results[(32, 5)]
    # informational: wall-clock throughput ratio is noisy on shared runners
    return {
        "throughput_ratio_cadence1_vs_32": fastest.throughput / slowest.throughput,
        "bytes_ratio_cadence1_vs_32": fastest.profiler.bytes_sent
        / slowest.profiler.bytes_sent,
    }


SPEC = register(
    name="ablation_redecision",
    suite="ablation",
    fn=collect,
    params={"batches": 24, "batches_per_phase": 8},
    quick_params={"batches": 8, "batches_per_phase": 4},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda results: sum(r.tuples for r in results.values()),
    tolerance=0.35,
)


def bench_ablation_redecision(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
