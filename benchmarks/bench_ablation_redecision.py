"""Ablation — re-decision cadence and lookahead of the adaptive selector.

Sec. IV-B: codecs are re-selected every preset number of batches using a
five-batch lookahead, and "the overhead of dynamic reselection can be
negligible".  This bench sweeps both knobs on the phase-shifting workload:
too-rare re-decisions miss regime changes (bytes rise); re-deciding every
batch must not collapse throughput (selection is cheap).
"""

from common import Table, emit
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import QUERIES, smart_grid

CADENCES = (1, 4, 8, 32)
LOOKAHEADS = (1, 5)
BATCHES = 24
BATCHES_PER_PHASE = 8


def _run(redecide_every, lookahead):
    q1 = QUERIES["q1"]
    engine = CompressStreamDB(
        q1.catalog,
        q1.text(slide=q1.window),
        EngineConfig(
            mode="adaptive",
            bandwidth_mbps=100,
            calibration=default_calibration(),
            redecide_every=redecide_every,
            lookahead=lookahead,
        ),
    )
    workload = smart_grid.dynamic_workload(
        batch_size=q1.window * 4,
        batches=BATCHES,
        batches_per_phase=BATCHES_PER_PHASE,
    )
    return engine.run(workload)


def collect():
    return {
        (cadence, lookahead): _run(cadence, lookahead)
        for cadence in CADENCES
        for lookahead in LOOKAHEADS
    }


def report(results):
    table = Table(
        ["redecide_every", "lookahead", "throughput tup/s", "bytes sent",
         "space saving", "decisions"],
        title="Ablation -- selector re-decision cadence on a dynamic workload",
    )
    for (cadence, lookahead), rep in sorted(results.items()):
        table.add(
            cadence, lookahead,
            f"{rep.throughput:,.0f}",
            rep.profiler.bytes_sent,
            f"{rep.space_saving * 100:.1f}%",
            len(rep.decision_log),
        )
    note = (
        "Per-batch re-decision costs little (lightweight stats + analytic "
        "ratios); cadences beyond the phase length miss regime changes and "
        "ship more bytes."
    )
    emit("ablation_redecision", table.render(), note)


def check(results):
    fastest_cadence = results[(1, 5)]
    slowest_cadence = results[(32, 5)]
    # re-deciding every batch must not cost more than ~35% throughput
    assert fastest_cadence.throughput > 0.65 * slowest_cadence.throughput
    # frequent re-decision tracks phases at least as tightly in bytes
    assert (
        fastest_cadence.profiler.bytes_sent
        <= slowest_cadence.profiler.bytes_sent * 1.1
    )


def bench_ablation_redecision(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(results)
    check(results)


if __name__ == "__main__":
    r = collect()
    report(r)
    check(r)
