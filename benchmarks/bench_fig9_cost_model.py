"""Fig. 9 — accuracy of the system cost model on the Smart Grid workload.

For every processing method, the cost model's estimated per-batch time
(Eqs. 1-9, with calibrated codec coefficients and the measured baseline
query profile) is compared against the measured per-batch time.  Paper
shape: estimates track measurements with ~88 % average accuracy, estimates
slightly below measurements (model ignores engine overheads).
"""

from common import METHOD_LABELS, METHODS, Metric, Table, average, register, run_query
from repro import CompressStreamDB, EngineConfig
from repro.compression import get_codec
from repro.core import CostModel, SystemParams, column_stats_from_batches
from repro.core.calibration import default_calibration
from repro.core.pipeline import measure_query_profile
from repro.datasets import QUERIES
from repro.net import Channel

QNAME = "q1"


def _model_inputs(windows_per_batch):
    """Stats, plan and measured profile shared by the static estimates."""
    q = QUERIES[QNAME]
    batches = list(
        q.make_source(batch_size=q.window * windows_per_batch, batches=2, seed=11)
    )
    stats = column_stats_from_batches(batches, q.schema)
    plan = CompressStreamDB(
        q.catalog,
        q.text(slide=q.window),
        EngineConfig(calibration=default_calibration()),
    ).plan
    measure_query_profile(plan, batches[0], SystemParams().memory_fraction)
    model = CostModel(
        default_calibration(), SystemParams(), Channel(bandwidth_mbps=500)
    )
    return stats, plan, model, batches


def _estimate(mode, windows_per_batch):
    """Cost-model estimate of the per-batch time under one static method."""
    stats, plan, model, batches = _model_inputs(windows_per_batch)
    if mode == "baseline":
        codec_name = "identity"
    elif mode.startswith("static:"):
        codec_name = mode.split(":")[1]
    else:
        return None  # adaptive estimated as the per-column argmin below
    codec = get_codec(codec_name)
    choices = {
        name: codec if codec.applicable(stats[name]) else get_codec("identity")
        for name in stats
    }
    return model.estimate_batch(choices, stats, batches[0].n, plan.profile).total


def _estimate_adaptive(windows_per_batch):
    """Adaptive estimate: per-column minimum over the pool (the selector)."""
    from repro.core import AdaptiveSelector

    stats, plan, model, batches = _model_inputs(windows_per_batch)
    choices = AdaptiveSelector(model).select(stats, plan.profile, batches[0].n)
    return model.estimate_batch(choices, stats, batches[0].n, plan.profile).total


def collect(batches=4, windows_per_batch=20):
    results = {}
    for mode in METHODS:
        measured = run_query(
            QNAME, mode, batches=batches, windows_per_batch=windows_per_batch
        )
        measured_per_batch = measured.total_seconds / measured.profiler.batches
        estimated = (
            _estimate_adaptive(windows_per_batch)
            if mode == "adaptive"
            else _estimate(mode, windows_per_batch)
        )
        results[mode] = (estimated, measured_per_batch)
    return results


def _accuracies(results):
    return [
        1 - abs(est - meas) / meas for est, meas in (results[m] for m in METHODS)
    ]


def report(results):
    table = Table(
        ["Method", "estimated ms", "measured ms", "accuracy"],
        title="Fig. 9 -- cost model accuracy (Smart Grid, Q1, 500 Mbps)",
    )
    for mode in METHODS:
        est, meas = results[mode]
        accuracy = 1 - abs(est - meas) / meas
        table.add(
            METHOD_LABELS[mode],
            f"{est * 1e3:.3f}",
            f"{meas * 1e3:.3f}",
            f"{accuracy * 100:.1f}%",
        )
    summary = (
        f"average accuracy: {average(_accuracies(results)) * 100:.1f}% "
        "(paper: 88.2%)"
    )
    return [table.render(), summary]


def check(results):
    assert average(_accuracies(results)) > 0.6, "cost model must track measurements"


def metrics(results):
    return {
        "cost_model_accuracy_avg": Metric(
            average(_accuracies(results)), better="higher"
        ),
    }


SPEC = register(
    name="fig9_cost_model",
    suite="paper",
    fn=collect,
    params={"batches": 4, "windows_per_batch": 20},
    quick_params={"batches": 1, "windows_per_batch": 8},
    report=report,
    check=check,
    metrics=metrics,
    tolerance=0.35,
)


def bench_fig9_cost_model(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
