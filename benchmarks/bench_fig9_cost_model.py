"""Fig. 9 — accuracy of the system cost model on the Smart Grid workload.

For every processing method, the cost model's estimated per-batch time
(Eqs. 1-9, with calibrated codec coefficients and the measured baseline
query profile) is compared against the measured per-batch time.  Paper
shape: estimates track measurements with ~88 % average accuracy, estimates
slightly below measurements (model ignores engine overheads).
"""

from common import METHOD_LABELS, METHODS, Table, average, emit, run_query
from repro import CompressStreamDB, EngineConfig
from repro.core import CostModel, SystemParams, column_stats_from_batches
from repro.core.calibration import default_calibration
from repro.core.pipeline import measure_query_profile
from repro.compression import get_codec
from repro.datasets import QUERIES
from repro.net import Channel

QNAME = "q1"
WINDOWS_PER_BATCH = 20
BATCHES = 4


def _estimate(mode):
    """Cost-model estimate of the per-batch time under one static method."""
    q = QUERIES[QNAME]
    batches = list(
        q.make_source(batch_size=q.window * WINDOWS_PER_BATCH, batches=2, seed=11)
    )
    stats = column_stats_from_batches(batches, q.schema)
    plan = CompressStreamDB(
        q.catalog, q.text(slide=q.window), EngineConfig(calibration=default_calibration())
    ).plan
    measure_query_profile(plan, batches[0], SystemParams().memory_fraction)
    channel = Channel(bandwidth_mbps=500)
    model = CostModel(default_calibration(), SystemParams(), channel)
    if mode == "baseline":
        codec_name = "identity"
    elif mode.startswith("static:"):
        codec_name = mode.split(":")[1]
    else:
        return None  # adaptive estimated as the per-column argmin below
    codec = get_codec(codec_name)
    choices = {
        name: codec if codec.applicable(stats[name]) else get_codec("identity")
        for name in stats
    }
    return model.estimate_batch(choices, stats, batches[0].n, plan.profile).total


def _estimate_adaptive():
    """Adaptive estimate: per-column minimum over the pool (the selector)."""
    from repro.core import AdaptiveSelector

    q = QUERIES[QNAME]
    batches = list(
        q.make_source(batch_size=q.window * WINDOWS_PER_BATCH, batches=2, seed=11)
    )
    stats = column_stats_from_batches(batches, q.schema)
    plan = CompressStreamDB(
        q.catalog, q.text(slide=q.window), EngineConfig(calibration=default_calibration())
    ).plan
    measure_query_profile(plan, batches[0], SystemParams().memory_fraction)
    model = CostModel(default_calibration(), SystemParams(), Channel(bandwidth_mbps=500))
    choices = AdaptiveSelector(model).select(stats, plan.profile, batches[0].n)
    return model.estimate_batch(choices, stats, batches[0].n, plan.profile).total


def collect():
    results = {}
    for mode in METHODS:
        measured = run_query(
            QNAME, mode, batches=BATCHES, windows_per_batch=WINDOWS_PER_BATCH
        )
        measured_per_batch = measured.total_seconds / measured.profiler.batches
        estimated = _estimate_adaptive() if mode == "adaptive" else _estimate(mode)
        results[mode] = (estimated, measured_per_batch)
    return results


def report(results):
    table = Table(
        ["Method", "estimated ms", "measured ms", "accuracy"],
        title="Fig. 9 -- cost model accuracy (Smart Grid, Q1, 500 Mbps)",
    )
    accuracies = []
    for mode in METHODS:
        est, meas = results[mode]
        accuracy = 1 - abs(est - meas) / meas
        accuracies.append(accuracy)
        table.add(
            METHOD_LABELS[mode],
            f"{est * 1e3:.3f}",
            f"{meas * 1e3:.3f}",
            f"{accuracy * 100:.1f}%",
        )
    summary = f"average accuracy: {average(accuracies) * 100:.1f}% (paper: 88.2%)"
    emit("fig9_cost_model", table.render(), summary)
    return accuracies


def check(accuracies):
    assert average(accuracies) > 0.6, "cost model must track measurements"


def bench_fig9_cost_model(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    check(report(results))


if __name__ == "__main__":
    check(report(collect()))
