"""Golden-fixture workload replay — corpus pass rate + replay cost.

Shape: the full workload corpus (the paper's Q1-Q6 in tumbling form plus
the widened-surface queries: ORDER BY/LIMIT, OR in WHERE/HAVING,
multi-way and LEFT OUTER joins) replays at its fixture-pinned geometry
through the single-engine adaptive path and the one-tenant supervised
fleet path.  Every result is checked against the committed golden
fixtures, whose expected rows were blessed from the uncompressed
baseline path — so the gated metric, the pass rate, asserts
end-to-end answer equivalence across three execution stacks, not just
that the replay ran.

Everything is seeded (trace phases, dataset generators, virtual-time
scheduling), so the pass rate is exactly 1.0 on any machine; wall-clock
timing statistics come from the harness.
"""

from common import Metric, register
from repro.workloads import replay


def collect(quick=False):
    return replay(quick=quick)


def report(rep):
    lines = ["Workload replay: golden-fixture pass rate per (query, path)"]
    width = max(len(o.query) for o in rep.outcomes)
    for o in rep.outcomes:
        status = "PASS" if o.ok else "FAIL"
        lines.append(f"  {status} {o.query:{width}s} [{o.path}] rows {o.n_rows}")
    lines.append(
        f"  pass rate {rep.pass_rate:.1%} "
        f"({rep.passed}/{rep.checks} checks)"
    )
    return ["\n".join(lines)]


def check(rep):
    # the tentpole invariant: every path reproduces the blessed answers
    assert rep.pass_rate == 1.0, [str(f.to_json()) for f in rep.failures]
    assert rep.checks >= 2 * len({o.query for o in rep.outcomes})


def metrics(rep):
    return {
        "pass_rate": Metric(rep.pass_rate, better="higher"),
        # informational scale markers
        "queries": float(len({o.query for o in rep.outcomes})),
        "rows_checked": float(sum(o.n_rows for o in rep.outcomes)),
    }


SPEC = register(
    name="workload_replay",
    suite="workloads",
    fn=collect,
    params={"quick": False},
    quick_params={"quick": True},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda rep: rep.tuples,
    tolerance=0.0,
)


def bench_workload_replay(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
