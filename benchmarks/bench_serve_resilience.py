"""Multi-tenant serving resilience — fleet scaling under loss (docs/robustness.md).

Shape: the supervisor runs fleets of 1 / 8 / 64 tenants over clean and
5%-lossy links.  On a clean link goodput (delivered tuples per virtual
second) is flat across fleet sizes modulo checkpoint overhead; under
loss, retransmission backoff charges virtual time, so goodput degrades by
a seeded, deterministic ratio while every tenant still finishes HEALTHY
or DEGRADED — never a process crash, never an unaccounted batch.

Each tenant gets its own fault seed (seed-per-link), otherwise the whole
fleet would replay one identical drop pattern.  Fault injection and
virtual time are fully seeded; the only machine-dependent input is the
per-process codec calibration, which shifts codec choices (and thus the
lossy/clean goodput ratio) by well under the gate tolerance.  Wall-clock
timing statistics come from the harness.
"""

from common import Metric, Table, bench_scale, register
from repro.net.faults import FaultProfile
from repro.net.transport import ReliabilityConfig
from repro.serve import ServeSupervisor, TenantSpec

FLEETS = (1, 8, 64)
LOSS_RATE = 0.05
QUERY_CYCLE = ("q1", "q2", "q3", "q4", "q5", "q6")
DATA_SEED = 11
FAULT_SEED = 7


def fleet_specs(n_tenants, loss, batches, batch_size):
    specs = []
    for i in range(n_tenants):
        profile = None
        reliability = None
        if loss > 0:
            profile = FaultProfile.lossy(loss, seed=FAULT_SEED + i)
            reliability = ReliabilityConfig(max_retries=6)
        specs.append(
            TenantSpec(
                tenant=f"t{i:03d}",
                query=QUERY_CYCLE[i % len(QUERY_CYCLE)],
                batches=batches,
                batch_size=batch_size,
                seed=DATA_SEED + i,
                fault_profile=profile,
                reliability=reliability,
                checkpoint_every=4,
            )
        )
    return specs


def collect(batches=4, batch_size=512):
    reports = {}
    for n_tenants in FLEETS:
        for loss in (0.0, LOSS_RATE):
            specs = fleet_specs(
                n_tenants, loss, batches * bench_scale(), batch_size
            )
            reports[(n_tenants, loss)] = ServeSupervisor(specs).run()
    return reports


def report(reports):
    table = Table(
        [
            "tenants",
            "loss",
            "delivered",
            "retries",
            "dead",
            "healthy/degraded/quar",
            "goodput tup/s",
            "p95 ms",
        ],
        title="Serving resilience: fleet size x link loss "
        "(virtual-time goodput)",
    )
    for (n_tenants, loss), rep in reports.items():
        counts = rep.health_counts()
        table.add(
            n_tenants,
            f"{loss:.2f}",
            f"{rep.batches_delivered}/{rep.batches_total}",
            sum(t.retries for t in rep.tenants),
            sum(t.dead_letters for t in rep.tenants),
            f"{counts['HEALTHY']}/{counts['DEGRADED']}/{counts['QUARANTINED']}",
            f"{rep.goodput_tps:,.0f}",
            f"{rep.p95_latency_s() * 1e3:.2f}",
        )
    return [table.render()]


def check(reports):
    for (n_tenants, loss), rep in reports.items():
        # the tentpole invariant: faults degrade tenants, never the process
        assert rep.process_crashes == 0
        assert rep.health_counts()["QUARANTINED"] == 0
        for tenant in rep.tenants:
            assert tenant.health in ("HEALTHY", "DEGRADED")
            accounted = (
                tenant.batches_delivered
                + tenant.dead_letters
                + tenant.batches_shed
            )
            assert accounted == tenant.batches_total
        if loss == 0.0:
            assert sum(t.retries for t in rep.tenants) == 0
            assert rep.delivered_fraction == 1.0
    # recovery costs virtual time: lossy goodput below the clean fleet's
    for n_tenants in FLEETS:
        assert (
            reports[(n_tenants, LOSS_RATE)].goodput_tps
            < reports[(n_tenants, 0.0)].goodput_tps
        )


def metrics(reports):
    big = max(FLEETS)
    clean = reports[(big, 0.0)]
    lossy = reports[(big, LOSS_RATE)]
    return {
        # both seeded and virtual-time deterministic, so they gate tightly
        f"delivered_fraction_{big}_tenants_lossy": Metric(
            lossy.delivered_fraction, better="higher"
        ),
        f"degradation_ratio_{big}_tenants_lossy": Metric(
            lossy.goodput_tps / clean.goodput_tps, better="higher"
        ),
        # informational: virtual p95 and clean-link goodput at scale
        f"p95_latency_ms_{big}_tenants_lossy": lossy.p95_latency_s() * 1e3,
        f"goodput_tps_{big}_tenants_clean": clean.goodput_tps,
    }


SPEC = register(
    name="serve_resilience",
    suite="robustness",
    fn=collect,
    params={"batches": 4, "batch_size": 512},
    quick_params={"batches": 2, "batch_size": 256},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda reports: sum(r.tuples_delivered for r in reports.values()),
    tolerance=0.35,
)


def bench_serve_resilience(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
