"""Ablation — time windows vs count windows on the same stream.

Not a paper figure: the paper evaluates count windows (Table III), but
Linear Road's "range 30" is semantically 30 *seconds*.  This bench runs
Q1 in both forms over the same smart-grid stream and checks that (a) the
compression benefit is window-form-independent (bytes on the wire are
identical — windows only shape the query stage), and (b) the time-window
scheduler's overhead stays modest.
"""

from common import Table, register
from repro import CompressStreamDB, EngineConfig
from repro.core.calibration import default_calibration
from repro.datasets import smart_grid

#: ~200 readings/second in the generator: 5-second time windows hold
#: about as many tuples as a 1024-tuple count window
COUNT_Q = (
    "select timestamp, avg(value) as load from SmartGridStr "
    "[range 1024 slide 1024]"
)
TIME_Q = (
    "select timestamp, avg(value) as load from SmartGridStr "
    "[range 5 seconds slide 5]"
)


def _run(query, mode, batches, batch_size):
    engine = CompressStreamDB(
        {"SmartGridStr": smart_grid.SCHEMA},
        query,
        EngineConfig(mode=mode, calibration=default_calibration()),
    )
    return engine.run(smart_grid.source(batch_size=batch_size, batches=batches))


def collect(batches=4, batch_size=16384):
    return {
        (form, mode): _run(query, mode, batches, batch_size)
        for form, query in (("count", COUNT_Q), ("time", TIME_Q))
        for mode in ("baseline", "adaptive", "static:bd")
    }


def report(results):
    table = Table(
        [
            "Window form",
            "Mode",
            "throughput tup/s",
            "query ms/batch",
            "bytes sent",
            "space saving",
        ],
        title="Ablation -- count vs time windows (Q1-shaped, same stream)",
    )
    for (form, mode), rep in results.items():
        table.add(
            form, mode,
            f"{rep.throughput:,.0f}",
            f"{rep.stage_seconds()['query'] / rep.profiler.batches * 1e3:.3f}",
            rep.profiler.bytes_sent,
            f"{rep.space_saving * 100:.1f}%",
        )
    return [table.render()]


def check(results):
    # (a) with a pinned codec, bytes are a property of the data alone —
    # the window form only shapes the query stage.  (Adaptive byte counts
    # may differ slightly: the time plan adds a needs-values use on the
    # timestamp column, which legitimately shifts selector estimates.)
    assert (
        results[("count", "static:bd")].profiler.bytes_sent
        == results[("time", "static:bd")].profiler.bytes_sent
    )
    # (b) compression wins under both window forms
    for form in ("count", "time"):
        assert (
            results[(form, "adaptive")].throughput
            > results[(form, "baseline")].throughput
        )
    # (c) the ragged scheduler costs at most ~3x the count path's query
    # stage at this geometry (it decodes timestamps and searchsorts)
    count_q = results[("count", "adaptive")].stage_seconds()["query"]
    time_q = results[("time", "adaptive")].stage_seconds()["query"]
    assert time_q < 3.0 * count_q


def metrics(results):
    # informational: per-stage wall-clock ratios are noisy on shared runners
    count_q = results[("count", "adaptive")].stage_seconds()["query"]
    time_q = results[("time", "adaptive")].stage_seconds()["query"]
    return {
        "time_vs_count_query_ratio": time_q / count_q if count_q else 0.0,
        "space_saving_adaptive_count": results[("count", "adaptive")].space_saving,
    }


SPEC = register(
    name="ablation_time_windows",
    suite="ablation",
    fn=collect,
    params={"batches": 4, "batch_size": 16384},
    quick_params={"batches": 2, "batch_size": 8192},
    report=report,
    check=check,
    metrics=metrics,
    tuples=lambda results: sum(r.tuples for r in results.values()),
    tolerance=0.35,
)


def bench_ablation_time_windows(benchmark):
    from repro.bench import run_pytest_benchmark

    run_pytest_benchmark(SPEC, benchmark)


if __name__ == "__main__":
    import sys

    from repro.bench import spec_main

    sys.exit(spec_main(SPEC))
