"""The logical-plan IR the rewrite rules operate on.

The binder (:mod:`.binder`) turns a parsed script plus the planner's
physical plan into a small tree of frozen nodes — scan, filter, project,
window-aggregate, join, order/limit, derive — each carrying just enough
catalogue knowledge (per-column codec hints and statistics) for the cost
model to price rewrites.  Rules rewrite this tree; the driver then lowers
the surviving annotations back onto the physical plan
(:class:`~repro.sql.planner.Plan`), which remains the execution contract.

Nodes are immutable: every rewrite builds a new tree via
:func:`dataclasses.replace`, so a rule can never corrupt the plan it was
given (CSD008 enforces this purity statically).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from ..sql.planner import PredicateNode
from ..stream.window import WindowSpec


@dataclass(frozen=True)
class ColumnInfo:
    """Catalogue knowledge about one stream column.

    ``codec_hint`` is set when the engine pins a codec (``static:<name>``
    modes); the statistics fields are populated only when the caller can
    sample the stream (``has_stats``), e.g. the differential oracle binds
    them from the case's batches and ``repro explain --stats`` from a
    seeded sample.  Rules that need statistics to win must refuse to fire
    without them.
    """

    name: str
    kind: str = "int"
    size_c: int = 8
    codec_hint: str = ""
    has_stats: bool = False
    avg_run_length: float = 0.0
    distinct: int = 0
    min_value: int = 0
    max_value: int = 0


class LogicalNode:
    """Base class of the logical plan nodes (all frozen dataclasses)."""


@dataclass(frozen=True)
class ScanNode(LogicalNode):
    """Read a stream; optionally filter and project inside the scan.

    ``columns`` is what the scan emits (projection pruning shrinks it);
    ``predicate`` is a filter evaluated on the compressed representation
    before rows leave the scan (predicate pushdown moves it here).
    """

    stream: str
    columns: Tuple[str, ...]
    infos: Tuple[ColumnInfo, ...]
    #: columns the query actually touches (catalogue knowledge bound by
    #: the planner's profile; the prune rule shrinks ``columns`` to this)
    referenced: Tuple[str, ...] = ()
    predicate: Optional[PredicateNode] = None

    def info_of(self, name: str) -> Optional[ColumnInfo]:
        for info in self.infos:
            if info.name == name:
                return info
        return None


@dataclass(frozen=True)
class MorphNode(LogicalNode):
    """Recompress one column of the child's output into another format.

    Mid-pipeline format morphing (MorphStore's holistic processing
    model): the column still *arrives* in its wire format — the morph is
    a server-side representation change before the downstream operator
    reads it, e.g. RLE runs re-encoded as bitmap planes ahead of an
    equality-heavy predicate.  The morph rule inserts this node above a
    scan and rewrites the scanned column's ``codec_hint`` to
    ``to_codec`` so the coster prices the downstream plan on the new
    layout; this node itself prices the one-off conversion.
    """

    child: LogicalNode
    column: str
    from_codec: str
    to_codec: str


@dataclass(frozen=True)
class FilterNode(LogicalNode):
    """Row filter above its child (the naive position of WHERE)."""

    child: LogicalNode
    predicate: PredicateNode


@dataclass(frozen=True)
class WindowAggNode(LogicalNode):
    """Count/time-window aggregation with optional grouping.

    ``aggregates`` holds ``(func, source_column)`` pairs (``"*"`` for
    ``count(*)``); ``fuse_column`` is set by the filter+aggregate fusion
    rule: the upstream predicate is evaluated at run granularity on that
    column and the column stays run-structured through aggregation.
    """

    child: LogicalNode
    window: WindowSpec
    group_keys: Tuple[str, ...]
    aggregates: Tuple[Tuple[str, str], ...]
    fuse_column: str = ""


@dataclass(frozen=True)
class ProjectNode(LogicalNode):
    """Shape the final output columns (optionally distinct)."""

    child: LogicalNode
    outputs: Tuple[str, ...]
    distinct: bool = False


@dataclass(frozen=True)
class OrderLimitNode(LogicalNode):
    """Per-window ORDER BY keys plus the optional LIMIT row cap."""

    child: LogicalNode
    keys: Tuple[Tuple[str, bool], ...]  # (output name, descending)
    limit: Optional[int] = None


@dataclass(frozen=True)
class DeriveNode(LogicalNode):
    """A derived stream definition consumed by downstream window sources.

    ``consumers`` counts the window sources reading the derived stream;
    the common-subplan rule sets ``shared`` so the subplan is computed
    once per batch instead of once per consumer.
    """

    name: str
    child: LogicalNode
    consumers: int = 1
    shared: bool = False


@dataclass(frozen=True)
class JoinSideInfo:
    """One partition-window side of a join, for rendering and costing."""

    binding: str
    key_column: str
    probe_column: str
    outer: bool = False


@dataclass(frozen=True)
class JoinNode(LogicalNode):
    """Window x partition-state join (comma form and explicit form)."""

    child: LogicalNode
    window: WindowSpec
    sides: Tuple[JoinSideInfo, ...]


def transform(
    node: LogicalNode, fn: Callable[[LogicalNode], LogicalNode]
) -> LogicalNode:
    """Bottom-up rewrite: apply ``fn`` to every node, children first."""
    updates = {}
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, LogicalNode):
            rewritten = transform(value, fn)
            if rewritten is not value:
                updates[f.name] = rewritten
    if updates:
        node = dataclasses.replace(node, **updates)
    return fn(node)


def iter_nodes(node: LogicalNode) -> Iterator[LogicalNode]:
    """Pre-order traversal of a logical tree."""
    yield node
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, LogicalNode):
            yield from iter_nodes(value)


def find_scan(node: LogicalNode) -> Optional[ScanNode]:
    """The (single) scan of a logical tree, or None."""
    for n in iter_nodes(node):
        if isinstance(n, ScanNode):
            return n
    return None
