"""Compression-aware query optimizer: logical IR, rewrite rules, chooser.

The pipeline is ``bind`` (physical plan -> naive logical tree),
``RULES`` (cost-gated rewrites: projection pruning, predicate pushdown,
selection reordering, filter+aggregate run fusion, common-subplan
sharing, format morphing), and a chooser that keeps the baseline plan
whenever rewriting is not estimated cheaper.  See ``docs/optimizer.md``.
"""

from .binder import bind, schema_infos, stats_from_columns
from .cost import CostContext, plan_cost, predicate_columns
from .explain import plan_digest, render_json, render_text
from .info import MorphDecision, OptimizerInfo, RuleFiring
from .logical import (
    ColumnInfo,
    DeriveNode,
    FilterNode,
    JoinNode,
    JoinSideInfo,
    LogicalNode,
    MorphNode,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
    WindowAggNode,
    find_scan,
    iter_nodes,
    transform,
)
from .optimizer import OptimizeResult, optimize_plan, plan_for_engine
from .rules import (
    RULES,
    CommonSubplanSharing,
    FilterAggFusion,
    FormatMorph,
    PredicatePushdown,
    ProjectionPrune,
    RewriteRule,
    SelectionReorder,
    simplify_predicate,
)

__all__ = [
    "CostContext",
    "ColumnInfo",
    "CommonSubplanSharing",
    "DeriveNode",
    "FilterAggFusion",
    "FilterNode",
    "FormatMorph",
    "JoinNode",
    "JoinSideInfo",
    "LogicalNode",
    "MorphDecision",
    "MorphNode",
    "OptimizeResult",
    "OptimizerInfo",
    "OrderLimitNode",
    "PredicatePushdown",
    "ProjectionPrune",
    "ProjectNode",
    "RewriteRule",
    "RuleFiring",
    "RULES",
    "ScanNode",
    "SelectionReorder",
    "WindowAggNode",
    "bind",
    "find_scan",
    "iter_nodes",
    "optimize_plan",
    "plan_cost",
    "plan_digest",
    "plan_for_engine",
    "predicate_columns",
    "render_json",
    "render_text",
    "schema_infos",
    "simplify_predicate",
    "stats_from_columns",
    "transform",
]
