"""The rewrite rule catalogue.

Every rule is a pure plan-to-plan transform: it reads a logical tree,
returns a rewritten tree (or the input unchanged) plus a record of what
it did, and never touches compressed payloads, the wall clock, or any
mutable state (CSD008 enforces this statically).  The base class owns
the cost gate: a rule's rewrite is kept only when the cost model prices
it strictly below the plan it was handed — "refuses to fire when it
loses" is therefore a property of the framework, not of each rule's
discipline.

Rules must be registered in the static :data:`RULES` table to run; the
driver applies them in table order, threading the tree through.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, List, Optional, Tuple

from ..sql.planner import LiteralPredicate, PredicateGroup, PredicateNode
from .cost import (
    MORPH_TARGETS,
    CostContext,
    plan_cost,
    predicate_columns,
    predicate_leaf_cost,
    run_length_of,
    selectivity,
)
from .info import RuleFiring
from .logical import (
    DeriveNode,
    FilterNode,
    JoinNode,
    LogicalNode,
    MorphNode,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
    WindowAggNode,
    iter_nodes,
    transform,
)

#: relative margin a rewrite must clear to be kept — guards against
#: "wins" that are floating-point noise on an otherwise identical plan
COST_MARGIN = 1e-9

#: aggregate functions with a run-aware fast path in the executor
FUSABLE_AGGS = frozenset({"sum", "avg", "min", "max", "count"})


class RewriteRule:
    """Base class: subclasses implement :meth:`rewrite`, the framework
    prices the candidate and refuses rewrites the cost model dislikes."""

    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def rewrite(
        self, root: LogicalNode, ctx: CostContext
    ) -> Tuple[LogicalNode, Tuple[RuleFiring, ...]]:
        raise NotImplementedError

    def apply(
        self, root: LogicalNode, ctx: CostContext
    ) -> Tuple[LogicalNode, Tuple[RuleFiring, ...]]:
        candidate, firings = self.rewrite(root, ctx)
        if not firings or candidate is root:
            return root, ()
        before = plan_cost(root, ctx)
        after = plan_cost(candidate, ctx)
        if not after < before * (1.0 - COST_MARGIN):
            return root, ()
        return candidate, firings


class ProjectionPrune(RewriteRule):
    """Shrink the scan to the columns the query references.

    The binder's naive scan emits every schema column; the planner's
    query profile knows which ones any operator actually reads.  Refuses
    when the scan is already minimal or nothing is referenced (a bare
    ``count(*)`` still needs one column for row counts).
    """

    name = "prune"
    description = "project only referenced columns out of the scan"

    def rewrite(self, root, ctx):
        firings: List[RuleFiring] = []

        def visit(node: LogicalNode) -> LogicalNode:
            if not isinstance(node, ScanNode) or not node.referenced:
                return node
            keep = tuple(n for n in node.columns if n in node.referenced)
            if not keep or len(keep) == len(node.columns):
                return node
            dropped = len(node.columns) - len(keep)
            firings.append(
                RuleFiring(
                    rule=self.name,
                    detail=f"scan {node.stream}: {len(node.columns)} -> "
                    f"{len(keep)} columns ({dropped} pruned)",
                )
            )
            return dataclasses.replace(
                node,
                columns=keep,
                infos=tuple(i for i in node.infos if i.name in keep),
            )

        return transform(root, visit), tuple(firings)


class PredicatePushdown(RewriteRule):
    """Move a filter directly above a scan into the scan itself.

    Inside the scan the predicate is evaluated on the compressed
    representation (runs / planes / codes) and non-predicate columns
    only materialize for surviving rows.  The cost gate refuses the push
    when it cannot help — e.g. the scan emits only predicate columns, or
    statistics say the predicate keeps everything.
    """

    name = "pushdown"
    description = "evaluate WHERE on the compressed scan representation"

    def rewrite(self, root, ctx):
        firings: List[RuleFiring] = []

        def visit(node: LogicalNode) -> LogicalNode:
            if not isinstance(node, FilterNode):
                return node
            child = node.child
            if not isinstance(child, ScanNode) or child.predicate is not None:
                return node
            cols = predicate_columns(node.predicate)
            if not cols <= set(child.columns):
                return node
            firings.append(
                RuleFiring(
                    rule=self.name,
                    detail=f"filter on {', '.join(sorted(cols))} "
                    f"pushed into scan {child.stream}",
                )
            )
            return dataclasses.replace(child, predicate=node.predicate)

        return transform(root, visit), tuple(firings)


class SelectionReorder(RewriteRule):
    """Order a top-level AND cascade cheapest-and-most-selective first.

    Marks the conjunction ``ordered`` so the executor evaluates it as a
    short-circuit cascade (each conjunct sees only prior survivors) and
    sorts the conjuncts by estimated selectivity, then per-row cost.
    Only the *top-level* AND of a filter is eligible — that is the only
    shape the executor cascades.
    """

    name = "reorder"
    description = "cascade AND conjuncts in selectivity order"

    def _order(
        self, group: PredicateGroup, ctx: CostContext
    ) -> Optional[PredicateGroup]:
        if group.op != "and" or group.ordered or len(group.children) < 2:
            return None

        def key(pair):
            index, child = pair
            if isinstance(child, LiteralPredicate):
                info = ctx.info(child.column)
                return (
                    selectivity(child, info),
                    predicate_leaf_cost(child, info),
                    index,
                )
            # nested groups are priced conservatively: evaluate last
            return (1.0, float("inf"), index)

        ranked = sorted(enumerate(group.children), key=key)
        return dataclasses.replace(
            group, children=tuple(child for _, child in ranked), ordered=True
        )

    def rewrite(self, root, ctx):
        firings: List[RuleFiring] = []

        def visit(node: LogicalNode) -> LogicalNode:
            predicate = None
            if isinstance(node, (FilterNode, ScanNode)):
                predicate = node.predicate
            if not isinstance(predicate, PredicateGroup):
                return node
            ordered = self._order(predicate, ctx)
            if ordered is None:
                return node
            firings.append(
                RuleFiring(
                    rule=self.name,
                    detail="AND cascade ordered: "
                    + " -> ".join(
                        _brief_predicate(c) for c in ordered.children
                    ),
                )
            )
            return dataclasses.replace(node, predicate=ordered)

        return transform(root, visit), tuple(firings)


class FilterAggFusion(RewriteRule):
    """Fuse a single-column filter with a run-aware global aggregate.

    When the predicate touches exactly one column, that column feeds an
    aggregate, and the aggregation is global (no GROUP BY — the grouped
    path has no run support), the filter can be evaluated per *run* and
    the surviving runs aggregated without ever expanding to rows.  Run
    evidence is required: sampled statistics showing runs, or an RLE
    codec pinned on the stream; otherwise the cost gate sees no win and
    the rule refuses.
    """

    name = "fusion"
    description = "filter and aggregate one column at run granularity"

    def rewrite(self, root, ctx):
        firings: List[RuleFiring] = []

        def visit(node: LogicalNode) -> LogicalNode:
            if not isinstance(node, WindowAggNode):
                return node
            if node.group_keys or node.fuse_column:
                return node
            predicate = None
            if isinstance(node.child, FilterNode):
                predicate = node.child.predicate
            elif isinstance(node.child, ScanNode):
                predicate = node.child.predicate
            if predicate is None:
                return node
            cols = predicate_columns(predicate)
            if len(cols) != 1:
                return node
            (column,) = cols
            if not any(
                source == column and func in FUSABLE_AGGS
                for func, source in node.aggregates
            ):
                return node
            info = ctx.info(column)
            if run_length_of(info) <= 1.0:
                return node
            firings.append(
                RuleFiring(
                    rule=self.name,
                    detail=f"filter+aggregate fused on {column} "
                    f"(est. run length {run_length_of(info):.1f})",
                )
            )
            return dataclasses.replace(node, fuse_column=column)

        return transform(root, visit), tuple(firings)


class CommonSubplanSharing(RewriteRule):
    """Share work that the naive plan would repeat.

    Two shapes: a derived stream consumed by more than one window source
    is computed once per batch instead of once per consumer; and a
    predicate tree with repeated subterms is simplified by boolean
    identities — duplicate removal, absorption (``a OR (a AND b)`` is
    ``a``), and common-conjunct factoring out of an OR of ANDs.
    """

    name = "cse"
    description = "share derived subplans and repeated predicate terms"

    def rewrite(self, root, ctx):
        firings: List[RuleFiring] = []

        def visit(node: LogicalNode) -> LogicalNode:
            if isinstance(node, DeriveNode):
                if node.shared or node.consumers < 2:
                    return node
                firings.append(
                    RuleFiring(
                        rule=self.name,
                        detail=f"derived stream {node.name} computed once "
                        f"for {node.consumers} consumers",
                    )
                )
                return dataclasses.replace(node, shared=True)
            if isinstance(node, (FilterNode, ScanNode)):
                predicate = node.predicate
                if predicate is None:
                    return node
                simplified, notes = simplify_predicate(predicate)
                if not notes:
                    return node
                firings.append(
                    RuleFiring(
                        rule=self.name,
                        detail="predicate simplified: " + ", ".join(notes),
                    )
                )
                return dataclasses.replace(node, predicate=simplified)
            return node

        return transform(root, visit), tuple(firings)


class FormatMorph(RewriteRule):
    """Recompress a run-encoded predicate column into bitmap planes.

    Mid-pipeline format morphing: when a column arrives run-length
    encoded (``rle`` / ``dict+rle``) but the plan touches it *only*
    through equality predicates, the server can re-encode it once into
    the matching plane format (``bitmap`` / ``dict+bitmap``) and answer
    every ``==``/``!=`` literal by unpacking a single plane.  The rule
    rewrites the scanned column's hint to the morph target (so the
    downstream plan is priced on planes) and inserts a
    :class:`MorphNode` charging the one-off conversion; the framework's
    cost gate keeps the morph only when the plane savings beat that
    conversion.  Columns needing values, row positions, or any
    non-equality comparison are refused — the server applies the same
    gate at run time, so the naive run/decode path always remains the
    fallback.
    """

    name = "morph"
    description = "re-encode a run column as planes for equality predicates"

    def rewrite(self, root, ctx):
        firings: List[RuleFiring] = []
        blocked = _columns_used_outside_scan_predicates(root)

        def visit(node: LogicalNode) -> LogicalNode:
            if not isinstance(node, ScanNode) or node.predicate is None:
                return node
            candidates = []
            for column in sorted(predicate_columns(node.predicate)):
                info = node.info_of(column) or ctx.info(column)
                target = MORPH_TARGETS.get(info.codec_hint)
                if target is None or column in blocked:
                    continue
                if not _equality_only(node.predicate, column):
                    continue
                candidates.append((column, info.codec_hint, target))
            if not candidates:
                return node
            targets = {column: target for column, _, target in candidates}
            out: LogicalNode = dataclasses.replace(
                node,
                infos=tuple(
                    dataclasses.replace(i, codec_hint=targets[i.name])
                    if i.name in targets
                    else i
                    for i in node.infos
                ),
            )
            for column, source, target in candidates:
                firings.append(
                    RuleFiring(
                        rule=self.name,
                        detail=f"{column} morphed {source} -> {target} "
                        "(equality-only predicate column)",
                    )
                )
                out = MorphNode(
                    child=out,
                    column=column,
                    from_codec=source,
                    to_codec=target,
                )
            return out

        return transform(root, visit), tuple(firings)


def _equality_only(predicate: PredicateNode, column: str) -> bool:
    """Whether every leaf on ``column`` is an ``==``/``!=`` literal."""
    if isinstance(predicate, LiteralPredicate):
        return predicate.column != column or predicate.op in ("==", "!=")
    assert isinstance(predicate, PredicateGroup)
    return all(_equality_only(child, column) for child in predicate.children)


def _columns_used_outside_scan_predicates(root: LogicalNode) -> frozenset:
    """Column names any operator reads beyond a scan's predicate.

    Conservative by construction: output aliases count as used names, so
    a column shadowed by an alias is refused rather than morphed.
    """
    used: set = set()
    for node in iter_nodes(root):
        if isinstance(node, FilterNode):
            used |= predicate_columns(node.predicate)
        elif isinstance(node, WindowAggNode):
            used.update(node.group_keys)
            used.update(
                source for _, source in node.aggregates if source != "*"
            )
            if node.window.time_column:
                used.add(node.window.time_column)
        elif isinstance(node, ProjectNode):
            used.update(node.outputs)
        elif isinstance(node, OrderLimitNode):
            used.update(name for name, _ in node.keys)
        elif isinstance(node, JoinNode):
            for side in node.sides:
                used.add(side.key_column)
                used.add(side.probe_column)
    return frozenset(used)


def simplify_predicate(
    node: PredicateNode,
) -> Tuple[PredicateNode, Tuple[str, ...]]:
    """Boolean simplification preserving exact three-valued-free semantics.

    Applies, bottom-up: duplicate-child removal, single-child collapse,
    absorption, and common-conjunct factoring of an OR whose children
    are all ANDs.  Returns the (possibly new) tree and a note per
    identity applied, in deterministic order.
    """
    if isinstance(node, LiteralPredicate):
        return node, ()
    assert isinstance(node, PredicateGroup)
    notes: List[str] = []
    children: List[PredicateNode] = []
    for child in node.children:
        simplified, child_notes = simplify_predicate(child)
        notes.extend(child_notes)
        children.append(simplified)

    deduped: List[PredicateNode] = []
    for child in children:
        if child in deduped:
            notes.append(f"dedup {_brief_predicate(child)}")
        else:
            deduped.append(child)
    children = deduped

    # absorption: x OP (x OP' ...) == x  (for and/or duals)
    dual = "or" if node.op == "and" else "and"
    absorbed: List[PredicateNode] = []
    for child in children:
        eaten = False
        for other in children:
            if other is child:
                continue
            if (
                isinstance(child, PredicateGroup)
                and child.op == dual
                and other in child.children
            ):
                eaten = True
                break
        if eaten:
            notes.append(f"absorb {_brief_predicate(child)}")
        else:
            absorbed.append(child)
    children = absorbed

    if node.op == "or" and len(children) > 1:
        factored = _factor_common_conjunct(children)
        if factored is not None:
            common, rest = factored
            notes.append(f"factor {_brief_predicate(common)}")
            new = PredicateGroup(op="and", children=(common, rest))
            return new, tuple(notes)

    if len(children) == 1:
        return children[0], tuple(notes)
    if not notes:
        return node, ()
    return dataclasses.replace(node, children=tuple(children)), tuple(notes)


def _factor_common_conjunct(
    children: List[PredicateNode],
) -> Optional[Tuple[PredicateNode, PredicateNode]]:
    """``(a AND b) OR (a AND c)`` -> ``(a, b OR c)`` when ``a`` is shared."""
    if not all(
        isinstance(c, PredicateGroup) and c.op == "and" for c in children
    ):
        return None
    groups = [c for c in children if isinstance(c, PredicateGroup)]
    common = None
    for term in groups[0].children:
        if all(term in g.children for g in groups[1:]):
            common = term
            break
    if common is None:
        return None
    residuals: List[PredicateNode] = []
    for g in groups:
        remaining = tuple(c for c in g.children if c != common)
        if not remaining:
            return None  # one branch is exactly the common term: OR is common
        residuals.append(
            remaining[0]
            if len(remaining) == 1
            else dataclasses.replace(g, children=remaining)
        )
    return common, PredicateGroup(op="or", children=tuple(residuals))


def _brief_predicate(node: PredicateNode) -> str:
    if isinstance(node, LiteralPredicate):
        return f"{node.column} {node.op} {node.literal}"
    return f" {node.op} ".join(
        f"({_brief_predicate(c)})" for c in node.children
    )


#: the static rule table the driver executes, in order.  CSD008 checks
#: that every RewriteRule subclass in this package is listed here.
RULES: Tuple[RewriteRule, ...] = (
    ProjectionPrune(),
    PredicatePushdown(),
    SelectionReorder(),
    FilterAggFusion(),
    CommonSubplanSharing(),
    FormatMorph(),
)
