"""Stable text/JSON renderings of logical plans, plus the plan digest.

The renderings are the contract behind ``python -m repro explain`` and
the golden snapshot tests: output depends only on the plan's structure
(never on timings, dict ordering, or floating-point cost values), so a
golden file changes exactly when a plan shape changes.

The digest hashes the same structural dict the JSON rendering is built
from, minus the decision block — two plans with the same shape have the
same digest regardless of which statistics were bound when they were
optimized.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from ..sql.planner import LiteralPredicate, PredicateGroup, PredicateNode
from ..stream.window import WindowSpec
from .info import OptimizerInfo
from .logical import (
    DeriveNode,
    FilterNode,
    JoinNode,
    LogicalNode,
    MorphNode,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
    WindowAggNode,
)


def render_predicate(node: PredicateNode) -> str:
    if isinstance(node, LiteralPredicate):
        return f"{node.column} {node.op} {node.literal}"
    assert isinstance(node, PredicateGroup)
    joined = f" {node.op} ".join(
        f"({render_predicate(c)})" for c in node.children
    )
    if node.op == "and" and node.ordered:
        return f"[cascade] {joined}"
    return joined


def render_window(window: WindowSpec) -> str:
    if window.mode == "count":
        return f"count({window.size} slide {window.slide})"
    if window.mode == "time":
        return (
            f"time({window.size} slide {window.slide} on {window.time_column})"
        )
    if window.mode == "partition":
        return f"partition({window.partition_by} rows {window.rows})"
    return "unbounded"


def _node_dict(node: LogicalNode) -> Dict[str, Any]:
    """Structural dict for one node (children under ``input``)."""
    if isinstance(node, ScanNode):
        d: Dict[str, Any] = {
            "node": "scan",
            "stream": node.stream,
            "columns": list(node.columns),
        }
        if node.predicate is not None:
            d["predicate"] = render_predicate(node.predicate)
        hints = sorted(
            {i.codec_hint for i in node.infos if i.codec_hint}
        )
        if hints:
            d["codec"] = hints[0] if len(hints) == 1 else hints
        return d
    if isinstance(node, MorphNode):
        return {
            "node": "morph",
            "column": node.column,
            "from": node.from_codec,
            "to": node.to_codec,
            "input": _node_dict(node.child),
        }
    if isinstance(node, FilterNode):
        return {
            "node": "filter",
            "predicate": render_predicate(node.predicate),
            "input": _node_dict(node.child),
        }
    if isinstance(node, WindowAggNode):
        d = {
            "node": "window-agg",
            "window": render_window(node.window),
            "aggregates": [
                f"{func}({source})" for func, source in node.aggregates
            ],
            "input": _node_dict(node.child),
        }
        if node.group_keys:
            d["group_by"] = list(node.group_keys)
        if node.fuse_column:
            d["fused_on"] = node.fuse_column
        return d
    if isinstance(node, ProjectNode):
        d = {
            "node": "project",
            "outputs": list(node.outputs),
            "input": _node_dict(node.child),
        }
        if node.distinct:
            d["distinct"] = True
        return d
    if isinstance(node, OrderLimitNode):
        d = {
            "node": "order-limit",
            "keys": [
                f"{name} {'desc' if desc else 'asc'}"
                for name, desc in node.keys
            ],
            "input": _node_dict(node.child),
        }
        if node.limit is not None:
            d["limit"] = node.limit
        return d
    if isinstance(node, DeriveNode):
        d = {
            "node": "derive",
            "name": node.name,
            "consumers": node.consumers,
            "input": _node_dict(node.child),
        }
        if node.shared:
            d["shared"] = True
        return d
    if isinstance(node, JoinNode):
        return {
            "node": "join",
            "window": render_window(node.window),
            "sides": [
                f"{s.binding}[{s.key_column}] "
                f"{'left outer' if s.outer else 'inner'} on {s.probe_column}"
                for s in node.sides
            ],
            "input": _node_dict(node.child),
        }
    raise TypeError(f"cannot render node type {type(node).__name__}")


def plan_digest(root: LogicalNode) -> str:
    """Short stable hash of the plan structure (costs/stats excluded)."""
    payload = json.dumps(_node_dict(root), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def render_json(
    root: LogicalNode, info: Optional[OptimizerInfo] = None
) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"plan": _node_dict(root)}
    doc["digest"] = plan_digest(root)
    if info is not None:
        doc["optimizer"] = {
            "rules_fired": list(info.rules_fired),
            "firings": [
                {"rule": f.rule, "detail": f.detail} for f in info.firings
            ],
            "fallback": info.fallback,
        }
        if info.morphs:
            doc["optimizer"]["morphs"] = [
                f"{m.column}: {m.from_codec} -> {m.to_codec}"
                for m in info.morphs
            ]
    return doc


def _text_lines(d: Dict[str, Any], depth: int, out: List[str]) -> None:
    indent = "  " * depth
    label = d["node"]
    attrs = []
    for key in sorted(d):
        if key in ("node", "input"):
            continue
        value = d[key]
        if isinstance(value, list):
            value = ", ".join(str(v) for v in value)
        attrs.append(f"{key}={value}")
    line = f"{indent}-> {label}"
    if attrs:
        line += "  [" + "; ".join(attrs) + "]"
    out.append(line)
    if "input" in d:
        _text_lines(d["input"], depth + 1, out)


def render_text(
    root: LogicalNode, info: Optional[OptimizerInfo] = None
) -> str:
    lines: List[str] = []
    _text_lines(_node_dict(root), 0, lines)
    lines.append(f"digest: {plan_digest(root)}")
    if info is not None:
        if info.rules_fired:
            lines.append("rules fired: " + ", ".join(info.rules_fired))
            for f in info.firings:
                lines.append(f"  {f.rule}: {f.detail}")
        else:
            lines.append("rules fired: (none)")
        if info.fallback:
            lines.append("chooser: kept baseline plan (no cheaper rewrite)")
    return "\n".join(lines)
