"""Optimizer decision records attached to physical plans.

This module is intentionally free of planner imports so the physical plan
dataclasses can reference :class:`OptimizerInfo` without a cycle: the
optimizer imports the planner, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RuleFiring:
    """One rewrite a rule performed, with a human-readable detail."""

    rule: str
    detail: str


@dataclass(frozen=True)
class MorphDecision:
    """One mid-pipeline format morph the chosen plan performs.

    The named column arrives on the wire as ``from_codec`` and is
    recompressed server-side into ``to_codec`` before the operators that
    prefer the target layout read it.
    """

    column: str
    from_codec: str
    to_codec: str


@dataclass(frozen=True)
class OptimizerInfo:
    """What the optimizer did to one plan (surfaced in ``ServerReport``).

    ``fallback=True`` means the cost-based chooser kept the baseline plan
    shape: either no rule found a rewrite, or the rewritten plan was not
    estimated cheaper than the bound baseline.
    """

    rules_fired: Tuple[str, ...] = ()
    firings: Tuple[RuleFiring, ...] = ()
    #: estimated abstract cost of the chosen plan (arbitrary units — only
    #: comparisons between the two numbers below are meaningful)
    estimated_cost: float = 0.0
    #: estimated cost of the naive bound plan before any rewrite
    baseline_cost: float = 0.0
    #: stable hash of the chosen plan's structure (costs excluded), used
    #: to correlate EXPLAIN output with serving-layer reports
    plan_digest: str = ""
    fallback: bool = False
    #: mid-pipeline format morphs the server must perform (morph rule)
    morphs: Tuple[MorphDecision, ...] = ()
