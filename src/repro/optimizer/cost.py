"""Abstract cost estimation for logical plans.

The coster prices a logical tree in byte-touch units: every node pays
proportionally to the rows it processes times the byte width of the
columns it touches, with the compressed-representation discounts of the
engine's cost model (Eqs. 8/9): a run-structured column is touched at
run granularity (memory traffic divided by r', here the average run
length), a bitmap/PLWAH column answers equality predicates per plane.
When a :class:`~repro.core.calibration.CalibrationTable` is supplied the
per-codec decompress coefficients weight the scan term, hooking the
rewriter to the same calibrated numbers the adaptive selector prices
codecs with.

Only comparisons between estimates matter — the chooser accepts a
rewrite iff its estimate is strictly below the naive bound plan's.
Selectivities default to the classic textbook guesses (1/3 for ranges,
1/distinct for equality) and sharpen when column statistics are bound.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from ..core.calibration import CalibrationTable
from ..sql.planner import LiteralPredicate, PredicateGroup, PredicateNode
from ..stream.window import MODE_PARTITION, MODE_UNBOUNDED
from .logical import (
    ColumnInfo,
    DeriveNode,
    FilterNode,
    JoinNode,
    LogicalNode,
    MorphNode,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
    WindowAggNode,
)

#: codecs whose payloads the server can serve as (value, length) runs
RUN_CODECS = frozenset({"rle", "dict+rle"})
#: codecs served as bit planes for equality predicates
PLANE_CODECS = frozenset({"bitmap", "plwah", "dict+bitmap"})

#: run-to-plane morph targets of the morph rule (see rules.MorphRule)
MORPH_TARGETS = {"rle": "bitmap", "dict+rle": "dict+bitmap"}

#: assumed run length for a run codec hint without sampled statistics
DEFAULT_HINT_RUN_LENGTH = 4.0

#: assumed distinct count for a morph candidate without sampled statistics
DEFAULT_MORPH_DISTINCT = 16.0

#: default selectivities when no statistics are bound (System R lore)
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_EQ_SELECTIVITY = 0.1


@dataclass(frozen=True)
class CostContext:
    """Everything the coster knows about the data behind a plan."""

    infos: Mapping[str, ColumnInfo] = field(default_factory=dict)
    #: rows per batch the estimates are normalized to
    rows: int = 4096
    calibration: Optional[CalibrationTable] = None

    def info(self, name: str) -> ColumnInfo:
        return self.infos.get(name, ColumnInfo(name=name))


def run_length_of(info: ColumnInfo) -> float:
    """Effective average run length (1.0 = no run structure known)."""
    if info.has_stats:
        return max(info.avg_run_length, 1.0)
    if info.codec_hint in RUN_CODECS:
        return DEFAULT_HINT_RUN_LENGTH
    return 1.0


def touch_weight(info: ColumnInfo, ctx: CostContext) -> float:
    """Byte cost of materializing one row of a column out of the scan."""
    weight = float(info.size_c)
    if info.codec_hint and ctx.calibration is not None:
        timing = ctx.calibration.timings.get(info.codec_hint)
        if timing is not None:
            # normalize the codec's per-element decompress coefficient to
            # the identity codec's, so calibrated codec costs reorder the
            # scan term without changing its unit
            base = ctx.calibration.timings.get("identity")
            if base is not None and base.decompress_a > 0:
                weight *= max(timing.decompress_a / base.decompress_a, 1.0)
    if info.codec_hint in RUN_CODECS:
        weight /= run_length_of(info)
    return weight


def selectivity(pred: LiteralPredicate, info: ColumnInfo) -> float:
    """Estimated fraction of rows satisfying one literal predicate."""
    if pred.op in ("==", "!="):
        eq = (
            1.0 / max(info.distinct, 1)
            if info.has_stats and info.distinct > 0
            else DEFAULT_EQ_SELECTIVITY
        )
        return eq if pred.op == "==" else 1.0 - eq
    if not info.has_stats or info.max_value <= info.min_value:
        return DEFAULT_RANGE_SELECTIVITY
    span = float(info.max_value - info.min_value)
    frac = (pred.literal - info.min_value) / span
    frac = min(max(frac, 0.0), 1.0)
    return frac if pred.op in ("<", "<=") else 1.0 - frac


def predicate_leaf_cost(pred: LiteralPredicate, info: ColumnInfo) -> float:
    """Per-row cost of evaluating one predicate on its representation."""
    weight = float(info.size_c)
    if info.codec_hint in RUN_CODECS:
        weight /= run_length_of(info)
    elif info.codec_hint in PLANE_CODECS and pred.op in ("==", "!="):
        weight /= 8.0  # one unpacked plane instead of per-row codes
    return weight


def predicate_cost(
    node: PredicateNode, rows: float, ctx: CostContext
) -> Tuple[float, float]:
    """(evaluation cost, combined selectivity) of a predicate tree.

    An ``ordered`` AND group is priced as a cascade: each conjunct only
    evaluates the survivors of the previous one.  Unordered groups pay
    every predicate over every input row, matching the executor.
    """
    if isinstance(node, LiteralPredicate):
        info = ctx.info(node.column)
        return rows * predicate_leaf_cost(node, info), selectivity(node, info)
    assert isinstance(node, PredicateGroup)
    cost = 0.0
    if node.op == "and":
        sel = 1.0
        remaining = rows
        for child in node.children:
            child_cost, child_sel = predicate_cost(
                child, remaining if node.ordered else rows, ctx
            )
            cost += child_cost
            sel *= child_sel
            if node.ordered:
                remaining *= child_sel
        return cost, sel
    miss = 1.0
    for child in node.children:
        child_cost, child_sel = predicate_cost(child, rows, ctx)
        cost += child_cost
        miss *= 1.0 - child_sel
    return cost, 1.0 - miss


def scan_context(node: ScanNode, ctx: CostContext) -> CostContext:
    """The context with the scan's own column infos taking precedence.

    The binder seeds scan infos from the global catalogue, so this is
    normally the identity; it matters when a rule rewrites a scan-local
    info — the morph rule changes one column's ``codec_hint`` to the
    morph target, and the scan must be priced on that representation.
    """
    overrides = {info.name: info for info in node.infos}
    if all(ctx.infos.get(name) is info for name, info in overrides.items()):
        return ctx
    merged = dict(ctx.infos)
    merged.update(overrides)
    return dataclasses.replace(ctx, infos=merged)


def _node_cost(node: LogicalNode, ctx: CostContext) -> Tuple[float, float]:
    """(cost, output rows) of one logical subtree."""
    if isinstance(node, ScanNode):
        ctx = scan_context(node, ctx)
        rows = float(ctx.rows)
        pred_cols = (
            predicate_columns(node.predicate) if node.predicate else frozenset()
        )
        cost = 0.0
        out_rows = rows
        if node.predicate is not None:
            pcost, sel = predicate_cost(node.predicate, rows, ctx)
            cost += pcost
            out_rows = rows * sel
        for name in node.columns:
            # predicate columns are touched by the predicate itself; the
            # remaining columns only materialize for surviving rows
            touched = out_rows if name not in pred_cols else 0.0
            cost += touched * touch_weight(ctx.info(name), ctx)
        return cost, out_rows

    if isinstance(node, MorphNode):
        child_cost, rows = _node_cost(node.child, ctx)
        # conversion pays one pass over the source representation (run
        # granularity) plus building the target's planes, amortized by the
        # decode cache across byte-identical re-sent payloads; the global
        # context still holds the column's *wire* info
        info = ctx.info(node.column)
        read = float(info.size_c)
        if node.from_codec in RUN_CODECS:
            read /= run_length_of(info)
        distinct = (
            float(max(info.distinct, 1))
            if info.has_stats
            else DEFAULT_MORPH_DISTINCT
        )
        build = distinct / 8.0
        return child_cost + float(ctx.rows) * (read + build), rows

    if isinstance(node, FilterNode):
        child_cost, rows = _node_cost(node.child, ctx)
        pcost, sel = predicate_cost(node.predicate, rows, ctx)
        return child_cost + pcost, rows * sel

    if isinstance(node, WindowAggNode):
        child_cost, rows = _node_cost(node.child, ctx)
        cost = child_cost
        for func, source in node.aggregates:
            if source == "*":
                continue
            info = ctx.info(source)
            touched = rows
            if node.fuse_column == source:
                touched = rows / run_length_of(info)
            cost += touched * float(info.size_c)
        for key in node.group_keys:
            cost += rows * float(ctx.info(key).size_c)
        if node.window.mode in (MODE_UNBOUNDED, MODE_PARTITION):
            out_rows = rows
        else:
            out_rows = max(rows / max(node.window.slide, 1), 1.0)
            out_rows *= max(len(node.group_keys) * 8, 1)
        return cost, out_rows

    if isinstance(node, ProjectNode):
        child_cost, rows = _node_cost(node.child, ctx)
        cost = child_cost + rows * len(node.outputs)
        if node.distinct:
            cost += rows * len(node.outputs)
        return cost, rows

    if isinstance(node, OrderLimitNode):
        child_cost, rows = _node_cost(node.child, ctx)
        cost = child_cost + rows * math.log2(rows + 2.0)
        if node.limit is not None:
            rows = min(rows, float(node.limit) * max(rows / 64.0, 1.0))
        return cost, rows

    if isinstance(node, DeriveNode):
        child_cost, rows = _node_cost(node.child, ctx)
        copies = 1 if node.shared else node.consumers
        return child_cost * copies, rows

    if isinstance(node, JoinNode):
        child_cost, rows = _node_cost(node.child, ctx)
        return child_cost + rows * 2.0 * len(node.sides), rows

    raise TypeError(f"cannot cost node type {type(node).__name__}")


def plan_cost(root: LogicalNode, ctx: CostContext) -> float:
    """Total estimated cost of a logical plan (abstract byte-touch units)."""
    cost, _rows = _node_cost(root, ctx)
    return cost


def predicate_columns(node: Optional[PredicateNode]) -> frozenset:
    """Every column referenced anywhere in a predicate tree."""
    if node is None:
        return frozenset()
    if isinstance(node, LiteralPredicate):
        return frozenset({node.column})
    out: frozenset = frozenset()
    for child in node.children:
        out |= predicate_columns(child)
    return out
