"""The optimizer driver: bind, rewrite, choose, lower.

``optimize_plan`` is the whole pipeline for one physical plan: bind the
naive logical tree, run every rule in the static table (each rule's
rewrite survives only if the cost model prices it strictly cheaper),
then have the chooser compare the final tree against the naive baseline
— if rewriting did not help, the baseline plan ships unchanged
(``fallback=True``).  The chosen tree's annotations are then lowered
back onto the physical plan: the (possibly reordered/simplified) WHERE
tree, the fused aggregation column, and the :class:`OptimizerInfo`
decision record that ``ServerReport`` and ``repro explain`` surface.

Lowering never changes what a plan computes — pushdown and pruning are
already how the executor behaves (filters run first, the server only
materializes referenced columns), so those rules alter the *estimate*
and the rendering; cascade ordering and run fusion alter the execution
strategy.  The differential oracle's optimized leg holds every lowered
plan to bit-equality with its naive twin.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.calibration import CalibrationTable
from ..sql.ast import Script
from ..sql.planner import (
    JoinPlan,
    PassthroughPlan,
    Plan,
    Planner,
    PredicateNode,
    WindowAggPlan,
)
from ..sql.parser import parse
from ..stream.schema import Schema
from .binder import bind, schema_infos
from .cost import CostContext, plan_cost
from .explain import plan_digest
from .info import MorphDecision, OptimizerInfo
from .logical import (
    ColumnInfo,
    DeriveNode,
    FilterNode,
    LogicalNode,
    MorphNode,
    ScanNode,
    WindowAggNode,
    iter_nodes,
)
from .rules import RULES


@dataclass
class OptimizeResult:
    """Everything one optimization pass produced."""

    plan: Plan                 # the physical plan to execute (lowered)
    root: LogicalNode          # the chosen logical tree (for rendering)
    baseline_root: LogicalNode  # the naive tree the binder produced
    info: OptimizerInfo


def _extract_where(root: LogicalNode) -> Optional[PredicateNode]:
    for node in iter_nodes(root):
        if isinstance(node, FilterNode):
            return node.predicate
        if isinstance(node, ScanNode) and node.predicate is not None:
            return node.predicate
    return None


def _extract_fuse(root: LogicalNode) -> str:
    for node in iter_nodes(root):
        if isinstance(node, WindowAggNode):
            return node.fuse_column
    return ""


def _lower(plan: Plan, root: LogicalNode, info: OptimizerInfo) -> Plan:
    """Write the chosen tree's annotations back onto the physical plan."""
    if isinstance(plan, WindowAggPlan):
        return dataclasses.replace(
            plan,
            where=_extract_where(root),
            fuse_column=_extract_fuse(root),
            opt=info,
        )
    if isinstance(plan, PassthroughPlan):
        return dataclasses.replace(plan, where=_extract_where(root), opt=info)
    if isinstance(plan, JoinPlan):
        derived = plan.derived
        if derived is not None:
            derive_node = next(
                (n for n in iter_nodes(root) if isinstance(n, DeriveNode)),
                None,
            )
            if derive_node is not None:
                derived = dataclasses.replace(
                    derived, where=_extract_where(derive_node.child)
                )
        return dataclasses.replace(plan, derived=derived, opt=info)
    raise TypeError(f"cannot lower plan type {type(plan).__name__}")


def optimize_plan(
    plan: Plan,
    infos: Optional[Mapping[str, ColumnInfo]] = None,
    script: Optional[Script] = None,
    rows: int = 4096,
    calibration: Optional[CalibrationTable] = None,
) -> OptimizeResult:
    """Bind, rewrite, choose and lower one physical plan."""
    if infos is None:
        infos = schema_infos(plan.schema)
    ctx = CostContext(infos=infos, rows=rows, calibration=calibration)
    baseline = bind(plan, infos, script=script)
    baseline_cost = plan_cost(baseline, ctx)

    root = baseline
    all_firings = []
    for rule in RULES:
        root, firings = rule.apply(root, ctx)
        all_firings.extend(firings)

    estimated_cost = plan_cost(root, ctx)
    fallback = not all_firings or estimated_cost >= baseline_cost
    if fallback:
        root = baseline
        estimated_cost = baseline_cost
        all_firings = []

    rules_fired = []
    for firing in all_firings:
        if firing.rule not in rules_fired:
            rules_fired.append(firing.rule)

    morphs = tuple(
        MorphDecision(
            column=n.column, from_codec=n.from_codec, to_codec=n.to_codec
        )
        for n in iter_nodes(root)
        if isinstance(n, MorphNode)
    )

    info = OptimizerInfo(
        rules_fired=tuple(rules_fired),
        firings=tuple(all_firings),
        estimated_cost=estimated_cost,
        baseline_cost=baseline_cost,
        plan_digest=plan_digest(root),
        fallback=fallback,
        morphs=morphs,
    )
    return OptimizeResult(
        plan=_lower(plan, root, info),
        root=root,
        baseline_root=baseline,
        info=info,
    )


def plan_for_engine(
    catalog: Dict[str, Schema],
    query: str,
    optimize: bool = True,
    codec_hint: str = "",
    calibration: Optional[CalibrationTable] = None,
) -> Plan:
    """Parse, plan and (by default) optimize a query for the engine.

    ``codec_hint`` names a pinned codec (the engine's ``static:<name>``
    modes) so the rules can price run/plane representations; adaptive
    modes pass no hint and rules that need run evidence refuse.
    """
    script = parse(query)
    plan = Planner(catalog).plan(script)
    if not optimize:
        return plan
    infos = schema_infos(plan.schema, codec_hint=codec_hint)
    result = optimize_plan(
        plan, infos, script=script, calibration=calibration
    )
    return result.plan
