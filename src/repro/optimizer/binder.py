"""Bind a parsed script + physical plan to the logical IR.

The binder produces the *naive* logical plan — the tree that mirrors the
SQL evaluation order before any rewrite: a scan of every schema column,
the WHERE filter sitting above it, then aggregation / join / projection /
order-limit.  Rules then earn their keep by visibly improving on this
shape (pushing the filter into the scan, pruning the scan to the
referenced columns, and so on).

Catalogue knowledge rides on the nodes: per-column :class:`ColumnInfo`
(codec hints + sampled statistics) on the scan, and the planner-derived
referenced set the prune rule shrinks to.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..sql.ast import Script
from ..sql.planner import (
    OUT_AGG,
    JoinPlan,
    PassthroughPlan,
    Plan,
    WindowAggPlan,
)
from ..stats import ColumnStats
from ..stream.schema import Schema
from .logical import (
    ColumnInfo,
    DeriveNode,
    FilterNode,
    JoinNode,
    JoinSideInfo,
    LogicalNode,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
    WindowAggNode,
)


def schema_infos(
    schema: Schema,
    codec_hint: str = "",
    stats: Optional[Mapping[str, ColumnStats]] = None,
) -> Dict[str, ColumnInfo]:
    """Per-column catalogue info from a schema plus optional statistics."""
    infos: Dict[str, ColumnInfo] = {}
    for f in schema:
        st = stats.get(f.name) if stats else None
        if st is not None:
            infos[f.name] = ColumnInfo(
                name=f.name,
                kind=f.kind,
                size_c=f.size,
                codec_hint=codec_hint,
                has_stats=True,
                avg_run_length=float(st.avg_run_length),
                distinct=int(st.kindnum),
                min_value=int(st.min_value),
                max_value=int(st.max_value),
            )
        else:
            infos[f.name] = ColumnInfo(
                name=f.name, kind=f.kind, size_c=f.size, codec_hint=codec_hint
            )
    return infos


def stats_from_columns(
    schema: Schema, columns: Mapping[str, np.ndarray]
) -> Dict[str, ColumnStats]:
    """Column statistics from stored-domain value arrays (e.g. a sample)."""
    out: Dict[str, ColumnStats] = {}
    for f in schema:
        values = columns.get(f.name)
        if values is None or len(values) == 0:
            continue
        out[f.name] = ColumnStats.from_values(
            np.asarray(values, dtype=np.int64), size_c=f.size
        )
    return out


def _scan(
    schema: Schema,
    stream: str,
    referenced: Tuple[str, ...],
    infos: Mapping[str, ColumnInfo],
) -> ScanNode:
    names = tuple(f.name for f in schema)
    return ScanNode(
        stream=stream,
        columns=names,
        infos=tuple(infos.get(n, ColumnInfo(name=n)) for n in names),
        referenced=referenced,
    )


def _bind_window_agg(
    plan: WindowAggPlan, infos: Mapping[str, ColumnInfo]
) -> LogicalNode:
    referenced = tuple(sorted(plan.profile.referenced))
    node: LogicalNode = _scan(plan.schema, plan.stream, referenced, infos)
    if plan.where is not None:
        node = FilterNode(child=node, predicate=plan.where)
    aggregates = tuple(
        (o.agg_func or "", o.source_column or "*")
        for o in plan.outputs + plan.hidden_outputs
        if o.kind == OUT_AGG
    )
    node = WindowAggNode(
        child=node,
        window=plan.window,
        group_keys=plan.group_keys,
        aggregates=aggregates,
    )
    node = ProjectNode(child=node, outputs=tuple(o.name for o in plan.outputs))
    if plan.order_by or plan.limit is not None:
        node = OrderLimitNode(
            child=node,
            keys=tuple((k.output, k.desc) for k in plan.order_by),
            limit=plan.limit,
        )
    return node


def _bind_passthrough(
    plan: PassthroughPlan, infos: Mapping[str, ColumnInfo]
) -> LogicalNode:
    referenced = tuple(sorted(plan.profile.referenced))
    node: LogicalNode = _scan(plan.schema, plan.stream, referenced, infos)
    if plan.where is not None:
        node = FilterNode(child=node, predicate=plan.where)
    return ProjectNode(
        child=node,
        outputs=tuple(o.name for o in plan.outputs),
        distinct=plan.distinct,
    )


def _bind_join(
    plan: JoinPlan, infos: Mapping[str, ColumnInfo], script: Optional[Script]
) -> LogicalNode:
    if plan.derived is not None:
        inner = _bind_passthrough(plan.derived, infos)
        name, consumers = _derived_usage(script)
        node: LogicalNode = DeriveNode(
            name=name, child=inner, consumers=consumers
        )
    else:
        referenced = tuple(sorted(plan.profile.referenced))
        node = _scan(plan.schema, plan.stream, referenced, infos)
    node = JoinNode(
        child=node,
        window=plan.window,
        sides=tuple(
            JoinSideInfo(
                binding=s.binding,
                key_column=s.key_column,
                probe_column=s.probe_column,
                outer=s.outer,
            )
            for s in plan.sides
        ),
    )
    return ProjectNode(
        child=node,
        outputs=tuple(o.name for o in plan.outputs),
        distinct=plan.distinct,
    )


def _derived_usage(script: Optional[Script]) -> Tuple[str, int]:
    """Name of the derived stream and how many window sources consume it."""
    if script is None or not script.derived:
        return "derived", 2
    name = script.derived[0].name
    consumers = sum(1 for src in script.main.sources if src.stream == name)
    consumers += sum(
        1 for clause in script.main.joins if clause.source.stream == name
    )
    return name, max(consumers, 1)


def bind(
    plan: Plan,
    infos: Mapping[str, ColumnInfo],
    script: Optional[Script] = None,
) -> LogicalNode:
    """The naive logical plan for one physical plan."""
    if isinstance(plan, WindowAggPlan):
        return _bind_window_agg(plan, infos)
    if isinstance(plan, PassthroughPlan):
        return _bind_passthrough(plan, infos)
    if isinstance(plan, JoinPlan):
        return _bind_join(plan, infos, script)
    raise TypeError(f"cannot bind plan type {type(plan).__name__}")
