"""Timing statistics for the benchmark harness.

A benchmark run is a list of wall-clock samples (seconds per repeat of
the measured callable).  :class:`TimingStats` reduces them to the
summary the JSON schema records: median (the headline number — robust
against a single cold repeat), mean, min/max, p95 (linear-interpolated,
the tail CI watches) and sample standard deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``samples``.

    Matches numpy's default ``linear`` interpolation so the stored p95 is
    what a reader cross-checking with numpy expects.
    """
    if not samples:
        raise ValueError("percentile of an empty sample list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


def median(samples: Sequence[float]) -> float:
    return percentile(samples, 50.0)


def sample_stdev(samples: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for fewer than two samples."""
    n = len(samples)
    if n < 2:
        return 0.0
    mean = sum(samples) / n
    return math.sqrt(sum((s - mean) ** 2 for s in samples) / (n - 1))


@dataclass(frozen=True)
class TimingStats:
    """Summary of one benchmark's repeat timings, all in seconds."""

    samples_s: List[float]
    median_s: float
    mean_s: float
    min_s: float
    max_s: float
    p95_s: float
    stdev_s: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "TimingStats":
        if not samples:
            raise ValueError("a benchmark must produce at least one sample")
        if any(s < 0 for s in samples):
            raise ValueError("negative timing sample")
        ordered = list(samples)
        return cls(
            samples_s=ordered,
            median_s=median(ordered),
            mean_s=sum(ordered) / len(ordered),
            min_s=min(ordered),
            max_s=max(ordered),
            p95_s=percentile(ordered, 95.0),
            stdev_s=sample_stdev(ordered),
        )

    def to_doc(self) -> Dict[str, Union[List[float], float]]:
        return {
            "samples_s": list(self.samples_s),
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "p95_s": self.p95_s,
            "stdev_s": self.stdev_s,
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "TimingStats":
        return cls(
            samples_s=[float(s) for s in doc["samples_s"]],
            median_s=float(doc["median_s"]),
            mean_s=float(doc["mean_s"]),
            min_s=float(doc["min_s"]),
            max_s=float(doc["max_s"]),
            p95_s=float(doc["p95_s"]),
            stdev_s=float(doc["stdev_s"]),
        )
