"""The shared benchmark runner.

One code path executes every registered benchmark the same way:
optional setup, ``warmup`` unmeasured calls, ``repeats`` measured calls
of ``spec.fn(**params)``, then statistics (median/p95/stdev),
tuples-per-second normalization, metric extraction, paper-table
rendering (persisted under ``benchmarks/results/``) and shape checks.
Suite results are grouped into one schema-versioned
``BENCH_<suite>.json`` per suite with full environment capture, which
is what the CI perf gate compares against a committed baseline.
"""

from __future__ import annotations

import datetime as _dt
import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .registry import BenchSpec, Metric, coerce_metrics
from .schema import SCHEMA_VERSION, suite_filename, validate_suite_doc
from .stats import TimingStats

Printer = Callable[[str], None]


def _default_printer(message: str) -> None:
    print(message, flush=True)


def capture_environment(repo_hint: Optional[Path] = None) -> Dict[str, Any]:
    """Snapshot the context a result was measured in.

    ``commit`` is the git HEAD of ``repo_hint`` (or the cwd) and
    ``"unknown"`` outside a checkout — results must stay producible from
    an sdist or a bare results directory.
    """
    import os

    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"

    commit = "unknown"
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_hint) if repo_hint else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if proc.returncode == 0:
            commit = proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "commit": commit,
        "bench_scale": int(os.environ.get("REPRO_BENCH_SCALE", "1")),
    }


@dataclass
class BenchResult:
    """Everything one benchmark run produced."""

    spec: BenchSpec
    params: Dict[str, Any]
    quick: bool
    timing: TimingStats
    metrics: Dict[str, Metric] = field(default_factory=dict)
    tuples: Optional[int] = None
    blocks: List[str] = field(default_factory=list)
    checked: bool = False

    @property
    def tuples_per_second(self) -> Optional[float]:
        if self.tuples is None or self.timing.median_s <= 0:
            return None
        return self.tuples / self.timing.median_s

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.spec.name,
            "suite": self.spec.suite,
            "params": dict(self.params),
            "tolerance": self.spec.tolerance,
            "timing": self.timing.to_doc(),
            "metrics": {
                name: {"value": metric.value, "better": metric.better}
                for name, metric in self.metrics.items()
            },
        }
        if self.tuples is not None:
            doc["tuples"] = int(self.tuples)
            doc["tuples_per_second"] = self.tuples_per_second
        return doc


def run_spec(
    spec: BenchSpec,
    repeats: int = 1,
    warmup: int = 0,
    quick: bool = False,
    check: bool = True,
    write_tables: bool = True,
    printer: Printer = _default_printer,
) -> BenchResult:
    """Execute one benchmark through the shared harness.

    Shape checks run on the last measured result and only at full
    parameters — the assertions are tuned to the default workload sizes,
    so ``quick`` runs skip them (the CI smoke lane gates on the JSON
    compare instead).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    params = spec.run_params(quick=quick)

    if spec.setup is not None:
        spec.setup()
    for _ in range(warmup):
        spec.fn(**params)

    samples: List[float] = []
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = spec.fn(**params)
        samples.append(time.perf_counter() - start)

    bench = BenchResult(
        spec=spec,
        params=params,
        quick=quick,
        timing=TimingStats.from_samples(samples),
    )
    if spec.metrics is not None:
        bench.metrics = coerce_metrics(spec.metrics(result))
    if spec.tuples is not None:
        bench.tuples = int(spec.tuples(result))

    if spec.report is not None:
        bench.blocks = list(spec.report(result))
        for block in bench.blocks:
            printer("\n" + block)
        if write_tables and not quick:
            write_result_tables(bench)

    if check and spec.check is not None:
        if quick:
            printer(
                f"[{spec.name}] quick mode: shape checks skipped "
                "(assertions are tuned to full parameters)"
            )
        else:
            spec.check(result)
            bench.checked = True
    return bench


def write_result_tables(bench: BenchResult) -> Optional[Path]:
    """Persist a benchmark's rendered tables as ``results/<name>.txt``."""
    if not bench.blocks or bench.spec.results_dir is None:
        return None
    results_dir = Path(bench.spec.results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{bench.spec.name}.txt"
    path.write_text("\n\n".join(bench.blocks) + "\n")
    return path


def suite_doc(
    suite: str,
    results: Sequence[BenchResult],
    repeats: int,
    warmup: int,
    quick: bool,
    environment: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble (and validate) one suite's schema-versioned document."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "created_utc": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "quick": quick,
        "repeats": repeats,
        "warmup": warmup,
        "environment": environment or capture_environment(),
        "results": [bench.to_doc() for bench in results],
    }
    validate_suite_doc(doc)
    return doc


def run_suites(
    specs: Sequence[BenchSpec],
    json_dir: Union[str, Path],
    repeats: int = 1,
    warmup: int = 0,
    quick: bool = False,
    check: bool = True,
    write_tables: bool = True,
    printer: Printer = _default_printer,
) -> Dict[str, Path]:
    """Run specs grouped by suite; write one ``BENCH_<suite>.json`` each.

    Returns the mapping suite name -> written JSON path.
    """
    if not specs:
        raise ValueError("no benchmarks selected")
    out_dir = Path(json_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    environment = capture_environment(
        Path(specs[0].results_dir).parent if specs[0].results_dir else None
    )

    by_suite: Dict[str, List[BenchSpec]] = {}
    for spec in specs:
        by_suite.setdefault(spec.suite, []).append(spec)

    written: Dict[str, Path] = {}
    total = len(specs)
    done = 0
    for suite, suite_specs in by_suite.items():
        results: List[BenchResult] = []
        for spec in suite_specs:
            done += 1
            printer(
                f"[{done}/{total}] {spec.name} (suite {suite}"
                f"{', quick' if quick else ''}) ..."
            )
            bench = run_spec(
                spec,
                repeats=repeats,
                warmup=warmup,
                quick=quick,
                check=check,
                write_tables=write_tables,
                printer=printer,
            )
            printer(
                f"[{done}/{total}] {spec.name}: median {bench.timing.median_s:.3f}s"
                + (
                    f", {bench.tuples_per_second:,.0f} tuples/s"
                    if bench.tuples_per_second
                    else ""
                )
            )
            results.append(bench)
        doc = suite_doc(
            suite,
            results,
            repeats=repeats,
            warmup=warmup,
            quick=quick,
            environment=environment,
        )
        path = out_dir / suite_filename(suite)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        printer(f"wrote {path}")
        written[suite] = path
    return written


# ----- per-script entry points ----------------------------------------------


def run_pytest_benchmark(spec: BenchSpec, benchmark: Any) -> None:
    """Adapter for the ``pytest benchmarks/ --benchmark-only`` lane.

    Times ``collect`` through pytest-benchmark's pedantic mode (one
    round, like the pre-harness scripts), then renders tables and runs
    the shape checks at full parameters.
    """
    params = spec.run_params(quick=False)
    if spec.setup is not None:
        spec.setup()
    result = benchmark.pedantic(lambda: spec.fn(**params), rounds=1, iterations=1)
    if spec.report is not None:
        blocks = list(spec.report(result))
        for block in blocks:
            print("\n" + block)
        bench = BenchResult(
            spec=spec,
            params=params,
            quick=False,
            timing=TimingStats.from_samples([0.0]),
            blocks=blocks,
        )
        write_result_tables(bench)
    if spec.check is not None:
        spec.check(result)


def spec_main(spec: BenchSpec, argv: Optional[Sequence[str]] = None) -> int:
    """``python benchmarks/bench_<name>.py [--repeats N ...]`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(description=f"benchmark {spec.name}")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--warmup", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="small parameters; skips shape checks"
    )
    parser.add_argument("--no-check", action="store_true")
    parser.add_argument(
        "--json-dir", default="", help="also write BENCH_<suite>.json here"
    )
    args = parser.parse_args(argv)
    if args.json_dir:
        run_suites(
            [spec],
            json_dir=args.json_dir,
            repeats=args.repeats,
            warmup=args.warmup,
            quick=args.quick,
            check=not args.no_check,
        )
    else:
        run_spec(
            spec,
            repeats=args.repeats,
            warmup=args.warmup,
            quick=args.quick,
            check=not args.no_check,
        )
    return 0
