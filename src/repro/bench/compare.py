"""Perf-regression comparison between two benchmark result documents.

``python -m repro bench --compare baseline.json current.json`` loads two
``BENCH_<suite>.json`` files and diffs them metric by metric.  Gated
metrics are the harness timings (``median_s``, lower is better;
``tuples_per_second``, higher is better) plus every benchmark metric
declared with a direction.  A metric regresses when it moves against
its direction by more than the benchmark's tolerance (a relative
fraction; the CLI ``--tolerance`` overrides it globally) — this is the
condition the CI perf gate turns into a non-zero exit.

Structural problems — schema mismatch, a benchmark present in the
baseline but missing from the current run, or parameter drift between
the two files — are errors, not regressions: they mean the comparison
itself is invalid and the baseline must be regenerated (see
``docs/benchmarking.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..reporting import TextTable
from .schema import BenchSchemaError, results_by_name, validate_suite_doc


@dataclass(frozen=True)
class MetricDelta:
    """One gated metric's movement between baseline and current."""

    bench: str
    metric: str
    better: str
    baseline: float
    current: float
    tolerance: float
    #: ungated deltas are shown in the table but can never regress
    gated: bool = True

    @property
    def change(self) -> float:
        """Relative change, sign-normalized so positive = improvement."""
        if self.baseline == 0:
            return 0.0
        raw = (self.current - self.baseline) / abs(self.baseline)
        return raw if self.better == "higher" else -raw

    @property
    def regressed(self) -> bool:
        return self.gated and self.change < -self.tolerance


@dataclass
class CompareReport:
    """Everything the comparison found."""

    deltas: List[MetricDelta] = field(default_factory=list)
    #: benchmarks in the baseline with no counterpart in the current run
    missing: List[str] = field(default_factory=list)
    #: benchmarks only in the current run (informational: new coverage)
    added: List[str] = field(default_factory=list)
    #: benchmarks whose parameters differ between the two documents
    param_mismatches: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    @property
    def invalid(self) -> bool:
        return bool(self.param_mismatches)

    def exit_code(self) -> int:
        """0 = pass, 1 = regression/missing benchmark, 2 = invalid compare."""
        if self.invalid:
            return 2
        return 0 if self.ok else 1

    def format_table(self, only_regressions: bool = False) -> str:
        table = TextTable(
            [
                "benchmark",
                "metric",
                "better",
                "baseline",
                "current",
                "change",
                "tolerance",
                "verdict",
            ],
            title="Benchmark comparison",
        )
        for delta in self.deltas:
            if only_regressions and not delta.regressed:
                continue
            table.add(
                delta.bench,
                delta.metric,
                delta.better,
                f"{delta.baseline:.6g}",
                f"{delta.current:.6g}",
                f"{delta.change * 100:+.1f}%",
                f"{delta.tolerance * 100:.0f}%" if delta.gated else "-",
                ("REGRESSED" if delta.regressed else "ok")
                if delta.gated
                else "info",
            )
        return table.render()

    def summary_lines(self) -> List[str]:
        lines = []
        for name in self.param_mismatches:
            lines.append(
                f"invalid compare: {name}: parameters differ between baseline "
                "and current run — regenerate the baseline "
                "(docs/benchmarking.md)"
            )
        for name in self.missing:
            lines.append(
                f"missing: benchmark {name} is in the baseline but was not run"
            )
        for name in self.added:
            lines.append(f"note: benchmark {name} is new (not in the baseline)")
        regressions = self.regressions
        if regressions:
            lines.append(
                f"FAIL: {len(regressions)} metric(s) regressed beyond tolerance"
            )
        elif not self.missing and not self.param_mismatches:
            gated = sum(1 for d in self.deltas if d.gated)
            lines.append(f"OK: {gated} gated metric(s) within tolerance")
        return lines


def load_doc(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and schema-validate one ``BENCH_*.json`` file."""
    file_path = Path(path)
    try:
        doc = json.loads(file_path.read_text())
    except FileNotFoundError:
        raise BenchSchemaError(f"result file {file_path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{file_path} is not valid JSON: {exc}") from exc
    validate_suite_doc(doc, where=str(file_path))
    return doc


#: the harness timing metrics — wall-clock, so only comparable between
#: runs measured on the same machine
TIMING_METRICS = ("timing.median_s", "tuples_per_second")


def _gated_metrics(result: Dict[str, Any]) -> List[Tuple[str, str, float]]:
    """(name, direction, value) for every metric the gate watches."""
    gated: List[Tuple[str, str, float]] = [
        ("timing.median_s", "lower", float(result["timing"]["median_s"]))
    ]
    if "tuples_per_second" in result:
        gated.append(
            ("tuples_per_second", "higher", float(result["tuples_per_second"]))
        )
    for name, entry in sorted(result["metrics"].items()):
        if entry["better"] in ("higher", "lower"):
            gated.append((name, entry["better"], float(entry["value"])))
    return gated


def compare_docs(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: Optional[float] = None,
    gate_timings: bool = True,
) -> CompareReport:
    """Diff two validated suite documents.

    ``tolerance`` overrides every benchmark's own tolerance when given.
    ``gate_timings=False`` demotes the absolute wall-clock metrics
    (:data:`TIMING_METRICS`) to informational — the mode for comparing
    across machines (a committed baseline vs. a CI runner), where only
    the within-run ratio metrics (speedups, savings, fractions) are
    meaningful.  Metrics present on only one side are compared as far as
    possible: a gated metric that disappeared is treated like a missing
    benchmark would be — it cannot regress silently.
    """
    report = CompareReport()
    base_results = results_by_name(baseline)
    cur_results = results_by_name(current)

    report.added = sorted(set(cur_results) - set(base_results))
    report.missing = sorted(set(base_results) - set(cur_results))

    for name in sorted(set(base_results) & set(cur_results)):
        base = base_results[name]
        cur = cur_results[name]
        if base["params"] != cur["params"]:
            report.param_mismatches.append(name)
            continue
        tol = tolerance if tolerance is not None else float(base["tolerance"])
        cur_metrics = {m: (d, v) for m, d, v in _gated_metrics(cur)}
        for metric, direction, base_value in _gated_metrics(base):
            if metric not in cur_metrics:
                report.missing.append(f"{name}:{metric}")
                continue
            report.deltas.append(
                MetricDelta(
                    bench=name,
                    metric=metric,
                    better=direction,
                    baseline=base_value,
                    current=cur_metrics[metric][1],
                    tolerance=tol,
                    gated=gate_timings or metric not in TIMING_METRICS,
                )
            )
    return report


def compare_files(
    baseline_path: Union[str, Path],
    current_path: Union[str, Path],
    tolerance: Optional[float] = None,
    gate_timings: bool = True,
) -> CompareReport:
    """Load, validate and diff two result files (the CLI entry point)."""
    return compare_docs(
        load_doc(baseline_path),
        load_doc(current_path),
        tolerance=tolerance,
        gate_timings=gate_timings,
    )
