"""``repro.bench`` — the unified benchmark harness.

Every script under ``benchmarks/`` registers a :class:`BenchSpec`
describing its measured callable, parameters (plus a quick overlay for
CI smoke runs), paper-table rendering, shape checks and scalar metrics.
The shared runner executes specs with warmup and repeats, reduces the
timings to median/p95/stdev, normalizes to tuples per second where the
benchmark reports a workload size, captures the environment and writes
one schema-versioned ``BENCH_<suite>.json`` per suite.  The comparator
diffs two such documents and drives the CI perf-regression gate.

See ``docs/benchmarking.md`` for the workflow.
"""

from .compare import (
    TIMING_METRICS,
    CompareReport,
    MetricDelta,
    compare_docs,
    compare_files,
    load_doc,
)
from .registry import (
    SUITES,
    BenchRegistryError,
    BenchSpec,
    Metric,
    Registry,
    coerce_metrics,
    default_bench_dir,
    discover,
    register,
)
from .runner import (
    BenchResult,
    capture_environment,
    run_pytest_benchmark,
    run_spec,
    run_suites,
    spec_main,
)
from .schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    results_by_name,
    suite_filename,
    validate_suite_doc,
)
from .stats import TimingStats, median, percentile, sample_stdev

__all__ = [
    "SUITES",
    "SCHEMA_VERSION",
    "TIMING_METRICS",
    "BenchRegistryError",
    "BenchResult",
    "BenchSchemaError",
    "BenchSpec",
    "CompareReport",
    "Metric",
    "MetricDelta",
    "Registry",
    "TimingStats",
    "capture_environment",
    "coerce_metrics",
    "compare_docs",
    "compare_files",
    "default_bench_dir",
    "discover",
    "load_doc",
    "median",
    "percentile",
    "register",
    "results_by_name",
    "sample_stdev",
    "run_pytest_benchmark",
    "run_spec",
    "run_suites",
    "spec_main",
    "suite_filename",
    "validate_suite_doc",
]
