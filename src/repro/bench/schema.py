"""The ``BENCH_<suite>.json`` result schema and its validator.

One JSON document per suite.  The layout is versioned so the CI
perf-gate (and any downstream tooling tracking the perf trajectory) can
refuse documents it does not understand instead of silently
mis-comparing them.

Schema version 1
----------------
::

    {
      "schema_version": 1,
      "suite": "paper",
      "created_utc": "2026-08-05T12:00:00+00:00",
      "quick": false,
      "repeats": 3,
      "warmup": 1,
      "environment": {
        "python": "3.11.7", "implementation": "CPython",
        "platform": "...", "machine": "x86_64",
        "numpy": "2.4.6", "commit": "abc123" | "unknown",
        "bench_scale": 1
      },
      "results": [
        {
          "name": "fig5_throughput",
          "suite": "paper",
          "params": {"batches": 3, ...},
          "tolerance": 0.3,
          "timing": {"samples_s": [..], "median_s": .., "mean_s": ..,
                     "min_s": .., "max_s": .., "p95_s": .., "stdev_s": ..},
          "metrics": {"speedup_avg": {"value": 3.1, "better": "higher"}},
          "tuples": 123456,          # optional
          "tuples_per_second": 1e6   # optional, tuples / median_s
        }, ...
      ]
    }

``metrics[*].better`` is ``"higher"``, ``"lower"`` or ``null``
(informational only — recorded but never gated on).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import ReproError

SCHEMA_VERSION = 1

#: metric directions the comparator understands; None = informational
METRIC_DIRECTIONS = ("higher", "lower", None)

_ENVIRONMENT_KEYS = (
    "python",
    "implementation",
    "platform",
    "machine",
    "numpy",
    "commit",
    "bench_scale",
)

_TIMING_KEYS = (
    "samples_s",
    "median_s",
    "mean_s",
    "min_s",
    "max_s",
    "p95_s",
    "stdev_s",
)


class BenchSchemaError(ReproError):
    """A benchmark-result document does not match the schema."""


def suite_filename(suite: str) -> str:
    """The canonical file name for one suite's results."""
    return f"BENCH_{suite}.json"


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise BenchSchemaError(f"{where}: {message}")


def _validate_number(value: Any, where: str) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        where,
        f"expected a number, got {type(value).__name__}",
    )


def validate_result(result: Any, where: str = "results[?]") -> None:
    """Validate one per-benchmark result entry."""
    _require(isinstance(result, dict), where, "entry must be an object")
    for key in ("name", "suite"):
        _require(
            isinstance(result.get(key), str) and result[key],
            where,
            f"missing or empty string field {key!r}",
        )
    _require(
        isinstance(result.get("params"), dict),
        where,
        "missing object field 'params'",
    )
    _validate_number(result.get("tolerance"), f"{where}.tolerance")
    _require(
        0.0 <= float(result["tolerance"]),
        f"{where}.tolerance",
        "tolerance must be non-negative",
    )

    timing = result.get("timing")
    _require(isinstance(timing, dict), where, "missing object field 'timing'")
    for key in _TIMING_KEYS:
        _require(key in timing, f"{where}.timing", f"missing field {key!r}")
    samples = timing["samples_s"]
    _require(
        isinstance(samples, list) and len(samples) >= 1,
        f"{where}.timing.samples_s",
        "must be a non-empty list",
    )
    for i, sample in enumerate(samples):
        _validate_number(sample, f"{where}.timing.samples_s[{i}]")
    for key in _TIMING_KEYS[1:]:
        _validate_number(timing[key], f"{where}.timing.{key}")

    metrics = result.get("metrics")
    _require(isinstance(metrics, dict), where, "missing object field 'metrics'")
    for name, entry in metrics.items():
        mwhere = f"{where}.metrics[{name!r}]"
        _require(isinstance(entry, dict), mwhere, "must be an object")
        _validate_number(entry.get("value"), f"{mwhere}.value")
        _require(
            entry.get("better") in METRIC_DIRECTIONS,
            f"{mwhere}.better",
            f"must be one of {METRIC_DIRECTIONS}",
        )

    if "tuples" in result:
        _validate_number(result["tuples"], f"{where}.tuples")
    if "tuples_per_second" in result:
        _validate_number(result["tuples_per_second"], f"{where}.tuples_per_second")


def validate_suite_doc(doc: Any, where: str = "document") -> None:
    """Validate a whole ``BENCH_<suite>.json`` document.

    Raises :class:`BenchSchemaError` with the offending path on the
    first violation; returns ``None`` when the document is valid.
    """
    _require(isinstance(doc, dict), where, "top level must be an object")
    version = doc.get("schema_version")
    _require(
        isinstance(version, int) and not isinstance(version, bool),
        f"{where}.schema_version",
        "missing integer field",
    )
    _require(
        version == SCHEMA_VERSION,
        f"{where}.schema_version",
        f"unsupported version {version} (this reader supports {SCHEMA_VERSION})",
    )
    _require(
        isinstance(doc.get("suite"), str) and doc["suite"],
        f"{where}.suite",
        "missing or empty string field",
    )
    _require(
        isinstance(doc.get("created_utc"), str),
        f"{where}.created_utc",
        "missing string field",
    )
    _require(isinstance(doc.get("quick"), bool), f"{where}.quick", "missing bool field")
    for key in ("repeats", "warmup"):
        value = doc.get(key)
        _require(
            isinstance(value, int) and not isinstance(value, bool) and value >= 0,
            f"{where}.{key}",
            "missing non-negative integer field",
        )

    environment = doc.get("environment")
    _require(
        isinstance(environment, dict),
        f"{where}.environment",
        "missing object field",
    )
    for key in _ENVIRONMENT_KEYS:
        _require(key in environment, f"{where}.environment", f"missing field {key!r}")

    results = doc.get("results")
    _require(isinstance(results, list), f"{where}.results", "missing list field")
    seen: List[str] = []
    for i, result in enumerate(results):
        validate_result(result, where=f"{where}.results[{i}]")
        _require(
            result["suite"] == doc["suite"],
            f"{where}.results[{i}].suite",
            f"result suite {result['suite']!r} != document suite {doc['suite']!r}",
        )
        _require(
            result["name"] not in seen,
            f"{where}.results[{i}].name",
            f"duplicate benchmark name {result['name']!r}",
        )
        seen.append(result["name"])


def results_by_name(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Index a validated suite document's results by benchmark name."""
    return {result["name"]: result for result in doc["results"]}
