"""Benchmark registry: specs, metrics and script discovery.

Every ``benchmarks/bench_*.py`` registers exactly one :class:`BenchSpec`
(module attribute ``SPEC``) describing its measured callable, its
parameters (with a smaller ``quick_params`` overlay for CI smoke runs),
how to render its paper-style tables, its shape assertions and the
scalar metrics the JSON results record.  :func:`discover` imports the
scripts from a benchmarks directory and returns them as a
:class:`Registry`, which the runner and the CLI filter by suite or name.
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from ..errors import ReproError
from .schema import METRIC_DIRECTIONS

#: suites in canonical order: the paper's tables/figures, the extra
#: ablations, the fault-tolerance material, the vectorized-kernel
#: speedup regression specs, the golden-fixture workload replay, and
#: the cascaded-codec ratio/morph gates
SUITES = (
    "paper",
    "ablation",
    "robustness",
    "kernels",
    "workloads",
    "optimizer",
    "cascades",
)


class BenchRegistryError(ReproError):
    """Invalid benchmark registration or lookup."""


@dataclass(frozen=True)
class Metric:
    """One scalar a benchmark reports into its JSON result.

    ``better`` declares the regression direction for the CI perf gate:
    ``"higher"`` (throughput-like), ``"lower"`` (time-like) or ``None``
    (informational — recorded, never gated).
    """

    value: float
    better: Optional[str] = "higher"

    def __post_init__(self) -> None:
        if self.better not in METRIC_DIRECTIONS:
            raise BenchRegistryError(
                f"metric direction {self.better!r} not in {METRIC_DIRECTIONS}"
            )


#: metrics callables may return plain numbers; they become informational
MetricLike = Union[Metric, float, int]


def coerce_metrics(raw: Mapping[str, MetricLike]) -> Dict[str, Metric]:
    """Normalize a metrics mapping: bare numbers become informational."""
    out: Dict[str, Metric] = {}
    for name, value in raw.items():
        if isinstance(value, Metric):
            out[name] = value
        else:
            out[name] = Metric(float(value), better=None)
    return out


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark.

    ``fn(**params)`` is the measured callable; it returns an opaque
    result object that ``report`` (render paper tables as text blocks),
    ``check`` (shape assertions) and ``metrics`` (scalar extraction)
    consume.  ``quick_params`` overlays ``params`` for smoke runs.
    """

    name: str
    suite: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    quick_params: Mapping[str, Any] = field(default_factory=dict)
    report: Optional[Callable[[Any], Sequence[str]]] = None
    check: Optional[Callable[[Any], None]] = None
    metrics: Optional[Callable[[Any], Mapping[str, MetricLike]]] = None
    tuples: Optional[Callable[[Any], int]] = None
    setup: Optional[Callable[[], None]] = None
    #: relative regression tolerance the perf gate applies by default
    tolerance: float = 0.25
    #: where report blocks are persisted as <name>.txt (None = print only)
    results_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise BenchRegistryError(f"invalid benchmark name {self.name!r}")
        if self.suite not in SUITES:
            raise BenchRegistryError(
                f"benchmark {self.name!r}: unknown suite {self.suite!r} "
                f"(choose from {SUITES})"
            )
        if not callable(self.fn):
            raise BenchRegistryError(f"benchmark {self.name!r}: fn is not callable")
        if self.tolerance < 0:
            raise BenchRegistryError(
                f"benchmark {self.name!r}: tolerance must be non-negative"
            )
        unknown = set(self.quick_params) - set(self.params)
        if unknown:
            raise BenchRegistryError(
                f"benchmark {self.name!r}: quick_params {sorted(unknown)} "
                "not present in params"
            )

    def run_params(self, quick: bool = False) -> Dict[str, Any]:
        """The effective parameters for one run."""
        params = dict(self.params)
        if quick:
            params.update(self.quick_params)
        return params


def register(**kwargs: Any) -> BenchSpec:
    """Build a :class:`BenchSpec`; scripts assign it to ``SPEC``.

    Discovery collects the module-level ``SPEC`` attribute, so
    registration has no global side effects and re-imports stay
    idempotent.
    """
    return BenchSpec(**kwargs)


class Registry:
    """An ordered collection of benchmark specs with unique names."""

    def __init__(self, specs: Sequence[BenchSpec] = ()):
        self._specs: Dict[str, BenchSpec] = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec: BenchSpec) -> None:
        if spec.name in self._specs:
            raise BenchRegistryError(f"duplicate benchmark name {spec.name!r}")
        self._specs[spec.name] = spec

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def get(self, name: str) -> BenchSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise BenchRegistryError(
                f"unknown benchmark {name!r}; registered: {sorted(self._specs)}"
            ) from None

    def names(self) -> List[str]:
        return list(self._specs)

    def suites(self) -> List[str]:
        present = {spec.suite for spec in self._specs.values()}
        return [s for s in SUITES if s in present]

    def select(
        self, suite: Optional[str] = None, pattern: Optional[str] = None
    ) -> List[BenchSpec]:
        """Specs filtered by suite and/or case-insensitive name substring."""
        if suite is not None and suite not in SUITES:
            raise BenchRegistryError(f"unknown suite {suite!r} (choose from {SUITES})")
        out = []
        for spec in self._specs.values():
            if suite is not None and spec.suite != suite:
                continue
            if pattern is not None and pattern.lower() not in spec.name.lower():
                continue
            out.append(spec)
        return out


_MODULE_COUNTER = 0


def _import_script(path: Path) -> Any:
    """Import one benchmark script under a collision-free module name."""
    global _MODULE_COUNTER
    _MODULE_COUNTER += 1
    module_name = f"_repro_bench_{path.stem}_{_MODULE_COUNTER}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise BenchRegistryError(f"cannot import benchmark script {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise BenchRegistryError(f"error importing {path.name}: {exc}") from exc
    return module


def discover(bench_dir: Union[str, Path]) -> Registry:
    """Import every ``bench_*.py`` under ``bench_dir`` into a Registry.

    Scripts may import sibling helpers (``common.py``), so the directory
    is temporarily prepended to ``sys.path``.  A script that defines no
    ``SPEC`` is an error: unregistered benchmarks would silently escape
    the perf gate.
    """
    directory = Path(bench_dir).resolve()
    if not directory.is_dir():
        raise BenchRegistryError(f"benchmark directory {directory} does not exist")
    scripts = sorted(directory.glob("bench_*.py"))
    if not scripts:
        raise BenchRegistryError(f"no bench_*.py scripts under {directory}")

    registry = Registry()
    sys.path.insert(0, str(directory))
    try:
        for path in scripts:
            module = _import_script(path)
            spec = getattr(module, "SPEC", None)
            if not isinstance(spec, BenchSpec):
                raise BenchRegistryError(
                    f"{path.name} defines no module-level SPEC = register(...)"
                )
            if spec.results_dir is None:
                spec = BenchSpec(
                    **{**spec.__dict__, "results_dir": directory / "results"}
                )
            registry.add(spec)
    finally:
        sys.path.remove(str(directory))
    return registry


def default_bench_dir() -> Optional[Path]:
    """Locate the repository's ``benchmarks/`` directory, if any.

    Tried in order: ``$REPRO_BENCH_DIR``, the source checkout layout
    relative to this package, then ``./benchmarks``.
    """
    import os

    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return Path(env)
    checkout = Path(__file__).resolve().parents[3] / "benchmarks"
    if checkout.is_dir():
        return checkout
    local = Path("benchmarks")
    if local.is_dir():
        return local
    return None
