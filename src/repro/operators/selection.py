"""Selection: predicate evaluation directly on compressed codes.

Equality predicates map the literal into code space with
``encode_literal`` (a literal absent from e.g. a dictionary yields an
all-false mask without touching the data); range predicates use
``lower_bound`` on order-preserving codes, exploiting the integer domain:
``col > v`` is ``code >= lower_bound(v + 1)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanningError
from .base import ExecColumn

COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


def compare_to_literal(column: ExecColumn, op: str, literal: int) -> np.ndarray:
    """Boolean mask of rows satisfying ``column <op> literal``."""
    if op not in COMPARISONS:
        raise PlanningError(f"unknown comparison {op!r}")
    literal = int(literal)
    planes = column.pending_planes
    if planes is not None and op in ("==", "!="):
        # One unpacked plane answers the predicate; the per-row value
        # array is never built.
        mask = planes.mask_of_value(literal)
        return mask if op == "==" else ~mask
    runs = column.pending_runs
    if runs is not None:
        # Evaluate once per run, then broadcast the boolean (1 byte/row)
        # instead of expanding the values (8 bytes/row) first.
        run_values, run_lengths = runs
        run_mask = compare_to_literal(
            ExecColumn(column.name, run_values), op, literal
        )
        return np.repeat(run_mask, run_lengths)
    codes = column.codes
    if op in ("==", "!="):
        if not column.supports_equality:
            raise PlanningError(
                f"equality on {column.name!r} needs equality-capable codes"
            )
        code = column.encode_literal(literal)
        if code is None:
            mask = np.zeros(codes.size, dtype=bool)
        else:
            mask = codes == code
        return mask if op == "==" else ~mask
    if not column.supports_order:
        raise PlanningError(f"range predicate on {column.name!r} needs ordered codes")
    if op == ">=":
        return codes >= column.lower_bound(literal)
    if op == ">":
        return codes >= column.lower_bound(literal + 1)
    if op == "<":
        return codes < column.lower_bound(literal)
    return codes < column.lower_bound(literal + 1)  # "<="


def compare_columns(left: ExecColumn, right: ExecColumn, op: str) -> np.ndarray:
    """Row-wise comparison of two aligned columns.

    Code spaces of different codecs are incompatible, so column-to-column
    comparisons run on decoded values unless both sides are affine with the
    same (scale, offset).
    """
    if op not in COMPARISONS:
        raise PlanningError(f"unknown comparison {op!r}")
    if len(left) != len(right):
        raise PlanningError("column comparison requires equal lengths")
    la, ra = left.affine, right.affine
    if la is not None and ra is not None and la == ra:
        lv, rv = left.codes, right.codes
    else:
        lv, rv = left.values(), right.values()
    if op == "==":
        return lv == rv
    if op == "!=":
        return lv != rv
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    return lv >= rv
