"""Distinct: duplicate elimination on compressed codes.

``select distinct`` deduplicates output rows; since every projected column
is either decoded or equality-capable, uniqueness of code tuples equals
uniqueness of value tuples, so dedup runs without decompression and only
the surviving rows are decoded.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PlanningError
from .base import ExecColumn


def distinct_indices(columns: Sequence[ExecColumn], indices: np.ndarray) -> np.ndarray:
    """Subset of ``indices`` keeping the first row of each distinct tuple.

    ``indices`` are row positions into the batch; result preserves first
    occurrence order.
    """
    if not columns:
        raise PlanningError("distinct needs at least one column")
    for col in columns:
        if not col.supports_equality:
            raise PlanningError(
                f"distinct on {col.name!r} needs equality-capable codes"
            )
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return indices
    combined = None
    for col in columns:
        picked = col.codes[indices]
        _, dense = np.unique(picked, return_inverse=True)
        cardinality = int(dense.max()) + 1 if dense.size else 1
        if combined is None:
            combined = dense.astype(np.int64)
        else:
            combined = combined * cardinality + dense
    _, first = np.unique(combined, return_index=True)
    return indices[np.sort(first)]
