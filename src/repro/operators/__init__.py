"""Relational operator kernels running directly on compressed codes."""

from .aggregation import (
    AGG_FUNCS,
    sliding_code_sums,
    sliding_extreme,
    window_aggregate,
)
from .base import ExecColumn, decoded_column
from .distinct import distinct_indices
from .groupby import GroupedWindowResult, combine_keys, window_group_aggregate
from .join import semi_join_latest
from .selection import COMPARISONS, compare_columns, compare_to_literal

__all__ = [
    "AGG_FUNCS",
    "sliding_code_sums",
    "sliding_extreme",
    "window_aggregate",
    "ExecColumn",
    "decoded_column",
    "distinct_indices",
    "GroupedWindowResult",
    "combine_keys",
    "window_group_aggregate",
    "semi_join_latest",
    "COMPARISONS",
    "compare_columns",
    "compare_to_literal",
]
