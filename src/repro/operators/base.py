"""Execution columns: the operator kernels' view of (compressed) data.

An :class:`ExecColumn` is either a *direct* view (codes straight out of the
compressed payload, with the codec's affine/order/equality semantics) or a
*decoded* view (plain values).  Kernels never branch on codec names — they
ask the column for the semantics they need, which is the "map operators to
compressed operators with minimal modification" design of Sec. IV-B.

Two structural refinements let β = 1 codecs skip the expansion step:

* a *run* column holds ``(run values, run lengths)`` from
  :meth:`~repro.compression.base.Codec.run_view`; predicates and window
  aggregates work at run granularity and per-row values materialize only
  when an operator genuinely indexes rows;
* a *plane* column holds a :class:`~repro.compression.base.PlaneView`;
  equality predicates unpack a single value's bitmap and the per-row value
  array is never built at all.

Both carry decoded-value semantics (code == value), so every kernel that
does fall back to ``codes`` still computes the right answer.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..compression.base import (
    CAP_AFFINE,
    CAP_EQUALITY,
    CAP_ORDER,
    Codec,
    CompressedColumn,
    PlaneView,
)
from ..errors import PlanningError

RunPair = Tuple[np.ndarray, np.ndarray]


class ExecColumn:
    """One column as seen by the kernels."""

    def __init__(
        self,
        name: str,
        codes: Optional[np.ndarray] = None,
        codec: Optional[Codec] = None,
        compressed: Optional[CompressedColumn] = None,
        runs: Optional[RunPair] = None,
        planes: Optional[PlaneView] = None,
    ) -> None:
        if (codec is None) != (compressed is None):
            raise PlanningError("direct ExecColumn needs both codec and payload")
        if codes is None and runs is None and planes is None:
            raise PlanningError("ExecColumn needs codes, runs, or planes")
        self.name = name
        self.codec = codec
        self.compressed = compressed
        self._codes = codes
        self._runs = runs
        self._planes = planes
        if codes is not None:
            self._n = int(codes.size)
        elif runs is not None:
            self._n = int(runs[1].sum())
        else:
            self._n = len(planes)  # type: ignore[arg-type]

    # ----- lazy materialization --------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """Per-row codes, expanding a run/plane view on first access."""
        if self._codes is None:
            if self._runs is not None:
                self._codes = np.repeat(self._runs[0], self._runs[1])
            else:
                assert self._planes is not None
                self._codes = self._planes.decode_all()
        return self._codes

    @property
    def pending_runs(self) -> Optional[RunPair]:
        """(run values, run lengths) while no per-row array exists yet."""
        return self._runs if self._codes is None else None

    @property
    def pending_planes(self) -> Optional[PlaneView]:
        """The plane view while no per-row array exists yet."""
        return self._planes if self._codes is None else None

    # ----- semantics -------------------------------------------------------

    @property
    def is_direct(self) -> bool:
        """True when ``codes`` are compressed codes, not decoded values."""
        return self.codec is not None

    @property
    def supports_equality(self) -> bool:
        return not self.is_direct or CAP_EQUALITY in self.codec.capabilities

    @property
    def supports_order(self) -> bool:
        return not self.is_direct or CAP_ORDER in self.codec.capabilities

    @property
    def affine(self) -> Optional[Tuple[int, int]]:
        """(scale, offset) with value = scale * code + offset, or None."""
        if not self.is_direct:
            return (1, 0)
        if CAP_AFFINE in self.codec.capabilities:
            return self.codec.affine_params(self.compressed)
        return None

    # ----- value access ----------------------------------------------------

    def values(self) -> np.ndarray:
        """Original values for all rows (used for output or fallbacks)."""
        if not self.is_direct:
            return self.codes
        # lint: force-decode (sanctioned output-materialization path)
        return self.codec.decode_codes(self.compressed, self.codes)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Original values of a (small) selection of codes."""
        if not self.is_direct:
            return np.asarray(codes, dtype=np.int64)
        # lint: force-decode (bounded: callers pass per-window selections)
        return self.codec.decode_codes(self.compressed, codes)

    def encode_literal(self, value: int) -> Optional[int]:
        """Exact code of a constant for equality predicates (None = absent)."""
        if not self.is_direct:
            return int(value)
        return self.codec.encode_literal(self.compressed, value)

    def lower_bound(self, value: int) -> int:
        """Smallest code whose value is >= ``value`` (order predicates)."""
        if not self.is_direct:
            return int(value)
        return self.codec.lower_bound(self.compressed, value)

    # ----- structural helpers ----------------------------------------------

    def slice(self, start: int, stop: int) -> "ExecColumn":
        if self._codes is None and self._runs is not None:
            return ExecColumn(self.name, runs=_slice_runs(self._runs, start, stop))
        if self._codes is None and self._planes is not None:
            start, stop, _ = slice(start, stop).indices(self._n)
            return ExecColumn(
                self.name, planes=self._planes.take(np.arange(start, stop))
            )
        return ExecColumn(
            self.name, self.codes[start:stop], self.codec, self.compressed
        )

    def take(self, indices: np.ndarray) -> "ExecColumn":
        if self._codes is None and self._planes is not None:
            indices = _as_positions(indices, self._n)
            return ExecColumn(self.name, planes=self._planes.take(indices))
        if self._codes is None and self._runs is not None:
            # Map selected rows to their runs instead of expanding all rows:
            # O(k log runs) for k survivors versus O(n) for the expansion.
            indices = _as_positions(indices, self._n)
            run_values, run_lengths = self._runs
            ends = np.cumsum(run_lengths)
            run_of = np.searchsorted(ends, indices, side="right")
            return ExecColumn(self.name, run_values[run_of])
        return ExecColumn(self.name, self.codes[indices], self.codec, self.compressed)

    def __len__(self) -> int:
        return self._n


def _as_positions(indices: np.ndarray, n: int) -> np.ndarray:
    indices = np.asarray(indices)
    if indices.dtype == bool:
        if indices.size != n:
            raise PlanningError("boolean selection length mismatch")
        return np.flatnonzero(indices)
    return indices


def _slice_runs(runs: RunPair, start: int, stop: int) -> RunPair:
    """Restrict runs to rows [start, stop) without expanding them."""
    run_values, run_lengths = runs
    n = int(run_lengths.sum())
    start, stop, _ = slice(start, stop).indices(n)
    ends = np.cumsum(run_lengths)
    starts = ends - run_lengths
    first = int(np.searchsorted(ends, start, side="right"))
    last = int(np.searchsorted(starts, stop, side="left"))
    clipped = np.minimum(ends[first:last], stop) - np.maximum(starts[first:last], start)
    return run_values[first:last], clipped


def decoded_column(name: str, values: np.ndarray) -> ExecColumn:
    """An ExecColumn over plain values."""
    return ExecColumn(name, np.ascontiguousarray(values, dtype=np.int64))
