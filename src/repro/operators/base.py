"""Execution columns: the operator kernels' view of (compressed) data.

An :class:`ExecColumn` is either a *direct* view (codes straight out of the
compressed payload, with the codec's affine/order/equality semantics) or a
*decoded* view (plain values).  Kernels never branch on codec names — they
ask the column for the semantics they need, which is the "map operators to
compressed operators with minimal modification" design of Sec. IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..compression.base import CAP_AFFINE, CAP_EQUALITY, CAP_ORDER, Codec, CompressedColumn
from ..errors import PlanningError


@dataclass
class ExecColumn:
    """One column as seen by the kernels."""

    name: str
    codes: np.ndarray
    codec: Optional[Codec] = None
    compressed: Optional[CompressedColumn] = None

    def __post_init__(self) -> None:
        if (self.codec is None) != (self.compressed is None):
            raise PlanningError("direct ExecColumn needs both codec and payload")

    # ----- semantics -------------------------------------------------------

    @property
    def is_direct(self) -> bool:
        """True when ``codes`` are compressed codes, not decoded values."""
        return self.codec is not None

    @property
    def supports_equality(self) -> bool:
        return not self.is_direct or CAP_EQUALITY in self.codec.capabilities

    @property
    def supports_order(self) -> bool:
        return not self.is_direct or CAP_ORDER in self.codec.capabilities

    @property
    def affine(self) -> Optional[Tuple[int, int]]:
        """(scale, offset) with value = scale * code + offset, or None."""
        if not self.is_direct:
            return (1, 0)
        if CAP_AFFINE in self.codec.capabilities:
            return self.codec.affine_params(self.compressed)
        return None

    # ----- value access ----------------------------------------------------

    def values(self) -> np.ndarray:
        """Original values for all rows (used for output or fallbacks)."""
        if not self.is_direct:
            return self.codes
        return self.codec.decode_codes(self.compressed, self.codes)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Original values of a (small) selection of codes."""
        if not self.is_direct:
            return np.asarray(codes, dtype=np.int64)
        return self.codec.decode_codes(self.compressed, codes)

    def encode_literal(self, value: int) -> Optional[int]:
        """Exact code of a constant for equality predicates (None = absent)."""
        if not self.is_direct:
            return int(value)
        return self.codec.encode_literal(self.compressed, value)

    def lower_bound(self, value: int) -> int:
        """Smallest code whose value is >= ``value`` (order predicates)."""
        if not self.is_direct:
            return int(value)
        return self.codec.lower_bound(self.compressed, value)

    # ----- structural helpers ----------------------------------------------

    def slice(self, start: int, stop: int) -> "ExecColumn":
        return ExecColumn(self.name, self.codes[start:stop], self.codec, self.compressed)

    def take(self, indices: np.ndarray) -> "ExecColumn":
        return ExecColumn(self.name, self.codes[indices], self.codec, self.compressed)

    def __len__(self) -> int:
        return int(self.codes.size)


def decoded_column(name: str, values: np.ndarray) -> ExecColumn:
    """An ExecColumn over plain values."""
    return ExecColumn(name, np.ascontiguousarray(values, dtype=np.int64))
