"""Windowed aggregation kernels: avg/sum/count/max/min over sliding windows.

Kernels run on *codes*.  For affine codecs the correction
``value = scale * code + offset`` is applied once per window, so e.g.
``avg(value)`` over a Base-Delta column touches only the narrow delta
payload — this is the direct-processing speedup of Sec. IV-B.  min/max run
on order-preserving codes and decode one result per window.

Sliding sums use prefix sums (O(n) for any number of windows); sliding
extrema use block prefix/suffix scans for overlapping windows, segment
reduction (``reduceat``) for tumbling and ragged ones.

Run-structured columns (RLE served without expansion) aggregate at run
granularity: prefix sums weighted by run lengths answer sum/avg, and
max/min reduce over the runs a window overlaps — correct even for
partially covered runs because a run's value is constant.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import PlanningError
from .base import ExecColumn

AGG_FUNCS = ("avg", "sum", "count", "max", "min")

Window = Tuple[int, int]


def _window_arrays(windows: Sequence[Window]) -> Tuple[np.ndarray, np.ndarray]:
    if not windows:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    arr = np.asarray(windows, dtype=np.int64)
    return arr[:, 0], arr[:, 1]


def sliding_code_sums(codes: np.ndarray, windows: Sequence[Window]) -> np.ndarray:
    """Sum of codes per window via prefix sums."""
    starts, ends = _window_arrays(windows)
    prefix = np.zeros(codes.size + 1, dtype=np.int64)
    np.cumsum(codes, out=prefix[1:])
    return prefix[ends] - prefix[starts]


def _run_prefix_sums(
    run_values: np.ndarray, run_lengths: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Prefix sum of the expanded column, evaluated at ``positions``.

    ``P(x) = sum(values[:x])`` computed from runs alone: the weighted
    prefix over whole runs plus a partial term for the run containing x.
    """
    ends = np.cumsum(run_lengths)
    starts = ends - run_lengths
    weighted = np.zeros(run_values.size + 1, dtype=np.int64)
    np.cumsum(run_values * run_lengths, out=weighted[1:])
    r = np.searchsorted(ends, positions, side="right")
    r = np.minimum(r, run_values.size - 1)
    return weighted[r] + (positions - starts[r]) * run_values[r]


def sliding_extreme(
    codes: np.ndarray, windows: Sequence[Window], *, take_max: bool
) -> np.ndarray:
    """Max (or min) of codes per window.

    Count windows share one size and a constant stride: overlapping
    strides use block prefix/suffix scans, disjoint strides ``reduceat``.
    Ragged windows (time windows have data-dependent extents) use an
    interleaved ``reduceat``.
    """
    starts, ends = _window_arrays(windows)
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    if (ends <= starts).any():
        raise PlanningError("sliding_extreme requires non-empty windows")
    sizes = ends - starts
    size = int(sizes[0])
    regular = bool((sizes == size).all())
    if regular and starts.size == 1:
        seg = codes[starts[0] : ends[0]]
        return np.asarray([seg.max() if take_max else seg.min()], dtype=np.int64)
    if regular:
        stride = int(starts[1] - starts[0])
        if (np.diff(starts) == stride).all():
            if stride >= size:
                flat = np.concatenate([codes[s:e] for s, e in zip(starts, ends)])
                bounds = np.arange(starts.size, dtype=np.int64) * size
                if take_max:
                    return np.maximum.reduceat(flat, bounds)
                return np.minimum.reduceat(flat, bounds)
            return _block_extreme(codes, starts, size, take_max=take_max)
    return _ragged_extreme(codes, starts, ends, take_max=take_max)


def _ragged_extreme(
    codes: np.ndarray, starts: np.ndarray, ends: np.ndarray, *, take_max: bool
) -> np.ndarray:
    """Per-window reduction for windows of arbitrary extents.

    One ``reduceat`` over interleaved (start, end) boundaries: the even
    segments are the windows, the odd segments (between windows, possibly
    empty or reversed) are computed but discarded.  A one-element sentinel
    keeps ``end == codes.size`` a valid reduceat index.
    """
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    op = np.maximum if take_max else np.minimum
    idx = np.empty(2 * starts.size, dtype=np.int64)
    idx[0::2] = starts
    idx[1::2] = ends
    padded = np.concatenate([codes, codes[-1:]])
    return op.reduceat(padded, idx)[0::2]


def _block_extreme(
    codes: np.ndarray, starts: np.ndarray, size: int, *, take_max: bool
) -> np.ndarray:
    """Sliding extrema for overlapping equal-size windows, O(n) vectorized.

    Split the span into blocks of the window size; every window straddles
    at most two adjacent blocks, so its extreme is
    ``op(suffix_scan[start], prefix_scan[start + size - 1])``.
    """
    lo = int(starts[0])
    hi = int(starts[-1]) + size
    span = codes[lo:hi]
    op = np.maximum if take_max else np.minimum
    identity = np.iinfo(np.int64).min if take_max else np.iinfo(np.int64).max
    nblocks = -(-span.size // size)
    padded = np.full(nblocks * size, identity, dtype=np.int64)
    padded[: span.size] = span
    blocks = padded.reshape(nblocks, size)
    pre = op.accumulate(blocks, axis=1).reshape(-1)
    suf = op.accumulate(blocks[:, ::-1], axis=1)[:, ::-1].reshape(-1)
    a = (starts - lo).astype(np.int64)
    return op(suf[a], pre[a + size - 1])


def window_aggregate(
    column: ExecColumn, windows: Sequence[Window], func: str
) -> np.ndarray:
    """Aggregate one column over each window; returns per-window results.

    ``sum``/``avg`` require an affine column (the server decodes
    non-affine codecs before calling); ``max``/``min`` require order;
    ``count`` needs nothing.  Results are in the *stored* integer domain
    (fixed-point for float fields): ``sum``/``max``/``min``/``count`` are
    int64, ``avg`` is float64.
    """
    if func not in AGG_FUNCS:
        raise PlanningError(f"unknown aggregate {func!r}")
    starts, ends = _window_arrays(windows)
    counts = (ends - starts).astype(np.int64)
    if func == "count":
        return counts
    runs = column.pending_runs
    if func in ("sum", "avg"):
        affine = column.affine
        if affine is None:
            raise PlanningError(
                f"sum/avg on column {column.name!r} requires affine codes; "
                "the server should have decoded it"
            )
        scale, offset = affine
        if runs is not None:
            code_sums = _run_prefix_sums(*runs, ends) - _run_prefix_sums(*runs, starts)
        else:
            code_sums = sliding_code_sums(column.codes, windows)
        sums = scale * code_sums + offset * counts
        if func == "sum":
            return sums
        return sums / np.maximum(counts, 1)
    # max / min on order-preserving codes, decode one result per window
    if not column.supports_order:
        raise PlanningError(
            f"max/min on column {column.name!r} requires order-preserving "
            "codes; the server should have decoded it"
        )
    if runs is not None:
        if starts.size and (ends <= starts).any():
            raise PlanningError("sliding_extreme requires non-empty windows")
        # A window's extreme is the extreme of the runs it overlaps — the
        # run value is constant, so partial coverage does not matter.
        run_values, run_lengths = runs
        run_ends = np.cumsum(run_lengths)
        first = np.searchsorted(run_ends, starts, side="right")
        last = np.searchsorted(run_ends, ends - 1, side="right")
        extreme_codes = _ragged_extreme(
            run_values, first, last + 1, take_max=(func == "max")
        )
        # lint: force-decode (one extreme per window, never the column)
        return column.decode(extreme_codes)
    extreme_codes = sliding_extreme(column.codes, windows, take_max=(func == "max"))
    return column.decode(extreme_codes)  # lint: force-decode (one per window)
