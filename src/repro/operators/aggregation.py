"""Windowed aggregation kernels: avg/sum/count/max/min over sliding windows.

Kernels run on *codes*.  For affine codecs the correction
``value = scale * code + offset`` is applied once per window, so e.g.
``avg(value)`` over a Base-Delta column touches only the narrow delta
payload — this is the direct-processing speedup of Sec. IV-B.  min/max run
on order-preserving codes and decode one result per window.

Sliding sums use prefix sums (O(n) for any number of windows); sliding
extrema use the monotonic-deque algorithm for overlapping windows and
segment reduction for tumbling ones.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence, Tuple

import numpy as np

from ..errors import PlanningError
from .base import ExecColumn

AGG_FUNCS = ("avg", "sum", "count", "max", "min")

Window = Tuple[int, int]


def _window_arrays(windows: Sequence[Window]) -> Tuple[np.ndarray, np.ndarray]:
    if not windows:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    arr = np.asarray(windows, dtype=np.int64)
    return arr[:, 0], arr[:, 1]


def sliding_code_sums(codes: np.ndarray, windows: Sequence[Window]) -> np.ndarray:
    """Sum of codes per window via prefix sums."""
    starts, ends = _window_arrays(windows)
    prefix = np.zeros(codes.size + 1, dtype=np.int64)
    np.cumsum(codes, out=prefix[1:])
    return prefix[ends] - prefix[starts]


def sliding_extreme(codes: np.ndarray, windows: Sequence[Window], *, take_max: bool) -> np.ndarray:
    """Max (or min) of codes per window.

    Count windows share one size and a constant stride: overlapping
    strides use the O(n) monotonic deque, disjoint strides ``reduceat``.
    Ragged windows (time windows have data-dependent extents) fall back to
    a per-window reduction.
    """
    starts, ends = _window_arrays(windows)
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    if (ends <= starts).any():
        raise PlanningError("sliding_extreme requires non-empty windows")
    sizes = ends - starts
    size = int(sizes[0])
    regular = bool((sizes == size).all())
    if regular and starts.size == 1:
        seg = codes[starts[0]: ends[0]]
        return np.asarray([seg.max() if take_max else seg.min()], dtype=np.int64)
    if regular:
        stride = int(starts[1] - starts[0])
        if (np.diff(starts) == stride).all():
            if stride >= size:
                flat = np.concatenate([codes[s:e] for s, e in zip(starts, ends)])
                bounds = np.arange(starts.size, dtype=np.int64) * size
                if take_max:
                    return np.maximum.reduceat(flat, bounds)
                return np.minimum.reduceat(flat, bounds)
            return _deque_extreme(codes, starts, size, stride, take_max=take_max)
    return _ragged_extreme(codes, starts, ends, take_max=take_max)


def _ragged_extreme(
    codes: np.ndarray, starts: np.ndarray, ends: np.ndarray, *, take_max: bool
) -> np.ndarray:
    """Per-window reduction for windows of arbitrary extents."""
    out = np.empty(starts.size, dtype=np.int64)
    for i, (s, e) in enumerate(zip(starts, ends)):
        seg = codes[s:e]
        out[i] = seg.max() if take_max else seg.min()
    return out


def _deque_extreme(
    codes: np.ndarray, starts: np.ndarray, size: int, stride: int, *, take_max: bool
) -> np.ndarray:
    """Monotonic-deque sliding extrema for overlapping windows."""
    lo = int(starts[0])
    hi = int(starts[-1]) + size
    span = codes[lo:hi]
    out = np.empty(starts.size, dtype=np.int64)
    dq: deque = deque()  # indices into span, values monotonic
    next_out = 0
    target = size - 1  # span index at which the first window completes
    for i in range(span.size):
        v = span[i]
        if take_max:
            while dq and span[dq[-1]] <= v:
                dq.pop()
        else:
            while dq and span[dq[-1]] >= v:
                dq.pop()
        dq.append(i)
        if i == target:
            window_start = i - size + 1
            while dq[0] < window_start:
                dq.popleft()
            out[next_out] = span[dq[0]]
            next_out += 1
            target += stride
            if next_out == starts.size:
                break
    return out


def window_aggregate(
    column: ExecColumn, windows: Sequence[Window], func: str
) -> np.ndarray:
    """Aggregate one column over each window; returns per-window results.

    ``sum``/``avg`` require an affine column (the server decodes
    non-affine codecs before calling); ``max``/``min`` require order;
    ``count`` needs nothing.  Results are in the *stored* integer domain
    (fixed-point for float fields): ``sum``/``max``/``min``/``count`` are
    int64, ``avg`` is float64.
    """
    if func not in AGG_FUNCS:
        raise PlanningError(f"unknown aggregate {func!r}")
    starts, ends = _window_arrays(windows)
    counts = (ends - starts).astype(np.int64)
    if func == "count":
        return counts
    if func in ("sum", "avg"):
        affine = column.affine
        if affine is None:
            raise PlanningError(
                f"sum/avg on column {column.name!r} requires affine codes; "
                "the server should have decoded it"
            )
        scale, offset = affine
        sums = scale * sliding_code_sums(column.codes, windows) + offset * counts
        if func == "sum":
            return sums
        return sums / np.maximum(counts, 1)
    # max / min on order-preserving codes, decode one result per window
    if not column.supports_order:
        raise PlanningError(
            f"max/min on column {column.name!r} requires order-preserving "
            "codes; the server should have decoded it"
        )
    extreme_codes = sliding_extreme(column.codes, windows, take_max=(func == "max"))
    return column.decode(extreme_codes)
