"""Group-by aggregation inside windows, running on compressed codes.

Group keys only need *equality* of codes (bijective encodings), so
grouping never decodes whole columns: keys are factorized batch-wide once,
combined into a single int64 group id, and each window aggregates by group
with bincount/segment reductions.  Key values are decoded only for the few
distinct groups that reach the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import PlanningError
from .aggregation import AGG_FUNCS, Window
from .base import ExecColumn


@dataclass
class GroupedWindowResult:
    """Aggregates of one window, one row per group."""

    #: indices into the batch: one representative row per group, used to
    #: decode key (and other projected) columns for output.
    representatives: np.ndarray
    #: group sizes within the window
    counts: np.ndarray
    #: per-aggregate arrays aligned with representatives
    aggregates: List[np.ndarray]


def combine_keys(key_columns: Sequence[ExecColumn]) -> np.ndarray:
    """Factorize key columns batch-wide into a dense combined id array."""
    if not key_columns:
        raise PlanningError("group-by needs at least one key column")
    for col in key_columns:
        if not col.supports_equality:
            raise PlanningError(
                f"group-by key {col.name!r} needs equality-capable codes"
            )
    combined = None
    for col in key_columns:
        _, dense = np.unique(col.codes, return_inverse=True)
        cardinality = int(dense.max()) + 1 if dense.size else 1
        if combined is None:
            combined = dense.astype(np.int64)
        else:
            combined = combined * cardinality + dense
    return combined


def window_group_aggregate(
    combined_keys: np.ndarray,
    agg_columns: Sequence[Optional[ExecColumn]],
    agg_funcs: Sequence[str],
    windows: Sequence[Window],
) -> List[GroupedWindowResult]:
    """Aggregate each window by group.

    ``agg_columns[i]`` may be None for ``count``.  sum/avg columns must be
    affine, max/min columns order-preserving (enforced like in
    :func:`~repro.operators.aggregation.window_aggregate`).
    """
    for func in agg_funcs:
        if func not in AGG_FUNCS:
            raise PlanningError(f"unknown aggregate {func!r}")
    results: List[GroupedWindowResult] = []
    for start, end in windows:
        keys = combined_keys[start:end]
        uniques, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        # representative row (first occurrence) per group, as batch indices
        first_local = np.full(uniques.size, end - start, dtype=np.int64)
        np.minimum.at(first_local, inverse, np.arange(end - start, dtype=np.int64))
        representatives = first_local + start
        aggregates: List[np.ndarray] = []
        for col, func in zip(agg_columns, agg_funcs):
            aggregates.append(
                _grouped_aggregate(col, func, start, end, inverse, counts, uniques.size)
            )
        results.append(GroupedWindowResult(representatives, counts, aggregates))
    return results


def _grouped_aggregate(
    column: Optional[ExecColumn],
    func: str,
    start: int,
    end: int,
    inverse: np.ndarray,
    counts: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    if func == "count":
        return counts.astype(np.int64)
    if column is None:
        raise PlanningError(f"aggregate {func!r} needs a column")
    codes = column.codes[start:end]
    if func in ("sum", "avg"):
        affine = column.affine
        if affine is None:
            raise PlanningError(
                f"sum/avg on group-by column {column.name!r} requires affine codes"
            )
        scale, offset = affine
        code_sums = np.bincount(
            inverse, weights=codes.astype(np.float64), minlength=n_groups
        )
        # bincount works in float64; exact for |sum| < 2^53, which the
        # fixed-point domains guarantee in practice.
        sums = scale * code_sums + offset * counts
        if func == "sum":
            return np.rint(sums).astype(np.int64)
        return sums / np.maximum(counts, 1)
    if not column.supports_order:
        raise PlanningError(
            f"max/min on group-by column {column.name!r} requires ordered codes"
        )
    fill = np.iinfo(np.int64).min if func == "max" else np.iinfo(np.int64).max
    extreme = np.full(n_groups, fill, dtype=np.int64)
    if func == "max":
        np.maximum.at(extreme, inverse, codes)
    else:
        np.minimum.at(extreme, inverse, codes)
    return column.decode(extreme)  # lint: force-decode (one value per group)
