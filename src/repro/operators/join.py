"""Stream joins: the window-to-partition-window equi-join of Q3.

Q3 joins a sliding window ``A`` of a stream with a per-vehicle
"latest row" partition window ``L`` of the same stream:

    select distinct L.* from SegSpeedStr [range 30 slide 1] as A,
    SegSpeedStr [partition by vehicle rows 1] as L
    where A.vehicle == L.vehicle

Semantically: for every vehicle observed in the recent window, emit its
latest known tuple.  The kernel is a hash semi-join: distinct keys of the
window probe the partition state.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..stream.window import PartitionWindowState


def semi_join_latest(
    window_keys: np.ndarray, state: PartitionWindowState
) -> Dict[str, np.ndarray]:
    """Latest partition rows for the distinct keys present in a window.

    Returns per-column arrays (one row per matched key, ordered by key);
    empty dict when nothing matches.
    """
    distinct_keys = np.unique(np.asarray(window_keys, dtype=np.int64))
    return state.lookup(distinct_keys)
