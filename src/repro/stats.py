"""Column statistics feeding the compression-ratio estimators (Sec. V).

The paper's per-codec compression ratios (Eqs. 10-17) are functions of a
small set of dataset properties: the Elias code domains ``EGDomain`` /
``EDDomain``, the per-element significant-byte array ``ValueDomain``, the
Base-Delta domain ``BDDomain``, the average run length and the number of
distinct values ``Kindnum``.  :class:`ColumnStats` computes all of them in
one pass over a (sample of a) column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .errors import CodecError
from .types import bytes_for_signed, bytes_for_unsigned


def elias_gamma_bits(value: int) -> int:
    """Length in bits of the Elias Gamma code of a positive integer."""
    if value < 1:
        raise CodecError("Elias Gamma encodes positive integers only")
    n = int(value).bit_length() - 1
    return 2 * n + 1


def elias_delta_bits(value: int) -> int:
    """Length in bits of the Elias Delta code of a positive integer."""
    if value < 1:
        raise CodecError("Elias Delta encodes positive integers only")
    n = int(value).bit_length() - 1
    return elias_gamma_bits(n + 1) + n


def average_run_length(values: np.ndarray) -> float:
    """Mean length of runs of equal consecutive values (empty -> 0)."""
    n = len(values)
    if n == 0:
        return 0.0
    changes = int(np.count_nonzero(values[1:] != values[:-1]))
    return n / (changes + 1)


def _significant_bits(magnitude: np.ndarray) -> np.ndarray:
    """Unsigned significant bits of non-negative int64 values (0 -> 1)."""
    bits = np.ones(magnitude.shape, dtype=np.int64)
    nonzero = magnitude > 0
    bits[nonzero] = (
        np.floor(np.log2(magnitude[nonzero].astype(np.float64))).astype(np.int64) + 1
    )
    return bits


def value_domain(values: np.ndarray, *, signed: Optional[bool] = None) -> np.ndarray:
    """Per-element significant byte widths (the paper's ``ValueDomain``).

    If ``signed`` is None it is inferred from the column: a column with any
    negative value is stored in two's complement, so *every* element
    (including positives) pays one sign bit; an all-non-negative column uses
    plain leading-zero suppression.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    if signed is None:
        signed = bool((values < 0).any())
    magnitude = np.abs(values)
    bits = _significant_bits(magnitude)
    if signed:
        # Two's complement: +1 sign bit, except v == -2^k fits in k+1 bits.
        negative = values < 0
        neg_pow2 = negative & ((magnitude & (magnitude - 1)) == 0)
        bits = bits + 1
        bits[neg_pow2] -= 1
    widths = (bits + 7) // 8
    np.minimum(widths, 8, out=widths)
    # Guard against float log imprecision near 2^53+ boundaries.
    big = magnitude >= (1 << 52)
    if big.any():
        widths[big] = [
            bytes_for_signed(int(v), int(v)) if signed else bytes_for_unsigned(int(v))
            for v in values[big]
        ]
    return widths


@dataclass(frozen=True)
class ColumnStats:
    """One-pass statistics of an integer column used by Eqs. 10-17."""

    n: int
    size_c: int  # bytes per source element (the paper's Size_C)
    min_value: int
    max_value: int
    kindnum: int
    avg_run_length: float
    value_domain_max: int
    value_domain_sum: int
    #: Distribution of per-element widths, kept for the NSV estimator and
    #: diagnostics; indices are byte widths 1..8.
    width_histogram: tuple = field(default=(0,) * 9)
    #: consecutive-difference range, feeding the delta-chain estimator
    delta_min: int = 0
    delta_max: int = 0

    @classmethod
    def from_values(
        cls, values: np.ndarray, size_c: Optional[int] = None
    ) -> "ColumnStats":
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            raise CodecError("cannot compute statistics of an empty column")
        size_c = int(size_c) if size_c is not None else 8
        widths = value_domain(values)
        hist = np.bincount(widths, minlength=9)
        diffs = np.diff(values) if values.size > 1 else np.zeros(1, dtype=np.int64)
        return cls(
            n=int(values.size),
            size_c=size_c,
            min_value=int(values.min()),
            max_value=int(values.max()),
            kindnum=int(np.unique(values).size),
            avg_run_length=average_run_length(values),
            value_domain_max=int(widths.max()),
            value_domain_sum=int(widths.sum()),
            width_histogram=tuple(int(x) for x in hist),
            delta_min=int(diffs.min()),
            delta_max=int(diffs.max()),
        )

    # ----- derived domains used by the ratio estimators -----------------

    @property
    def all_positive_domain(self) -> bool:
        """Whether Elias codes apply (non-negative after the +1 shift)."""
        return self.min_value >= 0

    @property
    def eg_domain_bytes(self) -> int:
        """``EGDomain``: max bytes of an aligned Elias Gamma codeword."""
        if not self.all_positive_domain:
            raise CodecError("EGDomain undefined for columns with negatives")
        return (elias_gamma_bits(self.max_value + 1) + 7) // 8

    @property
    def ed_domain_bytes(self) -> int:
        """``EDDomain``: max bytes of an aligned Elias Delta codeword."""
        if not self.all_positive_domain:
            raise CodecError("EDDomain undefined for columns with negatives")
        return (elias_delta_bits(self.max_value + 1) + 7) // 8

    @property
    def ns_width(self) -> int:
        """``ValueDomain_MAX``: fixed width chosen by Null Suppression."""
        return self.value_domain_max

    @property
    def bd_domain_bytes(self) -> int:
        """``BDDomain``: bytes needed for deltas from the column minimum."""
        return bytes_for_unsigned(self.max_value - self.min_value)

    @property
    def delta_domain_bytes(self) -> int:
        """Bytes needed per consecutive difference (delta-chain codec)."""
        return bytes_for_signed(self.delta_min, self.delta_max)

    @property
    def dict_code_bytes(self) -> int:
        """Bytes per Dictionary code: ceil(log2(Kindnum) / 8), at least 1."""
        if self.kindnum <= 1:
            return 1
        bits = (self.kindnum - 1).bit_length()
        return max((bits + 7) // 8, 1)

    @property
    def bitmap_bits_per_element(self) -> int:
        """Bits per element under Bitmap: 2^ceil(log2 Kindnum) (Eq. 17)."""
        if self.kindnum <= 1:
            return 1
        return 1 << (self.kindnum - 1).bit_length()
