"""Text reporting: fixed-width tables and run comparisons.

The benchmark harness and the CLI render every paper table through this
module; it is public API so downstream users can print their own
experiment grids the same way.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

from .core.metrics import RunReport
from .core.profiler import STAGES
from .net.faults import FAULT_KINDS, FaultReport

Cell = Union[str, int, float]


class TextTable:
    """A fixed-width text table accumulated row by row.

    Floats render with three decimals by default; pass pre-formatted
    strings for custom formatting.  ``render(markdown=True)`` emits a
    GitHub-flavoured markdown table instead.
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add(self, *cells: Cell) -> "TextTable":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(
            [f"{c:.3f}" if isinstance(c, float) else str(c) for c in cells]
        )
        return self

    def render(self, markdown: bool = False) -> str:
        if markdown:
            lines = []
            if self.title:
                lines.append(f"**{self.title}**")
                lines.append("")
            lines.append("| " + " | ".join(self.headers) + " |")
            lines.append("|" + "|".join("---" for _ in self.headers) + "|")
            for row in self.rows:
                lines.append("| " + " | ".join(row) + " |")
            return "\n".join(lines)
        widths = [
            max(len(h), *(len(r[i]) for r in self.rows)) if self.rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def compare_runs(
    reports: Mapping[str, RunReport],
    baseline: Optional[str] = None,
    title: str = "Run comparison",
) -> TextTable:
    """Side-by-side comparison of runs, optionally normalized to one.

    With ``baseline`` set, throughput and latency show ratios against that
    run (the way the paper's Figs. 5/6 normalize to the uncompressed
    engine).
    """
    if baseline is not None and baseline not in reports:
        raise KeyError(f"baseline {baseline!r} not among reports")
    base = reports[baseline] if baseline else None
    table = TextTable(
        ["run", "throughput", "latency", "r", "space saving", "bytes sent"],
        title=title,
    )
    for name, rep in reports.items():
        if base is not None and base.throughput > 0 and base.avg_latency > 0:
            throughput = f"{rep.throughput / base.throughput:.2f}x"
            latency = f"{rep.avg_latency / base.avg_latency:.2f}x"
        else:
            throughput = f"{rep.throughput:,.0f} tup/s"
            latency = f"{rep.avg_latency * 1e3:.2f} ms"
        table.add(
            name,
            throughput,
            latency,
            f"{rep.compression_ratio:.2f}",
            f"{rep.space_saving * 100:.1f}%",
            rep.profiler.bytes_sent,
        )
    return table


def stage_breakdown_table(
    reports: Mapping[str, RunReport], title: str = "Time breakdown"
) -> TextTable:
    """Per-stage share of total time for each run."""
    table = TextTable(["run", *STAGES], title=title)
    for name, rep in reports.items():
        breakdown = rep.breakdown()
        table.add(name, *(f"{breakdown[s] * 100:.1f}%" for s in STAGES))
    return table


def serve_report_table(report, title: str = "Serving report") -> TextTable:
    """Render a :class:`~repro.serve.report.ServeReport` as two sections.

    A fleet summary (health counts, goodput, p95) followed by one row per
    tenant.  Accepts the report duck-typed to avoid importing the serving
    layer for users who only want engine tables.
    """
    table = TextTable(
        [
            "tenant",
            "health",
            "delivered",
            "shed",
            "dead",
            "restarts",
            "trips",
            "ckpts",
            "p95 ms",
        ],
        title=title,
    )
    for t in report.tenants:
        table.add(
            t.tenant,
            t.health,
            f"{t.batches_delivered}/{t.batches_total}",
            t.batches_shed,
            t.dead_letters,
            t.restarts,
            t.breaker_trips,
            t.checkpoints_saved,
            f"{t.p95_latency_s() * 1e3:.2f}",
        )
    return table


def fault_report_table(
    report: FaultReport, title: str = "Fault report"
) -> TextTable:
    """Render one run's fault/recovery accounting as a metric table."""
    table = TextTable(["metric", "value"], title=title)
    for kind in FAULT_KINDS:
        table.add(f"injected {kind}", report.injected.get(kind, 0))
    table.add("detected (batches)", report.detected)
    table.add("retransmissions", report.retried)
    table.add("recovered (batches)", report.recovered)
    table.add("quarantined (batches)", report.quarantined)
    table.add("quarantined tuples", report.quarantined_tuples)
    table.add("corrupt frames seen", report.corrupt_frames)
    table.add("timeouts", report.timeouts)
    table.add("duplicates discarded", report.duplicates_discarded)
    table.add("retry virtual seconds", f"{report.retry_seconds:.4f}")
    table.add("codec demotions", len(report.codec_demotions))
    for demotion in report.codec_demotions:
        table.add(
            f"  demoted {demotion.column}",
            f"{demotion.codec} after {demotion.failures} failures",
        )
    return table
