"""Differential oracle: seeded fuzzing of direct-on-compressed execution.

The paper's central claim (Sec. V) is that querying compressed codes
directly is semantically identical to decompress-then-process.  This
package searches the codec x operator x query space for counterexamples:

* :mod:`.generator` — seeded random schemas, drifting data distributions,
  and random-but-valid streaming SQL built from :mod:`repro.sql.ast`;
* :mod:`.differential` — runs each case four ways (uncompressed
  baseline, ``force_decode=True`` decompress-then-query, direct
  execution pinned to each ``PAPER_POOL`` codec, and direct execution on
  the scalar-reference kernels) and compares normalized results;
* :mod:`.shrinker` — minimizes a failing case (rows, columns, query
  clauses) to a small deterministic repro;
* :mod:`.replay` — repro-file serialization and replay;
* :mod:`.campaign` — the ``python -m repro oracle`` campaign runner and
  the codec x operator direct-path coverage matrix.
"""

from .campaign import CampaignConfig, CampaignResult, run_campaign
from .chaos import ChaosConfig, ChaosMismatch, ChaosResult, run_chaos_campaign
from .differential import CaseOutcome, DifferentialConfig, Mismatch, run_case
from .generator import OracleCase, WorkloadGenerator
from .replay import load_case, replay_file, save_case
from .shrinker import shrink_case

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ChaosConfig",
    "ChaosMismatch",
    "ChaosResult",
    "run_chaos_campaign",
    "run_campaign",
    "CaseOutcome",
    "DifferentialConfig",
    "Mismatch",
    "run_case",
    "OracleCase",
    "WorkloadGenerator",
    "load_case",
    "replay_file",
    "save_case",
    "shrink_case",
]
