"""Repro-file serialization and deterministic replay.

A repro file is a self-contained JSON document: the schema, the SQL text
(re-parsed on load, so the file is human-editable), the stored-domain
integer data of every batch, and the (codec, path) the case diverged on.
``python -m repro oracle --replay FILE`` re-runs the three-way
differential on exactly that case.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..sql.parser import parse
from ..stream.schema import Field, Schema
from .differential import CaseOutcome, DifferentialConfig, run_case
from .generator import STREAM, OracleCase

FORMAT = "compressstreamdb-oracle-repro/1"


def save_case(
    case: OracleCase,
    path: str,
    codec: Optional[str] = None,
    mismatch_path: Optional[str] = None,
    detail: Optional[str] = None,
) -> str:
    """Write ``case`` (plus the divergence it reproduces) to ``path``."""
    payload = {
        "format": FORMAT,
        "seed": case.seed,
        "case_id": case.case_id,
        "stream": case.stream,
        "codec": codec,
        "path": mismatch_path,
        "detail": detail,
        "sql": case.sql,
        "schema": [
            {
                "name": f.name,
                "kind": f.kind,
                "size": f.size,
                "decimals": f.decimals,
            }
            for f in case.schema
        ],
        "batches": [
            {name: [int(v) for v in arr] for name, arr in batch.items()}
            for batch in case.batches
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_case(path: str) -> Tuple[OracleCase, Optional[str], Optional[str]]:
    """Load a repro file; returns (case, codec, path) of the divergence."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("format") != FORMAT:
        raise ReproError(
            f"{path}: not an oracle repro file (format={data.get('format')!r})"
        )
    schema = Schema(
        [
            Field(
                d["name"],
                d["kind"],
                int(d["size"]),
                decimals=int(d.get("decimals", 0)),
            )
            for d in data["schema"]
        ]
    )
    script = parse(data["sql"])
    if script.derived:
        raise ReproError(f"{path}: repro SQL must be a single query")
    batches = [
        {name: np.asarray(values, dtype=np.int64) for name, values in batch.items()}
        for batch in data["batches"]
    ]
    case = OracleCase(
        case_id=int(data.get("case_id", 0)),
        seed=int(data.get("seed", 0)),
        schema=schema,
        query=script.main,
        batches=batches,
        stream=str(data.get("stream", STREAM)),
    )
    return case, data.get("codec"), data.get("path")


def replay_file(
    path: str, config: DifferentialConfig = DifferentialConfig()
) -> CaseOutcome:
    """Re-run the differential on a repro file (codec-restricted if saved)."""
    case, codec, _ = load_case(path)
    if codec:
        config = dataclasses.replace(config, codecs=(codec,))
    return run_case(case, config)
