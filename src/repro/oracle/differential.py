"""Differential execution of one oracle case across independent paths.

Each case runs through four paths and the results must agree:

(a) **baseline** — every column stored with the identity codec and
    decompressed before querying: the uncompressed reference semantics;
(b) **decode**  — every column pinned to the codec under test, with
    ``force_decode=True``: decompress-then-query, checking the codec's
    roundtrip under real query access patterns;
(c) **direct**  — the same pinned codec with direct processing enabled:
    the paper's query-without-decompression path, checking the direct
    kernels (code-space predicates, affine aggregation, dedup on codes);
(d) **scalar-reference** — path (c) re-run with every batch kernel
    dispatched to its original scalar loop
    (:func:`repro.compression.kernels.scalar_reference_mode`), so the
    vectorized rewrite is differentially checked end-to-end against the
    per-value implementations it replaced;
(e) **optimized** — path (c) re-run on the plan produced by the
    rule-based optimizer (:mod:`repro.optimizer`), with the pinned codec
    as hint and column statistics bound from the case's own batches, so
    predicate pushdown, cascade reordering, run fusion and predicate
    simplification must all be answer-preserving on the generator's full
    widened grammar.

Columns where the pinned codec is not applicable (e.g. EG on negatives)
fall back to identity, exactly like the engine's selector fallback, and
are credited to identity — not the pinned codec — in the coverage matrix.

Results are compared after normalization: rows are canonicalized by a
lexicographic sort on rounded values (grouped output order may legally
differ between code space and value space), float columns compare within
tolerance, integer columns must match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..compression.kernels import scalar_reference_mode
from ..compression.registry import PAPER_POOL, get_codec
from ..core.profiler import CoverageMatrix
from ..core.server import Server
from ..errors import CodecNotApplicable, ReproError
from ..sql.executor import QueryResult
from ..sql.planner import (
    OUT_AGG,
    OUT_COLUMN,
    OUT_EXPR,
    OUT_KEY,
    OUT_LAST,
    JoinPlan,
    LiteralPredicate,
    PassthroughPlan,
    Plan,
    WindowAggPlan,
)
from ..stats import ColumnStats
from ..stream.batch import Batch, CompressedBatch
from ..stream.window import MODE_TIME
from .generator import OracleCase

PATH_DECODE = "decode"
PATH_DIRECT = "direct"
PATH_SCALAR = "scalar-reference"
PATH_OPTIMIZED = "optimized"

#: mutation hook: (result, codec, path) -> result; used to self-test the
#: oracle (inject a comparator-visible fault and watch it get caught)
MutateHook = Callable[[QueryResult, str, str], QueryResult]


@dataclass(frozen=True)
class DifferentialConfig:
    codecs: Tuple[str, ...] = PAPER_POOL
    rtol: float = 1e-9
    atol: float = 1e-9
    mutate: Optional[MutateHook] = None
    #: also run the direct path on the scalar-reference kernels (leg d)
    scalar_leg: bool = True
    #: also run the direct path on the *optimized* plan (leg e): the case
    #: is re-planned through :mod:`repro.optimizer` with the pinned codec
    #: as hint and statistics bound from the case's own batches, so every
    #: rewrite rule is held to bit-equality with the naive plan
    optimized_leg: bool = True


@dataclass
class Mismatch:
    """One divergence between a codec path and the baseline."""

    case_id: int
    codec: str
    path: str  # PATH_DECODE | PATH_DIRECT
    detail: str
    sql: str

    def __str__(self) -> str:
        return (
            f"case {self.case_id} codec {self.codec} [{self.path}]: "
            f"{self.detail}\n  sql: {self.sql}"
        )


@dataclass
class PathRun:
    """Merged result of one path plus per-batch materialization info."""

    result: QueryResult
    #: per batch: codec actually used per column (identity on fallback)
    choices: List[Dict[str, str]] = field(default_factory=list)
    #: per batch: referenced columns served directly (compressed codes)
    direct_columns: List[Tuple[str, ...]] = field(default_factory=list)


@dataclass
class CaseOutcome:
    case: OracleCase
    mismatches: List[Mismatch]
    coverage: CoverageMatrix

    @property
    def ok(self) -> bool:
        return not self.mismatches


# ----- execution -------------------------------------------------------


def compress_case_batch(batch: Batch, codec_name: Optional[str]) -> CompressedBatch:
    """Compress every column with the pinned codec (identity fallback)."""
    identity = get_codec("identity")
    pinned = get_codec(codec_name) if codec_name else identity
    columns = {}
    for f in batch.schema:
        values = batch.column(f.name)
        stats = ColumnStats.from_values(values, size_c=f.size)
        codec = pinned if pinned.applicable(stats) else identity
        try:
            cc = codec.compress(values)
        except CodecNotApplicable:
            cc = identity.compress(values)
        cc.source_size_c = f.size
        columns[f.name] = cc
    return CompressedBatch(batch.schema, batch.n, columns)


def run_path(
    plan: Plan,
    batches: Sequence[Batch],
    codec_name: Optional[str],
    force_decode: bool,
) -> PathRun:
    """Run all batches through a fresh server on one compression path."""
    server = Server(plan, force_decode=force_decode)
    run = PathRun(result=QueryResult())
    results: List[QueryResult] = []
    for batch in batches:
        cb = compress_case_batch(batch, codec_name)
        report = server.process(cb)
        results.append(report.result)
        run.choices.append(dict(cb.choices))
        run.direct_columns.append(report.direct_columns)
    run.result = QueryResult.merge(results)
    return run


# ----- normalization + comparison -------------------------------------


def canonicalize(result: QueryResult) -> Dict[str, np.ndarray]:
    """Row-order canonicalization: lexicographic sort on rounded values."""
    names = sorted(result.columns)
    if not names or result.n_rows == 0:
        return {name: result.columns[name] for name in names}
    keys = []
    for name in reversed(names):  # lexsort: last key is primary
        col = result.columns[name]
        if np.issubdtype(col.dtype, np.floating):
            keys.append(np.round(col, 6))
        else:
            keys.append(col)
    order = np.lexsort(keys)
    return {name: result.columns[name][order] for name in names}


def compare_results(
    base: QueryResult,
    other: QueryResult,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> Optional[str]:
    """None when equivalent, else a human-readable divergence summary."""
    base_names = sorted(base.columns)
    other_names = sorted(other.columns)
    if base_names != other_names:
        return f"output columns differ: {base_names} vs {other_names}"
    if base.n_rows != other.n_rows:
        return f"row counts differ: {base.n_rows} vs {other.n_rows}"
    a = canonicalize(base)
    b = canonicalize(other)
    for name in base_names:
        col_a, col_b = a[name], b[name]
        is_float = np.issubdtype(col_a.dtype, np.floating) or np.issubdtype(
            col_b.dtype, np.floating
        )
        if is_float:
            # equal_nan: outer-join misses emit NaN on every path
            bad = ~np.isclose(col_a, col_b, rtol=rtol, atol=atol, equal_nan=True)
        else:
            bad = np.asarray(col_a) != np.asarray(col_b)
        if bad.any():
            i = int(np.nonzero(bad)[0][0])
            return (
                f"column {name!r} differs at canonical row {i}: "
                f"{col_a[i]!r} vs {col_b[i]!r} "
                f"({int(bad.sum())} of {col_a.size} rows differ)"
            )
    return None


# ----- coverage --------------------------------------------------------


def column_operator_kinds(plan: Plan) -> Dict[str, Set[str]]:
    """Which operator kinds each referenced column feeds, from the plan."""
    kinds: Dict[str, Set[str]] = {name: set() for name in plan.profile.referenced}

    def mark(name: Optional[str], kind: str) -> None:
        if name is not None:
            kinds.setdefault(name, set()).add(kind)

    def mark_predicate(node) -> None:
        if node is None:
            return
        if isinstance(node, LiteralPredicate):
            mark(node.column, "selection")
        else:
            for child in node.children:
                mark_predicate(child)

    if isinstance(plan, WindowAggPlan):
        mark_predicate(plan.where)
        for key in plan.group_keys:
            mark(key, "groupby")
        for out in plan.outputs + plan.hidden_outputs:
            if out.kind == OUT_AGG:
                mark(out.source_column, "aggregation")
            elif out.kind in (OUT_KEY, OUT_LAST):
                mark(out.source_column, "projection")
        if plan.window.mode == MODE_TIME:
            mark(plan.window.time_column, "window")
    elif isinstance(plan, PassthroughPlan):
        mark_predicate(plan.where)
        for out in plan.outputs:
            if out.kind == OUT_COLUMN:
                mark(out.source_column, "projection")
                if plan.distinct:
                    mark(out.source_column, "distinct")
            elif out.kind == OUT_EXPR and out.expr is not None:
                from ..sql.executor import _expr_refs

                for ref in _expr_refs(out.expr):
                    mark(ref.name, "projection")
    elif isinstance(plan, JoinPlan):
        for side in plan.sides:
            mark(side.key_column, "join")
            mark(side.probe_column, "join")
        for out in plan.outputs:
            mark(out.source_column, "projection")
        if plan.window.mode == MODE_TIME:
            mark(plan.window.time_column, "window")
    else:  # pragma: no cover - plan taxonomy is closed
        raise ReproError(f"unknown plan type {type(plan).__name__}")
    return kinds


def record_coverage(
    matrix: CoverageMatrix, plan: Plan, run: PathRun
) -> None:
    """Credit the direct run's per-batch materialization to the matrix."""
    kinds = column_operator_kinds(plan)
    referenced = sorted(plan.profile.referenced)
    for choices, direct_cols in zip(run.choices, run.direct_columns):
        direct_set = set(direct_cols)
        for name in referenced:
            codec = choices.get(name)
            if codec is None:
                continue
            for kind in kinds.get(name, ()):
                matrix.record(codec, kind, direct=name in direct_set)


# ----- the three-way check ---------------------------------------------


def run_case(
    case: OracleCase, config: DifferentialConfig = DifferentialConfig()
) -> CaseOutcome:
    """Run one case through all three paths for every configured codec."""
    plan = case.plan()
    batches = case.to_batches()
    coverage = CoverageMatrix()
    mismatches: List[Mismatch] = []

    baseline = run_path(plan, batches, None, force_decode=True)

    paths = [(PATH_DECODE, True), (PATH_DIRECT, False)]
    if config.scalar_leg:
        paths.append((PATH_SCALAR, False))
    if config.optimized_leg:
        paths.append((PATH_OPTIMIZED, False))
    for codec_name in config.codecs:
        for path, force_decode in paths:
            if path == PATH_SCALAR:
                with scalar_reference_mode():
                    run = run_path(plan, batches, codec_name, force_decode)
            elif path == PATH_OPTIMIZED:
                run = run_path(
                    case.optimized_plan(codec_hint=codec_name),
                    batches,
                    codec_name,
                    force_decode,
                )
            else:
                run = run_path(plan, batches, codec_name, force_decode)
            result = run.result
            if config.mutate is not None:
                result = config.mutate(result, codec_name, path)
            detail = compare_results(
                baseline.result, result, rtol=config.rtol, atol=config.atol
            )
            if detail is not None:
                mismatches.append(
                    Mismatch(
                        case_id=case.case_id,
                        codec=codec_name,
                        path=path,
                        detail=detail,
                        sql=case.sql,
                    )
                )
            if path == PATH_DIRECT:
                record_coverage(coverage, plan, run)
    return CaseOutcome(case=case, mismatches=mismatches, coverage=coverage)
