"""Campaign runner: N seeded cases x three paths x every pool codec.

A campaign iterates the workload generator, runs each case through the
three-way differential, accumulates the codec x operator coverage
matrix, and on divergence shrinks the case and writes a deterministic
repro file.  ``python -m repro oracle`` is a thin CLI over this module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..compression.registry import PAPER_POOL
from ..core.profiler import CoverageMatrix
from .differential import DifferentialConfig, Mismatch, MutateHook, run_case
from .generator import WorkloadGenerator
from .replay import save_case
from .shrinker import shrink_case


@dataclass(frozen=True)
class CampaignConfig:
    cases: int = 100
    seed: int = 0
    codecs: Tuple[str, ...] = PAPER_POOL
    shrink: bool = True
    #: repro files land here (created lazily, only on divergence)
    out_dir: str = "oracle-repros"
    #: campaign fails if any codec is hit by fewer operator kinds (0 = off)
    min_kinds: int = 0
    #: stop after this many diverging cases (their repros are enough)
    max_failures: int = 5
    #: test-only fault injection, threaded into the differential config
    mutate: Optional[MutateHook] = None
    #: run the optimized-plan leg on every case (``--optimize`` in the
    #: CLI; the optimizer-smoke CI job gates on this at zero mismatches)
    optimized: bool = True


@dataclass
class CampaignResult:
    config: CampaignConfig
    cases_run: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)
    coverage: CoverageMatrix = field(default_factory=CoverageMatrix)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.undercovered()

    def undercovered(self):
        return self.coverage.undercovered(self.config.codecs, self.config.min_kinds)


ProgressFn = Callable[[int, int], None]


def run_campaign(
    config: CampaignConfig, progress: Optional[ProgressFn] = None
) -> CampaignResult:
    generator = WorkloadGenerator(config.seed)
    diff_config = DifferentialConfig(
        codecs=config.codecs,
        mutate=config.mutate,
        optimized_leg=config.optimized,
    )
    result = CampaignResult(config=config)
    failing_cases = 0
    for index in range(config.cases):
        case = generator.case(index)
        outcome = run_case(case, diff_config)
        result.cases_run += 1
        result.coverage.merge(outcome.coverage)
        if outcome.mismatches:
            failing_cases += 1
            result.mismatches.extend(outcome.mismatches)
            first = outcome.mismatches[0]
            repro = case
            if config.shrink:
                try:
                    repro = shrink_case(case, first.codec, first.path, diff_config)
                except Exception:  # lint: broad-except (best-effort shrink)
                    pass  # a failed shrink still leaves the original repro
            os.makedirs(config.out_dir, exist_ok=True)
            path = os.path.join(
                config.out_dir,
                f"case{case.case_id:05d}_{first.codec}_{first.path}.json",
            )
            result.repro_paths.append(
                save_case(
                    repro,
                    path,
                    codec=first.codec,
                    mismatch_path=first.path,
                    detail=first.detail,
                )
            )
            if failing_cases >= config.max_failures:
                break
        if progress is not None:
            progress(index + 1, config.cases)
    return result
