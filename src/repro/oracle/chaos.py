"""Chaos campaign: differential testing *through the serving layer*.

The plain oracle (:mod:`.differential`) checks that compressed execution
agrees with uncompressed execution.  The chaos campaign checks the same
end-to-end property one layer up: a seeded multi-tenant fleet is run
through the :class:`~repro.serve.supervisor.ServeSupervisor` under
injected link faults, poison batches and crash/restart cycles, and every
*delivered* result must still be exactly what a clean, uninterrupted
single-tenant run produces.

Concretely, for each case the invariant has three parts:

1. **zero mismatches** — every delivered batch output equals the clean
   reference for that batch index (canonicalized, float-tolerant, via
   the PR 2 comparators);
2. **prefix-consistent subset** — delivered indices are a subset of the
   clean run's indices; nothing is invented, duplicated or reordered;
3. **accounted gaps** — every missing batch is explained by a
   dead-letter quarantine, deterministic load shedding, or a parked
   (QUARANTINED) tenant; no batch silently vanishes.

On failure the campaign writes a deterministic repro JSON (the tenant
specs and fault parameters needed to replay the case) plus a checkpoint
dump — the same artifact plumbing CI already collects for the oracle.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..net.faults import FaultProfile
from ..serve.checkpoint import CheckpointStore
from ..serve.report import QUARANTINED as HEALTH_QUARANTINED
from ..serve.session import TenantSession, TenantSpec
from ..serve.supervisor import ServeSupervisor
from .differential import compare_results

#: queries the generator cycles through (all six evaluation queries)
CHAOS_QUERIES = ("q1", "q2", "q3", "q4", "q5", "q6")


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one chaos campaign."""

    cases: int = 10
    seed: int = 0
    tenants: int = 3
    batches: int = 6
    batch_size: int = 384
    #: upper bound for the per-tenant drop/corrupt rates the RNG draws
    max_loss_rate: float = 0.08
    #: probability that a tenant carries a poison (crash-injected) batch
    crash_probability: float = 0.3
    #: cap retries so heavy-loss tenants dead-letter instead of grinding
    max_retries: int = 3
    out_dir: str = "chaos-artifacts"
    max_failures: int = 3
    rtol: float = 1e-9
    atol: float = 1e-9


@dataclass
class ChaosMismatch:
    """One broken invariant in one case."""

    case_id: int
    tenant: str
    kind: str  # "mismatch" | "unaccounted" | "stuck"
    detail: str

    def __str__(self) -> str:
        return f"case {self.case_id} tenant {self.tenant} [{self.kind}]: {self.detail}"


@dataclass
class ChaosResult:
    config: ChaosConfig
    cases_run: int = 0
    tenants_run: int = 0
    batches_delivered: int = 0
    batches_dead_lettered: int = 0
    batches_shed: int = 0
    tenants_quarantined: int = 0
    mismatches: List[ChaosMismatch] = field(default_factory=list)
    artifact_paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def case_specs(config: ChaosConfig, case_id: int) -> List[TenantSpec]:
    """The seeded tenant fleet for one case — pure function of the seeds."""
    rng = np.random.default_rng([config.seed, case_id])
    specs = []
    for t in range(config.tenants):
        query = CHAOS_QUERIES[int(rng.integers(0, len(CHAOS_QUERIES)))]
        loss = float(rng.uniform(0.0, config.max_loss_rate))
        profile = FaultProfile(
            drop_rate=loss,
            corrupt_rate=loss,
            duplicate_rate=float(rng.uniform(0.0, 0.05)),
            stall_rate=float(rng.uniform(0.0, 0.05)),
            seed=int(rng.integers(0, 2**31)),
        )
        crash_batches: Tuple[int, ...] = ()
        if float(rng.random()) < config.crash_probability:
            crash_batches = (int(rng.integers(1, config.batches)),)
        from ..net.transport import ReliabilityConfig

        specs.append(
            TenantSpec(
                tenant=f"case{case_id}-t{t}",
                query=query,
                batches=config.batches,
                batch_size=config.batch_size,
                seed=int(rng.integers(0, 2**31)),
                fault_profile=profile,
                reliability=ReliabilityConfig(max_retries=config.max_retries),
                crash_batches=crash_batches,
                checkpoint_every=2,
            )
        )
    return specs


def clean_reference(spec: TenantSpec) -> Dict[int, "object"]:
    """Uninterrupted fault-free outputs for one tenant's workload."""
    from dataclasses import replace

    clean_spec = replace(
        spec, fault_profile=None, reliability=None, crash_batches=()
    )
    session = TenantSession(clean_spec)
    while not session.done:
        session.step(0.0)
    return dict(session.outputs)


def run_chaos_case(
    config: ChaosConfig, case_id: int
) -> Tuple[List[ChaosMismatch], ServeSupervisor, "ChaosCaseStats"]:
    """Run one seeded fleet through the supervisor and check invariants."""
    specs = case_specs(config, case_id)
    store = CheckpointStore()
    supervisor = ServeSupervisor(specs, store=store)
    report = supervisor.run()
    stats = ChaosCaseStats()
    mismatches: List[ChaosMismatch] = []
    by_tenant = report.by_tenant()
    for spec in specs:
        tenant = by_tenant[spec.tenant]
        stats.delivered += tenant.batches_delivered
        stats.dead_lettered += tenant.dead_letters
        stats.shed += tenant.batches_shed
        if tenant.health == HEALTH_QUARANTINED:
            stats.quarantined_tenants += 1
        delivered = supervisor.outputs(spec.tenant)
        clean = clean_reference(spec)
        # (2) prefix-consistent subset: delivered ⊆ clean indices
        extra = sorted(set(delivered) - set(clean))
        if extra:
            mismatches.append(
                ChaosMismatch(
                    case_id,
                    spec.tenant,
                    "mismatch",
                    f"delivered batches {extra} beyond the clean run",
                )
            )
            continue
        # (1) zero mismatches at every delivered index
        for index in sorted(delivered):
            detail = compare_results(
                clean[index], delivered[index], rtol=config.rtol, atol=config.atol
            )
            if detail is not None:
                mismatches.append(
                    ChaosMismatch(
                        case_id,
                        spec.tenant,
                        "mismatch",
                        f"batch {index}: {detail}",
                    )
                )
                break
        # (3) every gap is accounted for
        missing = len(clean) - len(delivered)
        accounted = tenant.dead_letters + tenant.batches_shed
        if tenant.health == HEALTH_QUARANTINED:
            accounted += tenant.batches_quarantined
        if missing > accounted:
            mismatches.append(
                ChaosMismatch(
                    case_id,
                    spec.tenant,
                    "unaccounted",
                    f"{missing} batches missing but only {accounted} accounted "
                    f"(dead-letters {tenant.dead_letters}, shed "
                    f"{tenant.batches_shed}, health {tenant.health})",
                )
            )
        if tenant.health not in ("HEALTHY", "DEGRADED", HEALTH_QUARANTINED):
            mismatches.append(
                ChaosMismatch(
                    case_id, spec.tenant, "stuck", f"health {tenant.health!r}"
                )
            )
    return mismatches, supervisor, stats


@dataclass
class ChaosCaseStats:
    delivered: int = 0
    dead_lettered: int = 0
    shed: int = 0
    quarantined_tenants: int = 0


def _write_artifacts(
    config: ChaosConfig,
    case_id: int,
    mismatches: List[ChaosMismatch],
    supervisor: ServeSupervisor,
) -> List[str]:
    """Failure artifacts: a replayable repro JSON + checkpoint dumps."""
    os.makedirs(config.out_dir, exist_ok=True)
    paths: List[str] = []
    repro = {
        "kind": "chaos-repro",
        "seed": config.seed,
        "case_id": case_id,
        "tenants": config.tenants,
        "batches": config.batches,
        "batch_size": config.batch_size,
        "max_loss_rate": config.max_loss_rate,
        "crash_probability": config.crash_probability,
        "max_retries": config.max_retries,
        "replay": (
            f"python -m repro oracle --chaos --cases 1 "
            f"--seed {config.seed} --case-offset {case_id}"
        ),
        "mismatches": [str(m) for m in mismatches],
    }
    repro_path = os.path.join(config.out_dir, f"chaos_case{case_id:05d}.json")
    with open(repro_path, "w") as fh:
        json.dump(repro, fh, indent=2, sort_keys=True)
    paths.append(repro_path)
    ckpt_dir = os.path.join(config.out_dir, f"chaos_case{case_id:05d}_checkpoints")
    for written in supervisor.store.dump(ckpt_dir):
        paths.append(str(written))
    return paths


ProgressFn = Callable[[int, int], None]


def run_chaos_campaign(
    config: ChaosConfig,
    progress: Optional[ProgressFn] = None,
    case_offset: int = 0,
) -> ChaosResult:
    """Run ``config.cases`` seeded fleets; collect mismatches + artifacts."""
    if config.cases < 1:
        raise ReproError("a chaos campaign needs at least one case")
    result = ChaosResult(config=config)
    failing = 0
    for i in range(config.cases):
        case_id = case_offset + i
        mismatches, supervisor, stats = run_chaos_case(config, case_id)
        result.cases_run += 1
        result.tenants_run += config.tenants
        result.batches_delivered += stats.delivered
        result.batches_dead_lettered += stats.dead_lettered
        result.batches_shed += stats.shed
        result.tenants_quarantined += stats.quarantined_tenants
        if mismatches:
            failing += 1
            result.mismatches.extend(mismatches)
            result.artifact_paths.extend(
                _write_artifacts(config, case_id, mismatches, supervisor)
            )
            if failing >= config.max_failures:
                break
        if progress is not None:
            progress(i + 1, config.cases)
    return result
