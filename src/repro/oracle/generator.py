"""Seeded workload generator: schemas, drifting data, random valid SQL.

Every case is derived from ``(campaign seed, case index)`` alone, so a
campaign is exactly reproducible and any case can be regenerated in
isolation.  Data is produced directly in the engine's *stored* integer
domain (float fields are fixed-point ints per the schema), which keeps
repro files byte-exact and sidesteps quantization round-off.

Queries are built as :mod:`repro.sql.ast` nodes and rendered through
:func:`repro.sql.unparse.to_sql`, so each case still exercises the full
lexer -> parser -> planner path.  Three shapes are generated, mirroring
the planner's plan taxonomy: windowed aggregation (count and time
windows, group-by, where, having with AND/OR, order by + limit),
unbounded passthrough (projection, arithmetic, distinct), and the joins:
both the legacy Q3 comma form and the explicit ``[LEFT] JOIN ... ON``
form with up to two partition sides and independent probe columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sql.ast import (
    AggregateCall,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    JoinClause,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    SourceRef,
)
from ..sql.planner import Plan, Planner
from ..sql.unparse import to_sql
from ..stream.batch import Batch
from ..stream.schema import KIND_FLOAT, KIND_INT, Field, Schema
from ..stream.window import WindowSpec

STREAM = "FuzzStr"

_COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
_AGG_FUNCS = ("avg", "sum", "max", "min", "count")


@dataclass
class OracleCase:
    """One generated differential test case."""

    case_id: int
    seed: int
    schema: Schema
    query: Query
    #: per-batch stored-domain int64 columns (same keys as the schema)
    batches: List[Dict[str, np.ndarray]] = field(default_factory=list)
    stream: str = STREAM

    @property
    def sql(self) -> str:
        return to_sql(self.query)

    @property
    def catalog(self) -> Dict[str, Schema]:
        return {self.stream: self.schema}

    def plan(self) -> Plan:
        return Planner(self.catalog).plan(_as_script(self.query))

    def optimized_plan(self, codec_hint: str = "") -> Plan:
        """The plan after the rule-based optimizer, with statistics bound
        from this case's own batches (the richest context the rules can
        get: codec hint + real run lengths / ranges / cardinalities)."""
        from ..optimizer import optimize_plan, schema_infos, stats_from_columns

        merged = {
            f.name: np.concatenate([b[f.name] for b in self.batches])
            for f in self.schema
            if all(f.name in b for b in self.batches)
        } if self.batches else {}
        stats = stats_from_columns(self.schema, merged)
        infos = schema_infos(self.schema, codec_hint=codec_hint, stats=stats)
        result = optimize_plan(
            self.plan(), infos, script=_as_script(self.query)
        )
        return result.plan

    def to_batches(self) -> List[Batch]:
        return [Batch(self.schema, columns) for columns in self.batches]

    @property
    def n_rows(self) -> int:
        return sum(
            int(next(iter(columns.values())).size) for columns in self.batches
        )

    def __repr__(self) -> str:
        return (
            f"OracleCase(id={self.case_id}, rows={self.n_rows}, "
            f"cols={len(self.schema)}, sql={self.sql!r})"
        )


def _as_script(query: Query):
    from ..sql.ast import Script

    return Script(derived=(), main=query)


# ----- drifting column regimes -----------------------------------------


class _Regime:
    """A per-column value distribution whose parameters drift per batch."""

    def __init__(self, rng: np.random.Generator, keylike: bool):
        self.keylike = keylike
        if keylike:
            # low-cardinality: good for group-by keys, DICT and Bitmap
            self.kind = rng.choice(["uniform", "runs", "binary"])
        else:
            self.kind = rng.choice(
                ["uniform", "runs", "walk", "constant", "wide"],
                p=[0.35, 0.2, 0.25, 0.1, 0.1],
            )
        # bias toward nonnegative domains so EG/ED stay applicable often
        negative_ok = not keylike and rng.random() < 0.3
        self.lo = int(rng.integers(-200, 0)) if negative_ok else int(
            rng.integers(0, 500)
        )
        self.span = int(rng.integers(1, 9)) if keylike else int(rng.integers(1, 5000))
        self.run_len = int(rng.integers(1, 9))
        self.step = int(rng.integers(1, 20))
        self.base = self.lo

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.kind == "constant":
            return np.full(n, self.base, dtype=np.int64)
        if self.kind == "binary":
            return rng.integers(0, 2, n).astype(np.int64)
        if self.kind == "uniform":
            return rng.integers(self.lo, self.lo + self.span + 1, n).astype(np.int64)
        if self.kind == "runs":
            n_runs = n // self.run_len + 1
            palette = np.arange(self.lo, self.lo + max(self.span, 2) + 1)
            values = rng.choice(palette, n_runs)
            return np.repeat(values, self.run_len)[:n].astype(np.int64)
        if self.kind == "walk":
            steps = rng.integers(-self.step, self.step + 1, n)
            out = self.base + np.cumsum(steps)
            self.base = int(out[-1])
            return out.astype(np.int64)
        # "wide": large magnitudes exercising NS widths and EG/ED limits
        return rng.integers(0, 1 << 34, n).astype(np.int64)

    def drift(self, rng: np.random.Generator) -> None:
        """Shift the distribution between batches (the adaptive trigger)."""
        roll = rng.random()
        if roll < 0.3:
            self.lo += int(rng.integers(-50, 200))
            self.base += int(rng.integers(-50, 200))
        elif roll < 0.5:
            self.span = max(1, int(self.span * rng.choice([0.5, 2, 4])))
        elif roll < 0.6:
            self.run_len = int(rng.integers(1, 12))


# ----- the generator ---------------------------------------------------


class WorkloadGenerator:
    """Derives a deterministic :class:`OracleCase` per (seed, index)."""

    def __init__(self, seed: int):
        self.seed = int(seed)

    def case(self, index: int) -> OracleCase:
        rng = np.random.default_rng([self.seed, int(index)])
        schema, keys, regimes = self._schema(rng)
        batches = self._batches(rng, schema, regimes)
        query = self._query(rng, schema, keys, batches)
        case = OracleCase(
            case_id=int(index),
            seed=self.seed,
            schema=schema,
            query=query,
            batches=batches,
        )
        case.plan()  # generator bug if this raises: every case must plan
        return case

    def cases(self, count: int):
        for index in range(count):
            yield self.case(index)

    # ----- schema + data ---------------------------------------------------

    def _schema(self, rng) -> Tuple[Schema, List[str], Dict[str, _Regime]]:
        fields = [Field("ts", KIND_INT, 8)]
        regimes: Dict[str, _Regime] = {}
        keys: List[str] = []
        n_keys = int(rng.integers(1, 3))
        for i in range(n_keys):
            name = f"k{i}"
            fields.append(Field(name, KIND_INT, int(rng.choice([4, 8]))))
            regimes[name] = _Regime(rng, keylike=True)
            keys.append(name)
        n_values = int(rng.integers(1, 3))
        for i in range(n_values):
            name = f"v{i}"
            if rng.random() < 0.35:
                fields.append(
                    Field(name, KIND_FLOAT, 8, decimals=int(rng.integers(1, 3)))
                )
            else:
                fields.append(Field(name, KIND_INT, int(rng.choice([4, 8]))))
            regimes[name] = _Regime(rng, keylike=False)
        return Schema(fields), keys, regimes

    def _batches(
        self, rng, schema: Schema, regimes: Dict[str, _Regime]
    ) -> List[Dict[str, np.ndarray]]:
        n_batches = int(rng.integers(1, 4))
        ts = int(rng.integers(0, 1000))
        batches: List[Dict[str, np.ndarray]] = []
        for b in range(n_batches):
            n = int(rng.integers(6, 40))
            columns: Dict[str, np.ndarray] = {}
            steps = rng.integers(0, 4, n)  # nondecreasing time for windows
            columns["ts"] = ts + np.cumsum(steps).astype(np.int64)
            ts = int(columns["ts"][-1])
            for name, regime in regimes.items():
                columns[name] = regime.sample(rng, n)
                if b + 1 < n_batches:
                    regime.drift(rng)
            batches.append(columns)
        return batches

    # ----- query shapes ----------------------------------------------------

    def _query(self, rng, schema, keys, batches) -> Query:
        roll = rng.random()
        if roll < 0.55:
            return self._window_agg(rng, schema, keys, batches)
        if roll < 0.85:
            return self._passthrough(rng, schema, batches)
        return self._join(rng, schema, keys, batches)

    def _window(self, rng, batches) -> WindowSpec:
        if rng.random() < 0.75:
            size = int(rng.integers(2, 13))
            roll = rng.random()
            if roll < 0.5:
                slide = size  # tumbling
            elif roll < 0.9:
                slide = int(rng.integers(1, size + 1))
            else:
                slide = size + int(rng.integers(1, 5))  # sampling window
            return WindowSpec.count(size, slide)
        span = max(int(batches[-1]["ts"][-1]) - int(batches[0]["ts"][0]), 4)
        size = int(rng.integers(2, max(span // 2, 3)))
        slide = int(rng.integers(1, size + 1))
        return WindowSpec.time(size, slide, "ts")

    def _window_agg(self, rng, schema: Schema, keys, batches) -> Query:
        window = self._window(rng, batches)
        group_keys = [k for k in keys if rng.random() < 0.5]
        items: List[SelectItem] = []
        out = 0
        for k in group_keys:
            if rng.random() < 0.8:
                items.append(SelectItem(ColumnRef(k)))
        aggregables = [f.name for f in schema]
        for _ in range(int(rng.integers(1, 3))):
            func = str(rng.choice(_AGG_FUNCS))
            if func == "count" and rng.random() < 0.5:
                call = AggregateCall("count", None)
            else:
                call = AggregateCall(func, ColumnRef(str(rng.choice(aggregables))))
            items.append(SelectItem(call, alias=f"o{out}"))
            out += 1
        if rng.random() < 0.25:  # an OUT_LAST / plain column output
            name = str(rng.choice([f.name for f in schema]))
            if all(
                not (isinstance(i.expr, ColumnRef) and i.expr.name == name)
                for i in items
            ):
                items.append(SelectItem(ColumnRef(name)))
        where = self._where(rng, schema, batches)
        having = self._having(rng, schema, items) if rng.random() < 0.3 else None
        order_by, limit = self._order_limit(rng, schema, items)
        return Query(
            items=tuple(items),
            sources=(SourceRef(STREAM, window),),
            where=where,
            group_by=tuple(ColumnRef(k) for k in group_keys),
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def _order_limit(
        self, rng, schema: Schema, items: Sequence[SelectItem]
    ) -> Tuple[Tuple[OrderItem, ...], Optional[int]]:
        if rng.random() >= 0.3:
            return (), None
        candidates: List = [
            ColumnRef(i.output_name)
            for i in items
            if isinstance(i.expr, (ColumnRef, AggregateCall))
        ]
        # sometimes sort on an aggregate that is not in the select list
        candidates.append(AggregateCall("count", None))
        n_keys = int(rng.integers(1, min(len(candidates), 2) + 1))
        picks = rng.choice(len(candidates), size=n_keys, replace=False)
        order_by = tuple(
            OrderItem(candidates[int(p)], desc=bool(rng.random() < 0.5))
            for p in picks
        )
        limit = int(rng.integers(1, 5)) if rng.random() < 0.7 else None
        return order_by, limit

    def _passthrough(self, rng, schema: Schema, batches) -> Query:
        names = [f.name for f in schema]
        picked = [n for n in names if rng.random() < 0.6] or [names[0]]
        items = [SelectItem(ColumnRef(n)) for n in picked]
        distinct = rng.random() < 0.4
        if not distinct and rng.random() < 0.4:
            ints = [f.name for f in schema if f.kind == KIND_INT]
            if len(ints) >= 1:
                a = ColumnRef(str(rng.choice(ints)))
                op = str(rng.choice(["+", "-", "*", "/"]))
                k = int(rng.integers(2, 7))
                from ..sql.ast import BinaryOp

                items.append(SelectItem(BinaryOp(op, a, Literal(k)), alias="ex0"))
        where = self._where(rng, schema, batches)
        return Query(
            items=tuple(items),
            sources=(SourceRef(STREAM, WindowSpec.unbounded()),),
            where=where,
            distinct=distinct,
        )

    def _join(self, rng, schema: Schema, keys, batches) -> Query:
        if rng.random() < 0.5:
            return self._explicit_join(rng, schema, keys, batches)
        key = str(rng.choice(keys))
        window = WindowSpec.count(int(rng.integers(2, 10)), int(rng.integers(1, 6)))
        partition = WindowSpec.partition(key, int(rng.integers(1, 4)))
        names = [f.name for f in schema]
        picked = sorted({key} | {n for n in names if rng.random() < 0.5})
        items = tuple(SelectItem(ColumnRef(n, table="L")) for n in picked)
        return Query(
            items=items,
            sources=(
                SourceRef(STREAM, window, alias="A"),
                SourceRef(STREAM, partition, alias="L"),
            ),
            where=Comparison(
                "==", ColumnRef(key, table="A"), ColumnRef(key, table="L")
            ),
            distinct=True,
        )

    def _explicit_join(self, rng, schema: Schema, keys, batches) -> Query:
        """``[LEFT] JOIN ... ON`` form: 1-2 sides, independent probes."""
        window = WindowSpec.count(int(rng.integers(2, 10)), int(rng.integers(1, 6)))
        # probes must type-match the key (both plain ints in this schema)
        probe_pool = [
            f.name for f in schema if f.kind == KIND_INT and f.decimals == 0
        ]
        n_sides = int(rng.integers(1, 3))
        joins: List[JoinClause] = []
        items: List[SelectItem] = []
        names = [f.name for f in schema]
        out = 0
        for i in range(n_sides):
            key = str(rng.choice(keys))
            alias = f"L{i}"
            # probing a non-key column makes LEFT OUTER misses observable
            probe = key if rng.random() < 0.5 else str(rng.choice(probe_pool))
            joins.append(
                JoinClause(
                    source=SourceRef(
                        STREAM, WindowSpec.partition(key, 1), alias=alias
                    ),
                    on=Comparison(
                        "==",
                        ColumnRef(probe, table="A"),
                        ColumnRef(key, table=alias),
                    ),
                    outer=bool(rng.random() < 0.5),
                )
            )
            picked = sorted({key} | {n for n in names if rng.random() < 0.4})
            for n in picked:
                items.append(
                    SelectItem(ColumnRef(n, table=alias), alias=f"j{out}")
                )
                out += 1
        return Query(
            items=tuple(items),
            sources=(SourceRef(STREAM, window, alias="A"),),
            distinct=True,
            joins=tuple(joins),
        )

    # ----- predicates ------------------------------------------------------

    def _literal_for(self, rng, schema: Schema, batches, name: str) -> Literal:
        """A literal near the column's actual value distribution."""
        values = np.concatenate([b[name] for b in batches])
        pick = int(values[int(rng.integers(0, values.size))])
        pick += int(rng.integers(-2, 3))  # sometimes just off the data
        f = schema[name]
        if f.kind == KIND_FLOAT:
            # stay float-representable: |value * scale| must round-trip
            # within the planner's 1e-9 representability check
            pick = int(np.clip(pick, -4_000_000, 4_000_000))
            return Literal(pick / f.scale)
        return Literal(pick)

    def _comparison(self, rng, schema: Schema, batches) -> Comparison:
        name = str(rng.choice([f.name for f in schema]))
        op = str(rng.choice(_COMPARE_OPS))
        return Comparison(
            op, ColumnRef(name), self._literal_for(rng, schema, batches, name)
        )

    def _where(self, rng, schema: Schema, batches) -> Optional[BoolExpr]:
        roll = rng.random()
        if roll < 0.35:
            return None
        if roll < 0.65:
            return self._comparison(rng, schema, batches)
        terms = [self._comparison(rng, schema, batches) for _ in range(2)]
        if roll < 0.8:
            return BoolOp("and", tuple(terms))
        if roll < 0.92:
            return BoolOp("or", tuple(terms))
        # or-of-ands: (a and b) or c
        return BoolOp(
            "or",
            (BoolOp("and", tuple(terms)), self._comparison(rng, schema, batches)),
        )

    def _having_comparison(
        self, rng, items: Sequence[SelectItem]
    ) -> Comparison:
        aggs = [i for i in items if isinstance(i.expr, AggregateCall)]
        if not aggs or rng.random() < 0.3:
            # hidden aggregate: not in the select list
            target = AggregateCall("count", None)
        else:
            target = aggs[int(rng.integers(0, len(aggs)))].expr
        op = str(rng.choice([">", ">=", "<", "<=", "!="]))
        return Comparison(op, target, Literal(int(rng.integers(0, 5))))

    def _having(
        self, rng, schema: Schema, items: Sequence[SelectItem]
    ) -> Optional[BoolExpr]:
        roll = rng.random()
        first = self._having_comparison(rng, items)
        if roll < 0.5:
            return first
        second = self._having_comparison(rng, items)
        if roll < 0.75:
            return BoolOp("and", (first, second))
        return BoolOp("or", (first, second))
