"""Automatic minimizer for failing oracle cases.

Given a case that diverges on one ``(codec, path)``, the shrinker
searches for the smallest case that still shows *a* divergence on that
same codec and path: it drops whole batches, delta-debugs rows per batch
(ddmin), strips query clauses (having, where terms, select items, group
keys, distinct, window size), and finally removes schema columns the
minimized query no longer references.

Every candidate must still plan (candidates that raise are rejected, so
shrinking can never turn a semantic divergence into a crash repro), and
every acceptance re-runs the full three-way differential — the final case
replays deterministically through ``python -m repro oracle --replay``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..errors import ReproError
from ..sql.ast import BoolOp, ColumnRef, Query
from ..stream.schema import Schema
from ..stream.window import MODE_COUNT, WindowSpec
from .differential import DifferentialConfig, run_case
from .generator import OracleCase

#: hard cap on differential re-runs per shrink, so a pathological case
#: cannot stall a campaign; the shrink result is still valid, just larger
MAX_CHECKS = 500

FailsFn = Callable[[OracleCase], bool]


def shrink_case(
    case: OracleCase,
    codec: str,
    path: str,
    config: DifferentialConfig = DifferentialConfig(),
    max_checks: int = MAX_CHECKS,
) -> OracleCase:
    """Minimize ``case`` while it keeps diverging on (codec, path)."""
    probe = dataclasses.replace(config, codecs=(codec,))
    spent = [0]

    def fails(candidate: OracleCase) -> bool:
        if spent[0] >= max_checks:
            return False
        spent[0] += 1
        try:
            outcome = run_case(candidate, probe)
        except Exception:
            return False  # crashing candidates are not the bug we hold
        return any(
            m.codec == codec and m.path == path for m in outcome.mismatches
        )

    if not fails(case):
        raise ReproError(
            f"shrink_case: case {case.case_id} does not diverge on "
            f"codec {codec!r} path {path!r}"
        )

    current = case
    improved = True
    while improved:
        improved = False
        for reducer in (_drop_batches, _shrink_rows, _simplify_query, _drop_columns):
            current, changed = reducer(current, fails)
            improved = improved or changed
    return current


# ----- structural reducers ---------------------------------------------


def _with_batches(
    case: OracleCase, batches: List[Dict[str, np.ndarray]]
) -> OracleCase:
    return dataclasses.replace(case, batches=batches)


def _drop_batches(case: OracleCase, fails: FailsFn) -> Tuple[OracleCase, bool]:
    batches = list(case.batches)
    changed = False
    i = 0
    while len(batches) > 1 and i < len(batches):
        candidate = _with_batches(case, batches[:i] + batches[i + 1 :])
        if fails(candidate):
            batches.pop(i)
            changed = True
        else:
            i += 1
    return (_with_batches(case, batches) if changed else case), changed


def _shrink_rows(case: OracleCase, fails: FailsFn) -> Tuple[OracleCase, bool]:
    """Per-batch ddmin on rows (row subsets keep ``ts`` monotone)."""
    changed = False
    batches = [dict(b) for b in case.batches]
    for bi in range(len(batches)):
        n = int(next(iter(batches[bi].values())).size)
        chunk = n // 2
        while chunk >= 1:
            start = 0
            while start < n:
                stop = min(start + chunk, n)
                if stop - start >= n:  # keep at least one row per batch
                    start += chunk
                    continue
                keep = np.r_[0:start, stop:n]
                trial = {k: v[keep] for k, v in batches[bi].items()}
                candidate = _with_batches(
                    case, batches[:bi] + [trial] + batches[bi + 1 :]
                )
                if fails(candidate):
                    batches[bi] = trial
                    n = int(keep.size)
                    changed = True
                else:
                    start += chunk
            chunk //= 2
    return (_with_batches(case, batches) if changed else case), changed


def _simplify_query(case: OracleCase, fails: FailsFn) -> Tuple[OracleCase, bool]:
    changed = False
    progress = True
    while progress:
        progress = False
        for query in _query_candidates(case.query):
            candidate = dataclasses.replace(case, query=query)
            try:
                candidate.plan()
            except Exception:  # lint: broad-except (any crash = bad candidate)
                continue  # invalid simplification, try the next one
            if fails(candidate):
                case = candidate
                changed = progress = True
                break
    return case, changed


def _query_candidates(query: Query):
    """Strictly-simpler query variants, most aggressive first."""
    if query.limit is not None:
        yield dataclasses.replace(query, limit=None)
    if query.order_by:
        yield dataclasses.replace(query, order_by=(), limit=None)
        if len(query.order_by) > 1:
            for i in range(len(query.order_by)):
                kept = query.order_by[:i] + query.order_by[i + 1 :]
                yield dataclasses.replace(query, order_by=kept)
    if query.having is not None:
        yield dataclasses.replace(query, having=None)
        if isinstance(query.having, BoolOp):
            for child in query.having.items:
                yield dataclasses.replace(query, having=child)
    if query.joins:
        # drop one side at a time (outputs of a dropped side go with it)
        for i in range(len(query.joins)):
            kept = query.joins[:i] + query.joins[i + 1 :]
            dropped = query.joins[i].source.binding
            items = tuple(
                item
                for item in query.items
                if not (
                    isinstance(item.expr, ColumnRef)
                    and item.expr.table == dropped
                )
            )
            if items:
                yield dataclasses.replace(query, joins=kept, items=items)
        # an outer side demoted to inner is strictly simpler
        for i, join in enumerate(query.joins):
            if join.outer:
                inner = dataclasses.replace(join, outer=False)
                joins = query.joins[:i] + (inner,) + query.joins[i + 1 :]
                yield dataclasses.replace(query, joins=joins)
    if query.where is not None:
        yield dataclasses.replace(query, where=None)
        if isinstance(query.where, BoolOp):
            for child in query.where.items:
                yield dataclasses.replace(query, where=child)
    if len(query.items) > 1:
        for i in range(len(query.items)):
            kept = query.items[:i] + query.items[i + 1 :]
            yield dataclasses.replace(query, items=kept)
    if query.group_by:
        for i in range(len(query.group_by)):
            kept = query.group_by[:i] + query.group_by[i + 1 :]
            yield dataclasses.replace(query, group_by=kept)
    if query.distinct:
        yield dataclasses.replace(query, distinct=False)
    for si, source in enumerate(query.sources):
        for window in _window_candidates(source.window):
            simpler = dataclasses.replace(source, window=window)
            sources = query.sources[:si] + (simpler,) + query.sources[si + 1 :]
            yield dataclasses.replace(query, sources=sources)


def _window_candidates(window: WindowSpec):
    """Smaller/simpler windows; time windows also try a tiny count window."""
    if window.mode == MODE_COUNT:
        if window.slide != window.size:
            yield WindowSpec.count(window.size, window.size)  # tumbling
        if window.size > 2:
            size = max(2, window.size // 2)
            yield WindowSpec.count(size, min(window.slide, size))
    elif window.time_column:
        yield WindowSpec.count(2, 2)
        if window.size > 2:
            size = max(2, window.size // 2)
            yield WindowSpec.time(size, min(window.slide, size), window.time_column)


def _drop_columns(case: OracleCase, fails: FailsFn) -> Tuple[OracleCase, bool]:
    """Remove schema columns the (minimized) query no longer references."""
    try:
        referenced = set(case.plan().profile.referenced)
    except Exception:
        return case, False
    keep = [f for f in case.schema if f.name in referenced]
    if not keep:
        keep = [next(iter(case.schema))]
    if len(keep) == len(case.schema):
        return case, False
    candidate = dataclasses.replace(
        case,
        schema=Schema(keep),
        batches=[{f.name: b[f.name] for f in keep} for b in case.batches],
    )
    if fails(candidate):
        return candidate, True
    return case, False
