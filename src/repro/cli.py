"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      execute one of the paper's queries (Q1-Q6) end-to-end in any
             processing mode and print the run report;
``codecs``   list the registered compression algorithms and their
             cost-model classification (α, β, capabilities);
``ratios``   show per-codec compression ratios on one column of a dataset
             (the Sec. V estimators next to achieved ratios);
``explain``  parse + plan + optimize a streaming SQL script (raw SQL, a
             paper query, or a workloads corpus entry) and print the plan
             shape, per-column requirements, the optimized logical plan
             with the rules that fired, and the plan digest; ``--json``
             emits the stable machine-readable rendering and
             ``--no-optimize`` shows the naive plan;
``faults``   run a query over an unreliable link (seeded drops/bit-flips/
             truncations/duplicates/stalls) with the recovery protocol and
             print the fault report; ``--verify`` checks the outputs are
             bit-identical to a clean-link run;
``oracle``   differential fuzzing campaign: seeded random queries run
             several ways (uncompressed baseline, decompress-then-query,
             direct-on-compressed per pool codec, scalar-reference
             kernels, and the optimizer's rewritten plan), results
             compared;
             divergences are shrunk to repro files replayable with
             ``--replay``; ``--chaos`` instead runs seeded multi-tenant
             fleets through the serving supervisor under injected faults,
             poison batches and crash/restart cycles and checks every
             delivered result against a clean run (artifacts include
             checkpoint dumps);
``serve``    run a multi-tenant fleet under the resilient serving layer
             (supervision, admission control, backpressure, checkpointed
             recovery) and print per-tenant health/delivery tables;
``workloads`` replay the synthetic trace corpus (Q1-Q6 plus the widened
             SQL surface) through the single-engine and supervised-fleet
             paths and check every result against the committed golden
             fixtures; ``--bless`` re-records fixtures from the baseline
             reference path; non-zero exit below a 100% pass rate;
``lint``     run the AST-based invariant analyzer (syntactic rules
             CSD001-CSD008: decode discipline, scalar parity,
             determinism, exception taxonomy, virtual time, bench
             registration, supervised recovery, optimizer purity; and
             flow-sensitive rules CSD009-CSD012 over the linked call
             graph: decode taint, wall-clock escape, taxonomy flow,
             checkpoint purity) over the repo; ``--graph dot|json``
             exports the call graph with per-edge taint annotations;
             exit 0 clean / 1 findings / 2 usage — the CI gate for the
             engine's internal contracts (see docs/static-analysis.md);
``bench``    run the registered benchmark suites through the unified
             harness (warmup, repeats, median/p95, tuples/s, one
             schema-versioned ``BENCH_<suite>.json`` per suite), or
             ``--compare baseline.json current.json`` to diff two result
             files — non-zero exit on a regression beyond tolerance (the
             CI perf gate; see docs/benchmarking.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .compression import all_codec_names, get_codec
from .core.engine import CompressStreamDB, EngineConfig
from .datasets import QUERIES
from .errors import ReproError
from .sql.planner import JoinPlan, PassthroughPlan, Planner, WindowAggPlan
from .stats import ColumnStats

_DATASET_MODULES = {
    "smart_grid": "repro.datasets.smart_grid",
    "linear_road": "repro.datasets.linear_road",
    "cluster": "repro.datasets.cluster_monitoring",
}


def _dataset_module(name: str):
    import importlib

    if name not in _DATASET_MODULES:
        raise ReproError(
            f"unknown dataset {name!r}; choose from {sorted(_DATASET_MODULES)}"
        )
    return importlib.import_module(_DATASET_MODULES[name])


# ----- commands -------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    q = QUERIES[args.query]
    slide = args.slide if args.slide else q.window
    engine = CompressStreamDB(
        q.catalog,
        q.text(slide=slide),
        EngineConfig(
            mode=args.mode,
            bandwidth_mbps=None if args.bandwidth == 0 else args.bandwidth,
            redecide_every=args.redecide_every,
        ),
    )
    source = q.make_source(
        batch_size=q.window * args.windows, batches=args.batches, seed=args.seed
    )
    report = engine.run(source, collect_outputs=args.show_rows > 0)
    print(f"query {args.query} | mode {args.mode} | {report.summary()}")
    print(f"codec per column: {report.final_choices}")
    breakdown = ", ".join(
        f"{stage} {frac * 100:.1f}%" for stage, frac in report.breakdown().items()
    )
    print(f"time breakdown: {breakdown}")
    if args.show_rows > 0 and report.outputs is not None:
        names = list(report.outputs.columns)
        print(" | ".join(names))
        for i in range(min(args.show_rows, report.outputs.n_rows)):
            print(" | ".join(str(report.outputs.columns[n][i]) for n in names))
    return 0


def cmd_codecs(_args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'lazy(α)':8s} {'decomp(β)':10s} capabilities")
    for name in all_codec_names():
        codec = get_codec(name)
        caps = ", ".join(sorted(codec.capabilities)) or "-"
        print(
            f"{name:10s} {str(codec.is_lazy):8s} "
            f"{str(codec.needs_decompression):10s} {caps}"
        )
    return 0


def cmd_ratios(args: argparse.Namespace) -> int:
    module = _dataset_module(args.dataset)
    columns = module.generate(args.n, seed=args.seed)
    if args.column not in columns:
        raise ReproError(
            f"dataset {args.dataset!r} has columns {sorted(columns)}"
        )
    from .stream.batch import Batch

    batch = Batch.from_values(module.SCHEMA, columns)
    values = batch.column(args.column)
    size_c = module.SCHEMA[args.column].size
    stats = ColumnStats.from_values(values, size_c=size_c)
    print(
        f"{args.dataset}.{args.column}: n={stats.n} kindnum={stats.kindnum} "
        f"range=[{stats.min_value}, {stats.max_value}] "
        f"avg_run={stats.avg_run_length:.2f}"
    )
    print(f"{'codec':10s} {'est r':>8s} {'wire r':>8s} {'achieved':>9s}")
    for name in all_codec_names():
        codec = get_codec(name)
        if not codec.applicable(stats):
            print(f"{name:10s} {'n/a':>8s}")
            continue
        cc = codec.compress(values)
        cc.source_size_c = size_c
        if name == "identity":
            # identity ships the field at its declared wire width
            cc.nbytes = values.size * size_c
        print(
            f"{name:10s} {codec.estimate_ratio(stats):8.2f} "
            f"{codec.estimate_transmitted_ratio(stats):8.2f} {cc.ratio:9.2f}"
        )
    return 0


_DATASET_STREAMS = {
    "smart_grid": "SmartGridStr",
    "linear_road": "PosSpeedStr",
    "cluster": "TaskEvents",
}


def _full_catalog():
    """Union catalog of every known dataset stream (for raw-SQL explain)."""
    return {
        stream: _dataset_module(dataset).SCHEMA
        for dataset, stream in _DATASET_STREAMS.items()
    }


def _resolve_query_config(name: str):
    """A query registry entry: the paper's Q1-Q6 or a workloads corpus
    query (both duck-type ``QueryConfig``: catalog/text/make_source)."""
    if name in QUERIES:
        return QUERIES[name]
    from .workloads.corpus import QUERIES as CORPUS

    if name in CORPUS:
        return CORPUS[name]
    raise ReproError(
        f"unknown query {name!r}; choose one of {sorted(QUERIES)} or a "
        f"workloads corpus entry ({', '.join(sorted(CORPUS))})"
    )


def cmd_explain(args: argparse.Namespace) -> int:
    import json

    from .optimizer import (
        bind,
        optimize_plan,
        render_json,
        render_text,
        schema_infos,
        stats_from_columns,
    )
    from .sql.parser import parse

    text = args.sql_pos or args.sql
    cfg = None
    if not text:
        cfg = _resolve_query_config(args.query)
        text = cfg.text()
    if args.dataset:
        module = _dataset_module(args.dataset)
        catalog = {_DATASET_STREAMS[args.dataset]: module.SCHEMA}
    elif cfg is not None:
        catalog = dict(cfg.catalog)
    else:
        catalog = _full_catalog()
    script = parse(text)
    plan = Planner(catalog).plan(script)

    stats = None
    if args.stats:
        if cfg is None:
            raise ReproError(
                "--stats needs a named --query (statistics are sampled "
                "from the query's own source)"
            )
        batches = list(cfg.make_source(batch_size=2048, batches=1, seed=11))
        merged = {f.name: batches[0].column(f.name) for f in plan.schema}
        stats = stats_from_columns(plan.schema, merged)
    infos = schema_infos(plan.schema, codec_hint=args.codec, stats=stats)
    if args.no_optimize:
        root, opt_info = bind(plan, infos, script=script), None
    else:
        result = optimize_plan(plan, infos, script=script)
        root, opt_info = result.root, result.info

    if args.as_json:
        print(json.dumps(render_json(root, opt_info), indent=2, sort_keys=True))
        return 0

    kind = type(plan).__name__
    print(f"plan: {kind}")

    def window_text(w):
        if w.mode == "time":
            return (
                f"range {w.size} seconds slide {w.slide} on {w.time_column}"
            )
        return f"range {w.size} slide {w.slide}"

    if isinstance(plan, WindowAggPlan):
        print(f"  window: {window_text(plan.window)}")
        print(f"  group by: {list(plan.group_keys) or '-'}")
    elif isinstance(plan, JoinPlan):
        print(f"  window side: {window_text(plan.window)}")
        for side in plan.sides:
            kind_txt = "left outer" if side.outer else "inner"
            print(
                f"  {kind_txt} side {side.binding}: "
                f"by {side.window.partition_by} rows {side.window.rows}, "
                f"probe {side.probe_column} == {side.key_column}"
            )
    elif isinstance(plan, PassthroughPlan):
        print(f"  per-tuple projection; distinct={plan.distinct}")
    print(f"  outputs: {[o.name for o in plan.outputs]}")
    print("  per-column requirements:")
    for name, use in sorted(plan.profile.column_uses.items()):
        caps = ", ".join(sorted(use.caps)) or "-"
        values = " +values" if use.needs_values else ""
        print(f"    {name}: {caps}{values}")
    print()
    print("logical plan:")
    print(render_text(root, opt_info))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import numpy as np

    from .net.faults import FaultProfile
    from .net.transport import ReliabilityConfig
    from .reporting import fault_report_table

    q = QUERIES[args.query]
    profile = FaultProfile(
        drop_rate=args.drop,
        corrupt_rate=args.corrupt,
        truncate_rate=args.truncate,
        duplicate_rate=args.duplicate,
        stall_rate=args.stall,
        seed=args.fault_seed,
    )
    reliability = ReliabilityConfig(max_retries=args.max_retries)

    def build(fault_profile):
        return CompressStreamDB(
            q.catalog,
            q.text(slide=q.window),
            EngineConfig(
                mode=args.mode,
                bandwidth_mbps=None if args.bandwidth == 0 else args.bandwidth,
                fault_profile=fault_profile,
                reliability=reliability,
                # selection driven by the calibration table alone, so the
                # faulty and clean runs choose identical codecs
                profile_query=False,
            ),
        )

    def source():
        return q.make_source(
            batch_size=q.window * args.windows, batches=args.batches, seed=args.seed
        )

    report = build(profile).run(source(), collect_outputs=args.verify)
    print(f"query {args.query} | mode {args.mode} | {report.summary()}")
    print(
        f"delivered {report.delivered_tuples}/{report.tuples} tuples "
        f"(goodput {report.goodput:,.0f} tup/s)"
    )
    assert report.faults is not None
    print()
    print(fault_report_table(report.faults, title=f"Fault report ({profile!r})"))
    if not args.verify:
        return 0

    clean = build(None).run(source(), collect_outputs=True)
    if report.faults.quarantined:
        print(
            "\nverify: skipped — "
            f"{report.faults.quarantined} batch(es) were quarantined, "
            "outputs cannot match a clean run"
        )
        return 0
    for name in clean.outputs.columns:
        if not np.array_equal(
            clean.outputs.columns[name], report.outputs.columns[name]
        ):
            print(f"\nverify: FAILED — column {name!r} differs from clean run")
            return 1
    print("\nverify: OK — outputs bit-identical to a clean-link run")
    return 0


def cmd_oracle(args: argparse.Namespace) -> int:
    from .compression.registry import PAPER_POOL
    from .oracle import CampaignConfig, replay_file, run_campaign

    if args.chaos:
        return _cmd_oracle_chaos(args)

    if args.replay:
        outcome = replay_file(args.replay)
        print(f"replay {args.replay}: {outcome.case!r}")
        if outcome.mismatches:
            for m in outcome.mismatches:
                print(m)
            print(f"replay: DIVERGED ({len(outcome.mismatches)} mismatch(es))")
            return 1
        print("replay: OK — all paths agree")
        return 0

    codecs = (
        tuple(c.strip() for c in args.codecs.split(",") if c.strip())
        if args.codecs
        else PAPER_POOL
    )
    if args.cascades:
        from .compression.registry import CASCADE_POOL

        codecs = codecs + tuple(c for c in CASCADE_POOL if c not in codecs)
    config = CampaignConfig(
        cases=args.cases,
        seed=args.seed,
        codecs=codecs,
        shrink=not args.no_shrink,
        out_dir=args.out_dir,
        min_kinds=args.min_kinds,
        max_failures=args.max_failures,
        optimized=args.optimize,
    )

    every = max(1, args.cases // 10)

    def progress(done: int, total: int) -> None:
        if done % every == 0 or done == total:
            print(f"  {done}/{total} cases", flush=True)

    print(
        f"oracle campaign: {config.cases} cases, seed {config.seed}, "
        f"codecs {', '.join(config.codecs)}"
    )
    result = run_campaign(config, progress=progress)
    print()
    print(result.coverage.format_table())
    status = 0
    if result.mismatches:
        print(f"\n{len(result.mismatches)} mismatch(es) in {result.cases_run} cases:")
        for m in result.mismatches:
            print(m)
        for path in result.repro_paths:
            print(f"repro written: {path}")
        status = 1
    else:
        print(f"\nOK — {result.cases_run} cases, zero mismatches")
    short = result.undercovered()
    if short:
        print(
            f"coverage: FAILED — codecs below {config.min_kinds} operator "
            f"kinds: {short}"
        )
        status = 1
    elif config.min_kinds:
        print(
            f"coverage: OK — every codec exercised by >= {config.min_kinds} "
            "operator kinds"
        )
    return status


def _cmd_oracle_chaos(args: argparse.Namespace) -> int:
    """The ``oracle --chaos`` leg: differential campaign under faults."""
    from .oracle import ChaosConfig, run_chaos_campaign

    out_dir = args.out_dir if args.out_dir != "oracle-repros" else "chaos-artifacts"
    config = ChaosConfig(
        cases=args.cases,
        seed=args.seed,
        tenants=args.tenants,
        max_failures=args.max_failures,
        out_dir=out_dir,
    )

    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} chaos cases", flush=True)

    print(
        f"chaos campaign: {config.cases} cases x {config.tenants} tenants, "
        f"seed {config.seed} (supervisor + faults + poison batches)"
    )
    result = run_chaos_campaign(config, progress=progress, case_offset=args.case_offset)
    print(
        f"\ndelivered {result.batches_delivered} batches | "
        f"dead-lettered {result.batches_dead_lettered} | "
        f"shed {result.batches_shed} | "
        f"quarantined tenants {result.tenants_quarantined}"
    )
    if result.mismatches:
        print(f"\n{len(result.mismatches)} broken invariant(s):")
        for m in result.mismatches:
            print(m)
        for path in result.artifact_paths:
            print(f"artifact written: {path}")
        return 1
    print(
        f"OK — {result.cases_run} cases, every delivered result matches the "
        "clean run; all gaps accounted"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .net.faults import FaultProfile
    from .net.transport import ReliabilityConfig
    from .reporting import serve_report_table
    from .serve import (
        CheckpointStore,
        FileCheckpointStore,
        ServeSupervisor,
        TenantSpec,
    )

    queries = sorted(QUERIES)
    profile = (
        FaultProfile.lossy(args.loss, seed=args.fault_seed) if args.loss > 0 else None
    )
    reliability = (
        ReliabilityConfig(max_retries=args.max_retries) if profile else None
    )
    specs = [
        TenantSpec(
            tenant=f"t{i:03d}",
            query=queries[i % len(queries)],
            batches=args.batches,
            batch_size=args.batch_size,
            seed=args.seed + i,
            fault_profile=profile,
            reliability=reliability,
            checkpoint_every=args.checkpoint_every,
        )
        for i in range(args.tenants)
    ]
    store = (
        FileCheckpointStore(args.checkpoint_dir)
        if args.checkpoint_dir
        else CheckpointStore()
    )
    supervisor = ServeSupervisor(specs, store=store, resume=args.resume)
    report = supervisor.run(max_steps=args.max_steps or None)
    for label, value in report.summary_rows():
        print(f"{label:18s} {value}")
    print()
    print(serve_report_table(report))
    worst = report.health_counts()["QUARANTINED"]
    return 1 if worst == len(specs) else 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import compare_files, default_bench_dir, discover, run_suites
    from .reporting import TextTable

    if args.compare:
        baseline_path, current_path = args.compare
        report = compare_files(
            baseline_path,
            current_path,
            tolerance=args.tolerance,
            gate_timings=not args.no_gate_timings,
        )
        if report.deltas:
            print(report.format_table())
        for line in report.summary_lines():
            print(line)
        return report.exit_code()

    bench_dir = args.bench_dir or default_bench_dir()
    if bench_dir is None:
        raise ReproError(
            "no benchmarks directory found; pass --bench-dir or set "
            "$REPRO_BENCH_DIR"
        )
    registry = discover(bench_dir)
    specs = registry.select(
        suite=args.suite or None, pattern=args.filter or None
    )

    if args.list:
        table = TextTable(
            ["name", "suite", "tolerance", "params"],
            title=f"Registered benchmarks ({bench_dir})",
        )
        for spec in specs:
            params = ", ".join(f"{k}={v}" for k, v in spec.run_params().items())
            table.add(spec.name, spec.suite, f"{spec.tolerance:.2f}", params or "-")
        print(table.render())
        return 0

    if not specs:
        raise ReproError(
            f"no benchmarks match suite={args.suite or '*'} "
            f"filter={args.filter or '*'}"
        )
    run_suites(
        specs,
        json_dir=args.json_dir,
        repeats=args.repeats,
        warmup=args.warmup,
        quick=args.quick,
        check=not args.no_check,
        write_tables=not args.no_tables,
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis import (
        ALL_RULES,
        default_root,
        run_analysis,
        write_baseline,
    )

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.rule_id} {cls.title}")
            print(f"    waiver tag: {cls.waiver_tag or '-'}")
            print(f"    {cls.rationale}")
        return 0

    root = args.root or default_root()
    report = run_analysis(
        root,
        rule_ids=args.rules,
        baseline_path=args.baseline or None,
        cache_path=args.cache or None,
        use_cache=not args.no_cache,
        build_graph=bool(args.graph),
    )
    if args.graph:
        assert report.graph is not None
        taints = report.edge_taints
        if args.graph == "dot":
            out = report.graph.to_dot(taints)
        else:
            out = json.dumps(report.graph.to_doc(taints), indent=2)
        if args.graph_out:
            with open(args.graph_out, "w", encoding="utf-8") as fh:
                fh.write(out + "\n")
            print(f"wrote {args.graph_out}")
        else:
            print(out)
        return report.exit_code()
    if args.write_baseline:
        from .analysis.baseline import DEFAULT_BASELINE_NAME

        path = args.baseline or str(report.root / DEFAULT_BASELINE_NAME)
        write_baseline(path, report.findings)
        print(
            f"wrote {len(report.findings)} entr(y/ies) to {path}; "
            "fill in each 'reason' before committing"
        )
        return 0
    if args.as_json:
        print(json.dumps(report.to_doc(), indent=2))
    else:
        for line in report.format_lines():
            print(line)
    return report.exit_code()


def cmd_workloads(args: argparse.Namespace) -> int:
    import json

    from .errors import WorkloadError
    from .workloads import PATH_SINGLE, PATHS, replay

    paths = (PATH_SINGLE,) if args.no_fleet else PATHS
    try:
        report = replay(
            names=args.query or None,
            trace=args.trace,
            quick=args.quick,
            paths=paths,
            bless=args.bless,
        )
    except WorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name in report.blessed:
        print(f"blessed {name}")
    for outcome in report.outcomes:
        status = "PASS" if outcome.ok else "FAIL"
        print(
            f"{status} {outcome.query:18s} [{outcome.path}] "
            f"rows {outcome.n_rows}"
        )
        if outcome.detail:
            print(f"     {outcome.detail}")
    print()
    for label, value in report.summary_rows():
        print(f"{label:12s} {value}")
    if args.as_json:
        with open(args.as_json, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
        print(f"wrote {args.as_json}")
    return 0 if report.pass_rate == 1.0 else 1


def cmd_calibrate(args: argparse.Namespace) -> int:
    from .core.calibration import calibrate

    table = calibrate(repeats=args.repeats)
    table.save(args.out)
    print(f"calibrated {len(table.timings)} codecs -> {args.out}")
    slowest = max(
        table.timings.items(), key=lambda item: item[1].compress_a
    )
    print(f"slowest compressor per element: {slowest[0]}")
    return 0


# ----- entry point -----------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CompressStreamDB (ICDE 2023) reproduction CLI",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one of the paper's queries")
    run.add_argument("--query", choices=sorted(QUERIES), default="q1")
    run.add_argument("--mode", default="adaptive")
    run.add_argument(
        "--bandwidth", type=float, default=500.0, help="link Mbps; 0 = single node"
    )
    run.add_argument("--batches", type=int, default=4)
    run.add_argument("--windows", type=int, default=10, help="windows per batch")
    run.add_argument("--slide", type=int, default=0, help="window slide; 0 = tumbling")
    run.add_argument("--redecide-every", type=int, default=16)
    run.add_argument("--seed", type=int, default=11)
    run.add_argument("--show-rows", type=int, default=0)
    run.set_defaults(func=cmd_run)

    codecs = sub.add_parser("codecs", help="list compression algorithms")
    codecs.set_defaults(func=cmd_codecs)

    ratios = sub.add_parser("ratios", help="per-codec ratios on one column")
    ratios.add_argument("--dataset", choices=sorted(_DATASET_MODULES), required=True)
    ratios.add_argument("--column", required=True)
    ratios.add_argument("-n", type=int, default=8192)
    ratios.add_argument("--seed", type=int, default=1)
    ratios.set_defaults(func=cmd_ratios)

    explain = sub.add_parser(
        "explain", help="parse + plan + optimize a query, print the plan"
    )
    explain.add_argument(
        "sql_pos",
        nargs="?",
        default="",
        metavar="SQL",
        help="raw SQL (streams: SmartGridStr, PosSpeedStr, TaskEvents)",
    )
    explain.add_argument(
        "--dataset",
        choices=sorted(_DATASET_MODULES),
        default="",
        help="resolve raw SQL against this dataset's schema only",
    )
    explain.add_argument(
        "--query",
        default="q1",
        help="named query: q1-q6 or a workloads corpus entry",
    )
    explain.add_argument("--sql", default="", help="raw SQL overriding --query")
    explain.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="stable machine-readable plan rendering on stdout",
    )
    explain.add_argument(
        "--no-optimize",
        action="store_true",
        help="show the naive bound plan, skipping the rewrite rules",
    )
    explain.add_argument(
        "--stats",
        action="store_true",
        help="bind column statistics sampled from the query's own source "
        "(named --query only)",
    )
    explain.add_argument(
        "--codec",
        default="",
        help="codec hint, as in the engine's static:<codec> modes",
    )
    explain.set_defaults(func=cmd_explain)

    faults = sub.add_parser(
        "faults", help="run a query over an unreliable link and recover"
    )
    faults.add_argument("--query", choices=sorted(QUERIES), default="q1")
    faults.add_argument("--mode", default="adaptive")
    faults.add_argument(
        "--bandwidth", type=float, default=500.0, help="link Mbps; 0 = single node"
    )
    faults.add_argument("--drop", type=float, default=0.05)
    faults.add_argument("--corrupt", type=float, default=0.05)
    faults.add_argument("--truncate", type=float, default=0.0)
    faults.add_argument("--duplicate", type=float, default=0.0)
    faults.add_argument("--stall", type=float, default=0.0)
    faults.add_argument("--fault-seed", type=int, default=7)
    faults.add_argument("--max-retries", type=int, default=8)
    faults.add_argument("--batches", type=int, default=4)
    faults.add_argument("--windows", type=int, default=10, help="windows per batch")
    faults.add_argument("--seed", type=int, default=11)
    faults.add_argument(
        "--verify", action="store_true", help="check outputs match a clean-link run"
    )
    faults.set_defaults(func=cmd_faults)

    oracle = sub.add_parser(
        "oracle", help="differential fuzzing of direct-on-compressed execution"
    )
    oracle.add_argument(
        "--cases", type=int, default=100, help="number of generated cases"
    )
    oracle.add_argument("--seed", type=int, default=0)
    oracle.add_argument(
        "--codecs", default="", help="comma-separated codec names (default: paper pool)"
    )
    oracle.add_argument(
        "--cascades",
        action="store_true",
        help="extend the codec pool with the cascade families "
        "(dict+rle, delta+ns, bd+nsv, dict+bitmap)",
    )
    oracle.add_argument(
        "--no-shrink", action="store_true", help="write failing cases unminimized"
    )
    oracle.add_argument(
        "--out-dir",
        default="oracle-repros",
        help="directory for repro files (created on demand)",
    )
    oracle.add_argument(
        "--min-kinds",
        type=int,
        default=3,
        help="fail unless every codec is exercised by at "
        "least this many operator kinds (0 = off)",
    )
    oracle.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many diverging cases",
    )
    oracle.add_argument(
        "--replay", default="", help="re-run one repro file instead of a campaign"
    )
    oracle.add_argument(
        "--optimize",
        action="store_true",
        dest="optimize",
        default=True,
        help="run the optimized-plan leg on every case (default)",
    )
    oracle.add_argument(
        "--no-optimize",
        action="store_false",
        dest="optimize",
        help="skip the optimized-plan leg",
    )
    oracle.add_argument(
        "--chaos",
        action="store_true",
        help="run the serving-layer chaos campaign (faults + crashes + "
        "supervisor) instead of the codec oracle",
    )
    oracle.add_argument(
        "--case-offset",
        type=int,
        default=0,
        help="first chaos case id (for replaying a single failing case)",
    )
    oracle.add_argument(
        "--tenants", type=int, default=3, help="tenants per chaos case"
    )
    oracle.set_defaults(func=cmd_oracle)

    serve = sub.add_parser(
        "serve", help="run a multi-tenant fleet under the supervisor"
    )
    serve.add_argument("--tenants", type=int, default=4)
    serve.add_argument("--batches", type=int, default=8)
    serve.add_argument("--batch-size", type=int, default=1024)
    serve.add_argument("--seed", type=int, default=11)
    serve.add_argument(
        "--loss", type=float, default=0.0, help="drop/corrupt rate on every link"
    )
    serve.add_argument("--fault-seed", type=int, default=7)
    serve.add_argument("--max-retries", type=int, default=8)
    serve.add_argument("--checkpoint-every", type=int, default=8)
    serve.add_argument(
        "--checkpoint-dir",
        default="",
        help="persist checkpoints to this directory (enables --resume)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="resume tenants from checkpoints in --checkpoint-dir",
    )
    serve.add_argument(
        "--max-steps",
        type=int,
        default=0,
        help="stop after N supervisor steps (0 = run to completion)",
    )
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser(
        "bench", help="run benchmark suites / compare results (perf gate)"
    )
    bench.add_argument(
        "--suite",
        default="",
        help="run only this suite (paper, ablation, robustness, kernels)",
    )
    bench.add_argument(
        "--filter", default="", help="run only benchmarks whose name contains this"
    )
    bench.add_argument(
        "--repeats", type=int, default=1, help="measured repetitions per benchmark"
    )
    bench.add_argument(
        "--warmup", type=int, default=0, help="unmeasured warmup runs per benchmark"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small parameters for smoke runs; skips shape "
        "checks and table regeneration",
    )
    bench.add_argument(
        "--json-dir",
        default="bench-json",
        help="directory for BENCH_<suite>.json results",
    )
    bench.add_argument(
        "--bench-dir", default="", help="benchmarks directory (default: auto-detect)"
    )
    bench.add_argument(
        "--no-check",
        action="store_true",
        help="skip the per-benchmark shape assertions",
    )
    bench.add_argument(
        "--no-tables",
        action="store_true",
        help="do not rewrite benchmarks/results/*.txt",
    )
    bench.add_argument(
        "--list", action="store_true", help="list matching benchmarks and exit"
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "CURRENT"),
        help="diff two BENCH_*.json files instead of running; "
        "exit 1 on regression beyond tolerance",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override every benchmark's tolerance in --compare",
    )
    bench.add_argument(
        "--no-gate-timings",
        action="store_true",
        help="in --compare, treat absolute wall-clock metrics "
        "(median_s, tuples/s) as informational; use when "
        "baseline and current come from different machines",
    )
    bench.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint", help="run the AST invariant analyzer (the contracts gate)"
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        default=None,
        help="run only this rule id (repeatable; default: all)",
    )
    lint.add_argument(
        "--baseline",
        default="",
        help="baseline file (default <root>/lint-baseline.json)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable report on stdout",
    )
    lint.add_argument(
        "--root",
        default="",
        help="project root (default: auto-detect via pyproject.toml)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--graph",
        choices=("dot", "json"),
        default="",
        help="export the linked call graph (with per-edge taint "
        "annotations) instead of the findings report",
    )
    lint.add_argument(
        "--graph-out",
        default="",
        metavar="PATH",
        help="write the --graph export to a file instead of stdout",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk summary cache",
    )
    lint.add_argument(
        "--cache",
        default="",
        metavar="PATH",
        help="summary-cache file (default <root>/.lint-cache.json)",
    )
    lint.set_defaults(func=cmd_lint)

    workloads = sub.add_parser(
        "workloads",
        help="replay the trace corpus against golden fixtures",
    )
    workloads.add_argument(
        "--query",
        action="append",
        default=[],
        help="restrict to this corpus query (repeatable)",
    )
    workloads.add_argument(
        "--trace", default="", help="restrict to one trace's queries"
    )
    workloads.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke subset: one query per trace plus q1",
    )
    workloads.add_argument(
        "--bless",
        action="store_true",
        help="re-record golden fixtures from the baseline reference path",
    )
    workloads.add_argument(
        "--no-fleet",
        action="store_true",
        help="skip the supervised-fleet path (single-engine only)",
    )
    workloads.add_argument(
        "--json",
        dest="as_json",
        default="",
        help="also write the pass-rate report to this JSON file",
    )
    workloads.set_defaults(func=cmd_workloads)

    calibrate = sub.add_parser(
        "calibrate", help="micro-benchmark codecs and save the cost table"
    )
    calibrate.add_argument("--out", default="calibration.json")
    calibrate.add_argument("--repeats", type=int, default=3)
    calibrate.set_defaults(func=cmd_calibrate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
