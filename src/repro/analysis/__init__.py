"""AST-based invariant analyzer for the engine's internal contracts.

The direct-on-compressed execution model only works if a handful of
repository-wide invariants hold: operators never decompress outside the
:class:`~repro.core.decode_cache.DecodeCache` discipline, the wire and
codec layers raise only their own error taxonomy, every random draw is
seeded, and the virtual-time network stack never touches wall clocks.
None of these are enforceable by the type system, so this package
enforces them mechanically: a rule-driven analyzer over Python ``ast``
(one :class:`Rule` subclass per contract, ids ``CSD001``..), run as
``python -m repro lint`` and gated in CI.

Syntactic rules (CSD001–CSD008) walk one file at a time; flow-sensitive
rules (CSD009–CSD012) run over a project-wide call graph linked from
digest-cached per-file summaries (:mod:`.summaries` →
:mod:`.callgraph`) with a small forward taint engine on top
(:mod:`.dataflow`).  ``python -m repro lint --graph dot|json`` exports
the linked graph with per-edge taint annotations.

See ``docs/static-analysis.md`` for the rule catalog, the waiver-comment
policy (``# lint: <tag>``) and the committed baseline format.
"""

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .callgraph import CallGraph, build_callgraph
from .dataflow import TaintFlow, attribute_closure, find_flows
from .engine import AnalysisReport, default_root, run_analysis
from .findings import Finding
from .project import Project, SourceFile, load_project
from .rules import ALL_RULES, get_rules
from .summaries import SummaryCache, summarize_file, summarize_project

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "Finding",
    "Project",
    "SourceFile",
    "SummaryCache",
    "TaintFlow",
    "attribute_closure",
    "build_callgraph",
    "default_root",
    "find_flows",
    "get_rules",
    "load_baseline",
    "load_project",
    "run_analysis",
    "summarize_file",
    "summarize_project",
    "write_baseline",
]
