"""AST-based invariant analyzer for the engine's internal contracts.

The direct-on-compressed execution model only works if a handful of
repository-wide invariants hold: operators never decompress outside the
:class:`~repro.core.decode_cache.DecodeCache` discipline, the wire and
codec layers raise only their own error taxonomy, every random draw is
seeded, and the virtual-time network stack never touches wall clocks.
None of these are enforceable by the type system, so this package
enforces them mechanically: a rule-driven analyzer over Python ``ast``
(one :class:`Rule` subclass per contract, ids ``CSD001``..), run as
``python -m repro lint`` and gated in CI.

See ``docs/static-analysis.md`` for the rule catalog, the waiver-comment
policy (``# lint: <tag>``) and the committed baseline format.
"""

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .engine import AnalysisReport, default_root, run_analysis
from .findings import Finding
from .project import Project, SourceFile, load_project
from .rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Project",
    "SourceFile",
    "default_root",
    "get_rules",
    "load_baseline",
    "load_project",
    "run_analysis",
    "write_baseline",
]
