"""Project model: parsed source files with waiver-comment extraction.

Every rule sees the same :class:`SourceFile` objects — one parse and one
comment scan per file, shared across rules.  Waivers are comments of the
form ``# lint: <tag>[, <tag>...]`` (anything after the tags, e.g. a
justification, is ignored); a waiver silences matching findings on its
own line and, for comment-only lines, on the line below.  The generic
tag ``disable=CSD00X`` silences one rule id regardless of its tag.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError

#: directories scanned relative to the project root, in report order
DEFAULT_ROOTS: Tuple[str, ...] = ("src/repro", "benchmarks", "tests")

_WAIVER_RE = re.compile(r"#\s*lint:\s*(?P<rest>.*)$")
_TAG_RE = re.compile(r"^(?:[a-z][a-z0-9-]*|disable=CSD\d{3})$")


def parse_waiver_tags(comment: str) -> Set[str]:
    """Tags of one ``# lint:`` comment (empty set if it is not one).

    Tags are comma/space separated; scanning stops at the first token
    that is not a tag, so free-text justifications can follow inline.
    """
    match = _WAIVER_RE.search(comment)
    if match is None:
        return set()
    tags: Set[str] = set()
    for token in re.split(r"[,\s]+", match.group("rest")):
        if not token:
            continue
        if not _TAG_RE.match(token):
            break
        tags.add(token)
    return tags


@dataclass
class SourceFile:
    """One parsed Python file plus its waiver map."""

    path: Path
    relpath: str
    text: str
    tree: Optional[ast.Module]
    parse_error: Optional[str] = None
    #: line number -> waiver tags applying to findings on that line
    waivers: Dict[int, Set[str]] = field(default_factory=dict)
    _lines: Optional[List[str]] = None

    @property
    def lines(self) -> List[str]:
        if self._lines is None:
            self._lines = self.text.split("\n")
        return self._lines

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def waived(self, line: int, rule_id: str, tag: str) -> bool:
        """Whether a finding of ``rule_id``/``tag`` on ``line`` is waived."""
        tags = self.waivers.get(line, set())
        if f"disable={rule_id}" in tags:
            return True
        return bool(tag) and tag in tags


def _scan_waivers(text: str) -> Dict[int, Set[str]]:
    waivers: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return waivers
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        tags = parse_waiver_tags(tok.string)
        if not tags:
            continue
        line = tok.start[0]
        waivers.setdefault(line, set()).update(tags)
        # a comment-only line waives the next line of code as well
        if tok.line[: tok.start[1]].strip() == "":
            waivers.setdefault(line + 1, set()).update(tags)
    return waivers


def load_source_file(path: Path, relpath: str) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    tree: Optional[ast.Module] = None
    parse_error: Optional[str] = None
    try:
        tree = ast.parse(text, filename=relpath)
    except SyntaxError as exc:
        parse_error = f"{exc.msg} (line {exc.lineno})"
    return SourceFile(
        path=path,
        relpath=relpath,
        text=text,
        tree=tree,
        parse_error=parse_error,
        waivers=_scan_waivers(text),
    )


class Project:
    """All scanned files of one repository checkout."""

    def __init__(self, root: Path, files: Sequence[SourceFile]):
        self.root = root
        self.files = list(files)
        self._by_relpath = {sf.relpath: sf for sf in self.files}
        # linked interprocedural model; the engine populates these
        # before any graph rule runs (None/empty for pure syntactic
        # runs).  Typed loosely to avoid a circular import with
        # repro.analysis.callgraph.
        self.graph: Optional[object] = None
        #: (caller, callee) -> rule-tag set, for ``--graph`` export
        self.edge_taints: Dict[Tuple[str, str], Set[str]] = {}

    def file(self, relpath: str) -> Optional[SourceFile]:
        return self._by_relpath.get(relpath)

    def __len__(self) -> int:
        return len(self.files)


def load_project(
    root: Path, roots: Sequence[str] = DEFAULT_ROOTS
) -> Project:
    """Parse every ``*.py`` under ``root``'s scan directories."""
    root = Path(root).resolve()
    if not root.is_dir():
        raise AnalysisError(f"project root {root} is not a directory")
    files: List[SourceFile] = []
    seen: Set[Path] = set()
    for sub in roots:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts or path in seen:
                continue
            seen.add(path)
            relpath = path.relative_to(root).as_posix()
            files.append(load_source_file(path, relpath))
    if not files:
        raise AnalysisError(
            f"no Python files found under {root} (scanned {', '.join(roots)})"
        )
    return Project(root, files)
