"""CSD006: every benchmark script registers with the harness.

The perf-regression gate only sees benchmarks that expose a
module-level ``SPEC = register(...)``; a script without one runs in
nobody's CI and its regressions land silently.  Discovery enforces
this at runtime, but only when the script is imported at all — this
rule makes the requirement static, including the ``name=``/``suite=``
keywords the registry needs to place the spec in a gated suite.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, dotted_name

_REGISTER_CALLS = frozenset({"register", "BenchSpec"})
_REQUIRED_KEYWORDS = ("name", "suite")


class BenchRegistrationRule(Rule):
    rule_id = "CSD006"
    title = "bench-registration"
    waiver_tag = "bench-spec"
    rationale = (
        "Benchmarks outside the registry escape the CI perf gate; a "
        "static module-level SPEC = register(name=..., suite=...) is "
        "what discovery collects and the comparator diffs against the "
        "committed baselines."
    )

    def applies(self, sf: SourceFile) -> bool:
        name = sf.relpath.rsplit("/", 1)[-1]
        return (
            sf.relpath.startswith("benchmarks/")
            and name.startswith("bench_")
            and name.endswith(".py")
        )

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if sf.tree is None:
            return
        spec = self._spec_assignment(sf.tree)
        if spec is None:
            yield self.flag(
                sf,
                1,
                "benchmark script defines no module-level "
                "SPEC = register(...); it will never reach the harness "
                "or the perf gate",
            )
            return
        value = spec.value
        if not (
            isinstance(value, ast.Call)
            and (dotted_name(value.func) or "").split(".")[-1]
            in _REGISTER_CALLS
        ):
            yield self.flag(
                sf,
                spec,
                "SPEC must be assigned directly from register(...) so "
                "discovery sees a BenchSpec",
            )
            return
        keywords = {kw.arg for kw in value.keywords if kw.arg}
        missing = [kw for kw in _REQUIRED_KEYWORDS if kw not in keywords]
        if missing:
            yield self.flag(
                sf,
                spec,
                f"SPEC registration lacks keyword(s) {', '.join(missing)}; "
                "the registry needs them to place the benchmark in a "
                "gated suite",
            )

    @staticmethod
    def _spec_assignment(tree: ast.Module) -> Optional[ast.Assign]:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "SPEC":
                        return node
        return None
