"""CSD004: subsystem error taxonomy and no silent exception swallows.

Callers distinguish failing subsystems by exception type alone: the
recovery transport NACKs on :class:`WireFormatError`, the adaptive
selector skips codecs on :class:`CodecError`, and the differential
oracle treats anything else as an engine bug.  A stray ``ValueError``
in the wire layer or a swallowed ``except Exception`` therefore breaks
fault recovery and fuzzing in ways no test pinpoints.  This rule checks
that ``repro.wire`` raises only :class:`WireFormatError` (and
subclasses), ``repro.compression`` only :class:`CodecError` subclasses,
and that nothing anywhere uses a bare ``except:`` or an
``except Exception:`` whose body is only ``pass``/``continue``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, dotted_name

ERRORS_PATH = "src/repro/errors.py"

#: package prefix -> root exception classes its raises must derive from
PACKAGE_TAXONOMY: Dict[str, Tuple[str, ...]] = {
    "src/repro/wire/": ("WireFormatError",),
    "src/repro/compression/": ("CodecError",),
}

_SWALLOW_BODIES = (ast.Pass, ast.Continue)
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


def _class_parents(tree: ast.Module) -> Dict[str, List[str]]:
    parents: Dict[str, List[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            names = []
            for base in node.bases:
                path = dotted_name(base)
                if path is not None:
                    names.append(path.split(".")[-1])
            parents[node.name] = names
    return parents


def _descendants(roots: Tuple[str, ...], parents: Dict[str, List[str]]) -> Set[str]:
    allowed = set(roots)
    changed = True
    while changed:
        changed = False
        for cls, bases in parents.items():
            if cls not in allowed and any(b in allowed for b in bases):
                allowed.add(cls)
                changed = True
    return allowed


class ExceptionTaxonomyRule(Rule):
    rule_id = "CSD004"
    title = "exception-taxonomy"
    waiver_tag = "broad-except"
    rationale = (
        "The recovery transport, adaptive selector and differential "
        "oracle all branch on exception type; raising outside a "
        "subsystem's taxonomy or silently swallowing Exception corrupts "
        "those decisions without failing any test."
    )

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if sf.tree is None:
            return
        yield from self._check_raises(sf, project)
        yield from self._check_handlers(sf)

    # ----- per-package raise taxonomy ----------------------------------

    def _check_raises(
        self, sf: SourceFile, project: Project
    ) -> Iterable[Finding]:
        roots: Optional[Tuple[str, ...]] = None
        for prefix, allowed_roots in PACKAGE_TAXONOMY.items():
            if sf.relpath.startswith(prefix):
                roots = allowed_roots
                break
        if roots is None:
            return
        allowed = self._allowed_names(project, sf, roots)
        for node in ast.walk(sf.tree or ast.Module(body=[], type_ignores=[])):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name is None or name in allowed:
                continue
            yield self.flag(
                sf,
                node,
                f"{sf.relpath.split('/')[2]} package raises {name}; its "
                f"taxonomy allows only {' / '.join(sorted(roots))} "
                "subclasses so callers can branch on subsystem",
            )

    def _allowed_names(
        self, project: Project, sf: SourceFile, roots: Tuple[str, ...]
    ) -> Set[str]:
        parents: Dict[str, List[str]] = {}
        errors = project.file(ERRORS_PATH)
        if errors is not None and errors.tree is not None:
            parents.update(_class_parents(errors.tree))
        package = sf.relpath.rsplit("/", 1)[0] + "/"
        for other in project.files:
            if other.relpath.startswith(package) and other.tree is not None:
                parents.update(_class_parents(other.tree))
        return _descendants(roots, parents)

    @staticmethod
    def _raised_name(exc: ast.AST) -> Optional[str]:
        if isinstance(exc, ast.Call):
            exc = exc.func
        path = dotted_name(exc)
        if path is None:
            return None
        name = path.split(".")[-1]
        # re-raising a caught variable ('raise exc') is not a new type
        if not name[:1].isupper():
            return None
        return name

    # ----- broad / silent handlers -------------------------------------

    def _check_handlers(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree or ast.Module(body=[], type_ignores=[])):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.flag(
                    sf,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                    "name the exception types",
                )
                continue
            name = dotted_name(node.type)
            if name in _BROAD_HANDLERS and self._is_silent(node.body):
                yield self.flag(
                    sf,
                    node,
                    f"'except {name}: pass' silently swallows every "
                    "subsystem error; narrow it or waive with "
                    "'# lint: broad-except <why>'",
                )

    @staticmethod
    def _is_silent(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, _SWALLOW_BODIES):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring / ellipsis
            return False
        return True
