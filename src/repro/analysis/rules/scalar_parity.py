"""CSD002: every public kernel dispatches to a tested scalar oracle.

PR 4's vectorized kernels are only trustworthy because each one carries
a tuple-at-a-time reference implementation (`compression/scalar_ref.py`)
and a `scalar_reference_mode()` dispatch that swaps the whole engine
onto those oracles.  This rule keeps the pairing airtight: a public
function in `compression/kernels.py` must (a) begin with the
`using_scalar_reference()` dispatch guard returning a `scalar_ref.<fn>`
call, (b) name a function that actually exists in `scalar_ref.py`, and
(c) have both halves of the pair exercised by the equivalence test
module.  Helpers shared by both modes can be waived with
``# lint: scalar-parity``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, dotted_name, identifier_set, walk_functions

KERNELS_PATH = "src/repro/compression/kernels.py"
SCALAR_REF_PATH = "src/repro/compression/scalar_ref.py"
TEST_MODULE_PATH = "tests/test_vectorized_kernels.py"

#: public names in kernels.py that are dispatch machinery, not kernels
DISPATCH_MACHINERY = frozenset(
    {"using_scalar_reference", "scalar_reference_mode"}
)


class ScalarParityRule(Rule):
    rule_id = "CSD002"
    title = "scalar-parity"
    waiver_tag = "scalar-parity"
    rationale = (
        "Each public batch kernel must dispatch to a scalar_ref oracle "
        "under scalar_reference_mode(), the oracle must exist, and both "
        "must appear in tests/test_vectorized_kernels.py — otherwise the "
        "differential oracle's scalar-reference leg and the equivalence "
        "suites silently stop covering that kernel."
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        kernels = project.file(KERNELS_PATH)
        if kernels is None or kernels.tree is None:
            return
        scalar = project.file(SCALAR_REF_PATH)
        tests = project.file(TEST_MODULE_PATH)
        scalar_names: Set[str] = set()
        if scalar is not None and scalar.tree is not None:
            scalar_names = {fn.name for fn in walk_functions(scalar.tree)}
        test_names: Set[str] = set()
        if tests is not None and tests.tree is not None:
            test_names = identifier_set(tests.tree)

        for fn in walk_functions(kernels.tree):
            if fn.name.startswith("_") or fn.name in DISPATCH_MACHINERY:
                continue
            target = self._dispatch_target(fn)
            if target is None:
                yield self.flag(
                    kernels,
                    fn,
                    f"public kernel {fn.name}() has no "
                    "using_scalar_reference() dispatch to a scalar_ref "
                    "oracle",
                )
                continue
            if scalar is not None and target not in scalar_names:
                yield self.flag(
                    kernels,
                    fn,
                    f"kernel {fn.name}() dispatches to scalar_ref."
                    f"{target}, which does not exist in scalar_ref.py",
                )
                continue
            if tests is not None:
                missing = [
                    name
                    for name in (fn.name, target)
                    if name not in test_names
                ]
                if missing:
                    yield self.flag(
                        kernels,
                        fn,
                        f"kernel pair ({fn.name}, scalar_ref.{target}) "
                        f"not exercised by {TEST_MODULE_PATH}: "
                        f"{', '.join(missing)} never referenced",
                    )

    @staticmethod
    def _dispatch_target(fn: ast.FunctionDef) -> Optional[str]:
        """The scalar_ref function this kernel dispatches to, if any."""
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (
                isinstance(test, ast.Call)
                and dotted_name(test.func) == "using_scalar_reference"
            ):
                continue
            for stmt in ast.walk(node):
                if (
                    isinstance(stmt, ast.Return)
                    and isinstance(stmt.value, ast.Call)
                ):
                    path = dotted_name(stmt.value.func)
                    if path is not None and path.startswith("scalar_ref."):
                        return path.split(".", 1)[1]
        return None
