"""CSD012: static checkpoint purity of the pickled session graph.

``TenantSession.state_bytes`` pickles the session's mutable object
graph; anything pickle-hostile that *reaches* that graph — a lambda
stored on an attribute three hops away, an open file handle, a live
thread — fails at checkpoint time, and anything wall-clock-bearing
breaks replay determinism silently.  The chaos campaign only exercises
the states its seeds happen to produce, so this rule proves the
property statically instead: it walks the class-attribute type graph
from :class:`TenantSession` (annotated types, constructor assignments,
annotated-parameter assignments) and flags every reachable attribute
carrying a pickle-hostile marker or an unpicklable type root.

Attributes the checkpoint code deliberately detaches or rebuilds on
restore (the spec, the source iterator, the shared decode cache …) are
excluded below; keep :data:`DETACHED_ATTRS` in sync with
``state_bytes``/``restore`` in ``repro.serve.session``.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..callgraph import CallGraph
from ..dataflow import attribute_closure
from ..findings import Finding
from ..project import Project
from .base import GraphRule

#: root of the pickled object graph
ROOT_CLASS = "TenantSession"

#: (class leaf name, attribute) pairs excluded from the pickled state —
#: mirror of the state dict in TenantSession.state_bytes plus the
#: attributes restore() rebuilds from the spec
DETACHED_ATTRS: Set[Tuple[str, str]] = {
    ("TenantSession", "spec"),
    ("TenantSession", "plan"),
    ("TenantSession", "_iterator"),
    ("TenantSession", "disarmed"),
    # shared across tenants; state_bytes() detaches it before pickling
    ("Server", "cache"),
}

#: dotted-path prefixes whose instances never pickle
UNPICKLABLE_TYPE_ROOTS: Tuple[str, ...] = (
    "threading.",
    "socket.",
    "subprocess.",
    "multiprocessing.",
)


class CheckpointPurityRule(GraphRule):
    rule_id = "CSD012"
    title = "checkpoint-purity"
    waiver_tag = "checkpoint-purity"
    rationale = (
        "Checkpoint/restore is the serving layer's crash-recovery "
        "contract; a pickle-hostile or wall-clock-bearing attribute "
        "anywhere in TenantSession's reachable object graph corrupts it "
        "only on the states that happen to hit it at runtime.  Static "
        "reachability over the class-attribute graph proves the whole "
        "graph pickles cleanly and deterministically."
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph
        if not isinstance(graph, CallGraph):
            return
        for found in attribute_closure(
            graph, ROOT_CLASS, DETACHED_ATTRS, UNPICKLABLE_TYPE_ROOTS
        ):
            owner = graph.classes.get(found.owner)
            relpath = owner.relpath if owner is not None else ""
            yield self.flag_at(
                project,
                relpath,
                found.line,
                f"attribute {found.attr_path!r} in {ROOT_CLASS}'s pickled "
                f"object graph is {found.problem}; checkpoints must "
                "pickle cleanly and replay deterministically — detach it "
                "in state_bytes()/restore() or waive with "
                "'# lint: checkpoint-purity <why safe>'",
            )
