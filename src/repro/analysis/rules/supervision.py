"""CSD007: the serving layer has exactly one engine-fault recovery point.

Crash containment in :mod:`repro.serve` only works if engine failures
propagate *uncaught* to the supervisor's single ``_protected_step``
handler: a stray ``except CodecError`` in a session or admission helper
would swallow a poison batch before the supervisor can disarm it,
checkpoint around it and account for it in the tenant's health.  This
rule forbids except-handlers that catch any engine/transport exception
(or ``Exception``/bare) under ``src/repro/serve/`` unless the handler
carries a ``# lint: supervised`` waiver — which in practice only the
supervisor's recovery point does.

The rule also bans importing ``time``/``datetime``: the serving layer
schedules restart backoff, breaker cooldowns and admission refill in
*virtual* time (:class:`~repro.serve.clock.VirtualClock`), and a single
wall-clock read would make kill-and-recover replays nondeterministic.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, dotted_name

SERVE_PREFIX = "src/repro/serve/"

#: engine/transport exceptions a serve module must never catch itself
ENGINE_EXCEPTIONS = frozenset(
    {
        "ReproError",
        "SchemaError",
        "CodecError",
        "CodecNotApplicable",
        "QuantizationError",
        "ChannelError",
        "TransportError",
        "WireFormatError",
        "EngineError",
        "Exception",
        "BaseException",
    }
)

FORBIDDEN_MODULES = frozenset({"time", "datetime"})


def _handler_names(handler: ast.ExceptHandler) -> Iterable[Optional[str]]:
    """Leaf class names caught by a handler (None for unresolvable)."""
    node = handler.type
    if node is None:
        return
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for t in types:
        path = dotted_name(t)
        yield path.split(".")[-1] if path else None


class SupervisionRule(Rule):
    rule_id = "CSD007"
    title = "supervised-recovery"
    waiver_tag = "supervised"
    rationale = (
        "Tenant crash containment relies on engine exceptions reaching "
        "the supervisor's single recovery point; a handler elsewhere in "
        "repro.serve would swallow poison batches before they can be "
        "disarmed and checkpointed around, and wall-clock sleeps would "
        "make restart backoff and kill-and-recover replays "
        "irreproducible."
    )

    def applies(self, sf: SourceFile) -> bool:
        return sf.relpath.startswith(SERVE_PREFIX)

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if sf.tree is None:
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(sf, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in FORBIDDEN_MODULES:
                        yield self.flag(
                            sf,
                            node,
                            f"repro.serve imports wall-clock module "
                            f"{alias.name!r}; backoff and cooldowns run "
                            "on the virtual clock",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if (node.module or "").split(".")[0] in FORBIDDEN_MODULES:
                    yield self.flag(
                        sf,
                        node,
                        f"repro.serve imports from wall-clock module "
                        f"{node.module!r}; backoff and cooldowns run "
                        "on the virtual clock",
                    )

    def _check_handler(
        self, sf: SourceFile, node: ast.ExceptHandler
    ) -> Iterable[Finding]:
        if node.type is None:
            yield self.flag(
                sf,
                node,
                "bare 'except:' in repro.serve swallows engine faults "
                "before the supervisor can contain them; let them "
                "propagate to the recovery point",
            )
            return
        for name in _handler_names(node):
            if name in ENGINE_EXCEPTIONS:
                yield self.flag(
                    sf,
                    node,
                    f"'except {name}' outside the supervisor's recovery "
                    "point hides tenant crashes from containment, "
                    "checkpointing and health accounting; waive the one "
                    "recovery point with '# lint: supervised <why>'",
                )
                return
