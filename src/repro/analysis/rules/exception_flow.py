"""CSD011: exception-taxonomy flow with call-graph evidence.

CSD004 checks raise statements *textually inside* the wire and codec
packages; a helper module that raises a bare ``Exception`` (or a
``ValueError``) on behalf of a wire function escapes it, yet the
recovery transport branches on exception type — an untyped raise from
anywhere in the wire call closure breaks NACK/recovery decisions.  This
rule walks the call graph from every ``repro.wire`` and
``repro.compression`` function and checks each reachable raise resolves
to the engine's *typed* taxonomy — the :class:`ReproError` tree, with
:class:`WireFormatError` / :class:`CodecError` as the wire/codec roots —
discovered project-wide through the linked class hierarchy, carrying
the witness call chain as evidence.  (Other subsystems raising their
own typed errors on a wire-reachable path is correct: the serializer
drives the whole selector/cost-model stack, and callers branch on the
ReproError tree.  CSD004 keeps the stricter per-package roots for code
textually inside the wire/codec packages.)

Control-flow raises (``StopIteration``, ``NotImplementedError`` on ABC
stubs …) are not errors callers branch on and stay allowed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set, Tuple

from ..callgraph import CallGraph, FunctionNode
from ..dataflow import find_flows, mark_flow_edges
from ..findings import Finding
from ..project import Project
from .base import GraphRule
from .exception_taxonomy import PACKAGE_TAXONOMY

#: taxonomy roots a wire/codec call path may raise (union of the
#: per-package roots: wire code legitimately surfaces codec failures)
TAXONOMY_ROOTS: Tuple[str, ...] = tuple(
    sorted({root for roots in PACKAGE_TAXONOMY.values() for root in roots})
)

#: the engine-wide typed taxonomy root.  Wire call paths reach deep
#: into the selector/cost-model/channel stack (StreamSerializer drives
#: compress_batch), and those layers raising their *own* typed errors
#: (ChannelError, CalibrationError …) is correct — callers branch on
#: the ReproError tree.  The blind spot this rule closes is a helper
#: raising an *untyped* exception (bare Exception, ValueError) that no
#: caller can attribute to a subsystem; CSD004 keeps the stricter
#: per-package roots for code textually inside wire/ and compression/.
ENGINE_TAXONOMY_ROOT = "ReproError"

#: raises that are control flow or programming-error signals, not
#: subsystem errors the transport/selector branch on
CONTROL_FLOW_RAISES = frozenset(
    {
        "StopIteration",
        "StopAsyncIteration",
        "NotImplementedError",
        "AssertionError",
        "KeyboardInterrupt",
        "SystemExit",
        "TypeError",
    }
)


class ExceptionFlowRule(GraphRule):
    rule_id = "CSD011"
    title = "taxonomy-flow"
    waiver_tag = "taxonomy-flow"
    rationale = (
        "Callers distinguish failing subsystems by exception type alone; "
        "CSD004 only sees raises written inside the wire/codec packages, "
        "so a helper module re-raising Exception on a wire path corrupts "
        "recovery decisions invisibly.  This rule proves every raise "
        "reachable from wire/codec entry points resolves to the "
        "WireFormatError/CodecError taxonomy, with the call chain as "
        "evidence."
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph
        if not isinstance(graph, CallGraph):
            return
        allowed = graph.class_descendants(
            TAXONOMY_ROOTS + (ENGINE_TAXONOMY_ROOT,)
        )
        allowed |= CONTROL_FLOW_RAISES
        entry_paths = tuple(PACKAGE_TAXONOMY)

        def raise_facts(node: FunctionNode) -> Iterator[Tuple[str, int]]:
            # raises textually inside the taxonomy packages are CSD004's
            # job; this rule owns the cross-module blind spot
            if any(node.relpath.startswith(p) for p in entry_paths):
                return
            for raised in node.summary.get("raises", []):
                if raised["name"] not in allowed:
                    yield raised["name"], raised["line"]

        entries = [n.qualname for n in graph.functions_in(entry_paths)]
        seen: Set[Tuple[str, int, str]] = set()
        for flow in find_flows(graph, entries, raise_facts):
            node = graph.function(flow.node)
            assert node is not None
            key = (node.relpath, flow.line, flow.detail)
            if key in seen:
                continue
            seen.add(key)
            mark_flow_edges(project.edge_taints, flow, self.title)
            yield self.flag_at(
                project,
                node.relpath,
                flow.line,
                f"raise {flow.detail} is reachable from a wire/codec "
                f"path: {flow.render_path()}; raise a typed "
                f"{ENGINE_TAXONOMY_ROOT}-taxonomy subclass "
                f"({'/'.join(TAXONOMY_ROOTS)} for wire/codec code) so "
                "the transport and selector can branch on subsystem, or "
                "waive with '# lint: taxonomy-flow <why>'",
            )
