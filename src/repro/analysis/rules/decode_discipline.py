"""CSD001: direct paths must not decode outside the DecodeCache.

The paper's central claim is that operators execute *on compressed
data*; any stray ``decode()``/``decompress()`` on a hot path silently
reintroduces the decompress-then-query model the engine exists to
avoid.  The only sanctioned full-column decode is
``DecodeCache.decompress`` (content-addressed, accounted as decompress
time); anything else needs a ``# lint: force-decode`` waiver stating
why the decode is bounded (e.g. one value per window).
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule

#: method names that materialize values from compressed representations
DECODE_METHODS = frozenset(
    {"decode", "decompress", "decode_codes", "force_decompress"}
)

#: receiver names through which a full decode is sanctioned
CACHE_RECEIVERS = frozenset({"cache", "decode_cache"})

#: files on the direct-on-compressed execution path
DIRECT_PATHS: Tuple[str, ...] = (
    "src/repro/operators/",
    "src/repro/core/server.py",
)


class DecodeDisciplineRule(Rule):
    rule_id = "CSD001"
    title = "decode-discipline"
    waiver_tag = "force-decode"
    rationale = (
        "Direct-on-compressed operators and the server hot loop may only "
        "materialize values through DecodeCache.decompress; every other "
        "decode()/decompress()/decode_codes() call site must carry a "
        "'# lint: force-decode' waiver explaining why the decode is "
        "bounded and intentional."
    )

    def applies(self, sf: SourceFile) -> bool:
        return any(
            sf.relpath == p or sf.relpath.startswith(p) for p in DIRECT_PATHS
        )

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if sf.tree is None:
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in DECODE_METHODS:
                continue
            if self._via_cache(func.value):
                continue
            yield self.flag(
                sf,
                node,
                f"direct path calls {func.attr}() outside DecodeCache; "
                "route through the cache or waive with "
                "'# lint: force-decode <why bounded>'",
            )

    @staticmethod
    def _via_cache(receiver: ast.AST) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id in CACHE_RECEIVERS
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in CACHE_RECEIVERS
        return False
