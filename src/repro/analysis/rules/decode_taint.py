"""CSD009: decode-discipline taint across helper-function hops.

CSD001 checks decode calls *textually inside* the direct-path files, so
a one-line helper in a utility module (``def expand(col): return
col.codec.decode(col.payload)``) called from an operator passes it
silently.  This rule closes that hole interprocedurally: every function
reachable over the call graph from a direct-path entry point is checked
for eager materialization (``decode``/``decompress``/``decode_codes``/
``force_decompress`` on a non-cache receiver), with propagation cut at
the sanctioned decode layers — ``DecodeCache`` itself and the codec
package, whose whole job is decoding.

Findings anchor at the offending call site in the helper and carry the
witness call chain from the entry point, so the fix (route through the
cache, or waive with ``# lint: force-decode`` at the site) is obvious.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from ..callgraph import CallGraph, FunctionNode
from ..dataflow import find_flows, mark_flow_edges
from ..findings import Finding
from ..project import Project
from .base import GraphRule
from .decode_discipline import CACHE_RECEIVERS, DECODE_METHODS, DIRECT_PATHS

#: paths where decoding is the sanctioned job (propagation stops here,
#: and decode sites inside them are not sinks); direct-path files are
#: excluded as sinks too — CSD001 already covers their call sites
SANCTIONED_PATHS: Tuple[str, ...] = (
    "src/repro/compression/",
    "src/repro/core/decode_cache.py",
)


def _decode_sites(node: FunctionNode) -> Iterator[Tuple[str, int]]:
    """Suspicious materialization call sites of one function summary."""
    if any(node.relpath.startswith(p) for p in SANCTIONED_PATHS + DIRECT_PATHS):
        return
    for site in node.summary.get("sites", []):
        line = site.get("line", node.line)
        if site.get("strcodec"):
            continue  # bytes.decode("utf-8"): a text codec, not a column
        if site["kind"] == "attr":
            parts = site["path"].split(".")
            if parts[-1] not in DECODE_METHODS:
                continue
            if len(parts) >= 2 and parts[-2] in CACHE_RECEIVERS:
                continue
            yield site["path"], line
        elif site["kind"] == "method":
            if site["method"] in DECODE_METHODS:
                yield site["method"], line


class DecodeTaintRule(GraphRule):
    rule_id = "CSD009"
    title = "decode-taint"
    waiver_tag = "force-decode"
    rationale = (
        "A helper function that decodes on behalf of an operator defeats "
        "the direct-on-compressed contract just as surely as an inline "
        "decode, but CSD001's per-file scan cannot see it.  This rule "
        "follows the call graph from every direct-path function and "
        "flags materialization reached through any number of helper "
        "hops, unless the path passes through DecodeCache or the codec "
        "package."
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph
        if not isinstance(graph, CallGraph):
            return
        entries = [n.qualname for n in graph.functions_in(DIRECT_PATHS)]
        sanitizers = {
            n.qualname
            for n in graph.functions_in(SANCTIONED_PATHS)
        }
        for flow in find_flows(graph, entries, _decode_sites, sanitizers):
            mark_flow_edges(project.edge_taints, flow, self.title)
            node = graph.function(flow.node)
            assert node is not None
            yield self.flag_at(
                project,
                node.relpath,
                flow.line,
                f"{flow.detail}() materializes compressed data and is "
                f"reachable from the direct path: {flow.render_path()}; "
                "route through DecodeCache or waive at this site with "
                "'# lint: force-decode <why bounded>'",
            )
