"""Rule base class and shared AST helpers.

A rule is a stateless-per-run object with two hooks: :meth:`visit` runs
once per applicable file, :meth:`finish` once per project (for
cross-file contracts such as scalar parity).  Rules emit findings via
:meth:`flag`; the engine handles waivers and the baseline.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterable, Iterator, Optional, Set, Union

from ..findings import Finding
from ..project import Project, SourceFile


class Rule:
    """One mechanically-checkable repository contract."""

    rule_id: ClassVar[str] = "CSD000"
    title: ClassVar[str] = ""
    #: tag accepted in ``# lint: <tag>`` comments to waive this rule
    waiver_tag: ClassVar[str] = ""
    #: one-paragraph rationale shown by ``lint --list-rules``
    rationale: ClassVar[str] = ""
    #: flow-sensitive rules set this; the engine links the call graph
    #: once (``project.graph``) before any such rule runs
    needs_graph: ClassVar[bool] = False

    def applies(self, sf: SourceFile) -> bool:
        return True

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        return ()

    def flag(
        self,
        sf: SourceFile,
        node: Union[ast.AST, int],
        message: str,
    ) -> Finding:
        line = node if isinstance(node, int) else node.lineno
        return Finding(
            rule=self.rule_id,
            path=sf.relpath,
            line=line,
            message=message,
            snippet=sf.snippet(line),
            waiver=self.waiver_tag,
        )


class GraphRule(Rule):
    """A flow-sensitive rule over the linked call graph.

    Graph rules run whole-project in :meth:`finish` (per-file visiting
    is meaningless for interprocedural properties); the engine
    guarantees ``project.graph`` is a linked
    :class:`~repro.analysis.callgraph.CallGraph` and
    ``project.edge_taints`` an edge-tag accumulator before ``finish``
    is called.
    """

    needs_graph: ClassVar[bool] = True

    def applies(self, sf: SourceFile) -> bool:
        return False

    def flag_at(
        self, project: Project, relpath: str, line: int, message: str
    ) -> Finding:
        """A finding anchored at a project file/line (with snippet)."""
        sf = project.file(relpath)
        return Finding(
            rule=self.rule_id,
            path=relpath,
            line=line,
            message=message,
            snippet=sf.snippet(line) if sf is not None else "",
            waiver=self.waiver_tag,
        )


# ----- shared AST helpers ----------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted path, from a module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime as dt`` maps ``dt -> datetime.datetime``.  Star imports are
    ignored.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else local
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{module}.{alias.name}" if module else alias.name
    return aliases


def canonical_call_path(
    func: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """The canonical dotted path of a call target, resolving aliases."""
    path = dotted_name(func)
    if path is None:
        return None
    head, _, rest = path.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def walk_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Top-level function definitions of a module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def identifier_set(tree: ast.Module) -> Set[str]:
    """Every Name id and Attribute attr appearing in a module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names
