"""CSD008: optimizer rules are pure plan-to-plan transforms.

The optimizer's correctness story rests on the rewrite rules being
*referentially transparent*: a rule sees a logical plan plus catalogue
statistics and returns a plan — nothing else.  Three mechanically
checkable consequences, enforced over ``src/repro/optimizer/``:

* no wall-clock or entropy imports (``time``, ``datetime``, ``random``):
  plan choices must be reproducible from (query, stats) alone, or EXPLAIN
  goldens and the differential oracle's optimized leg stop being
  deterministic;
* no decompression during planning (``decompress``/``decode``/
  ``decode_codes``/``decode_all`` calls): rules price compressed
  representations through :mod:`repro.optimizer.cost`; touching payloads
  at plan time would smuggle data-dependent work into what must be a
  metadata-only phase;
* every :class:`RewriteRule` subclass must be registered in the static
  ``RULES`` tuple literal of :mod:`repro.optimizer.rules` — an
  unregistered rule silently never runs, and a dynamically-built table
  defeats static auditing of what can rewrite a plan.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule

OPTIMIZER_PREFIX = "src/repro/optimizer/"

FORBIDDEN_MODULES = frozenset({"time", "datetime", "random"})

DECODE_CALLS = frozenset(
    {"decompress", "decode", "decode_codes", "decode_all"}
)

RULE_BASE = "RewriteRule"
RULES_TABLE = "RULES"


def _base_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


class OptimizerPurityRule(Rule):
    rule_id = "CSD008"
    title = "optimizer-purity"
    waiver_tag = "plan-transform"
    rationale = (
        "Rewrite rules must be pure AST/plan transforms: no wall-clock "
        "or entropy imports, no decompression of payloads at plan time, "
        "and every RewriteRule subclass registered in the static RULES "
        "tuple so the active rule set is statically auditable."
    )

    def applies(self, sf: SourceFile) -> bool:
        return sf.relpath.startswith(OPTIMIZER_PREFIX)

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if sf.tree is None:
            return
        yield from self._check_imports(sf)
        yield from self._check_decode_calls(sf)
        yield from self._check_registration(sf)

    # ----- wall clock / entropy ----------------------------------------

    def _check_imports(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in FORBIDDEN_MODULES:
                        yield self.flag(
                            sf,
                            node,
                            f"optimizer imports {alias.name!r}; plan "
                            "rewrites must be reproducible from the query "
                            "and statistics alone",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in FORBIDDEN_MODULES:
                    yield self.flag(
                        sf,
                        node,
                        f"optimizer imports from {node.module!r}; plan "
                        "rewrites must be reproducible from the query "
                        "and statistics alone",
                    )

    # ----- no decompression at plan time -------------------------------

    def _check_decode_calls(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in DECODE_CALLS:
                yield self.flag(
                    sf,
                    node,
                    f"optimizer calls .{func.attr}(); planning is a "
                    "metadata-only phase — price representations via the "
                    "cost model instead of touching payloads",
                )

    # ----- static RULES registration -----------------------------------

    def _check_registration(self, sf: SourceFile) -> Iterable[Finding]:
        subclasses: List[ast.ClassDef] = []
        registered: Set[str] = set()
        table_node = None
        for node in sf.tree.body:
            if isinstance(node, ast.ClassDef):
                if RULE_BASE in _base_names(node):
                    subclasses.append(node)
                continue
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == RULES_TABLE):
                continue
            table_node = node
            if not isinstance(value, ast.Tuple):
                yield self.flag(
                    sf,
                    node,
                    "RULES must be a static tuple literal of rule "
                    "instances, not a computed value",
                )
                continue
            for element in value.elts:
                if (
                    isinstance(element, ast.Call)
                    and isinstance(element.func, ast.Name)
                    and not element.args
                    and not element.keywords
                ):
                    registered.add(element.func.id)
                else:
                    yield self.flag(
                        sf,
                        element,
                        "RULES entries must be bare RuleClass() "
                        "instantiations so the active rule set is "
                        "statically readable",
                    )
        if subclasses and table_node is None:
            for cls in subclasses:
                yield self.flag(
                    sf,
                    cls,
                    f"RewriteRule subclass {cls.name!r} defined in a "
                    "module with no static RULES table; unregistered "
                    "rules never run",
                )
            return
        for cls in subclasses:
            if cls.name not in registered:
                yield self.flag(
                    sf,
                    cls,
                    f"RewriteRule subclass {cls.name!r} is not "
                    "registered in the static RULES table",
                )
