"""Rule registry: one class per mechanically-enforced contract."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ...errors import AnalysisError
from .base import GraphRule, Rule
from .bench_registration import BenchRegistrationRule
from .checkpoint_purity import CheckpointPurityRule
from .decode_discipline import DecodeDisciplineRule
from .decode_taint import DecodeTaintRule
from .determinism import DeterminismRule
from .exception_flow import ExceptionFlowRule
from .exception_taxonomy import ExceptionTaxonomyRule
from .optimizer_purity import OptimizerPurityRule
from .scalar_parity import ScalarParityRule
from .supervision import SupervisionRule
from .virtual_time import VirtualTimeRule
from .wall_clock_escape import WallClockEscapeRule

#: every registered rule, in id order
ALL_RULES: List[Type[Rule]] = [
    DecodeDisciplineRule,
    ScalarParityRule,
    DeterminismRule,
    ExceptionTaxonomyRule,
    VirtualTimeRule,
    BenchRegistrationRule,
    SupervisionRule,
    OptimizerPurityRule,
    DecodeTaintRule,
    WallClockEscapeRule,
    ExceptionFlowRule,
    CheckpointPurityRule,
]

_BY_ID: Dict[str, Type[Rule]] = {cls.rule_id: cls for cls in ALL_RULES}


def get_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (all of them by default)."""
    if not rule_ids:
        return [cls() for cls in ALL_RULES]
    rules = []
    for rule_id in rule_ids:
        cls = _BY_ID.get(rule_id.upper())
        if cls is None:
            raise AnalysisError(
                f"unknown rule {rule_id!r}; available: {sorted(_BY_ID)}"
            )
        rules.append(cls())
    return rules


__all__ = ["ALL_RULES", "GraphRule", "Rule", "get_rules"]
