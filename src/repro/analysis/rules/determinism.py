"""CSD003: every random draw is seeded; no wall-clock in results.

The differential oracle, the fault injector and the golden-format
digests are only reproducible because every random draw flows through a
seeded ``np.random.Generator`` and no result depends on the wall clock.
This rule forbids ``time.time``/``datetime.now``-style calls, the
stdlib ``random`` module, the legacy ``np.random.*`` global generator
and *unseeded* ``np.random.default_rng()`` — everywhere except a small
documented allowlist (CLI surface, bench-runner environment capture).
``time.perf_counter`` is deliberately allowed: measuring elapsed time
does not change any computed result.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, canonical_call_path, import_aliases

#: call targets that leak wall-clock time into computation
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: files exempt from this rule, with the reason on record
ALLOWLIST: Dict[str, str] = {
    # the CLI is the human surface; argparse defaults and progress output
    # may reference the environment without affecting engine results
    "src/repro/cli.py": "interactive surface, not engine computation",
    # the bench runner stamps results with a creation timestamp and
    # captures the host environment — provenance, not computation
    "src/repro/bench/runner.py": "environment capture and provenance",
}

#: scan scope: engine sources and benchmarks (tests manage their own
#: seeds through hypothesis and fixtures)
SCOPE = ("src/repro/", "benchmarks/")


class DeterminismRule(Rule):
    rule_id = "CSD003"
    title = "determinism"
    waiver_tag = "nondeterminism"
    rationale = (
        "Seeded np.random.Generator draws are the only sanctioned "
        "randomness: the differential oracle replays cases byte-for-byte "
        "and the fault injector's campaigns must be reproducible from a "
        "seed alone, so wall-clock reads, stdlib random and unseeded "
        "generators are forbidden outside the documented allowlist."
    )

    def applies(self, sf: SourceFile) -> bool:
        if sf.relpath in ALLOWLIST:
            return False
        return any(sf.relpath.startswith(p) for p in SCOPE)

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if sf.tree is None:
            return
        aliases = import_aliases(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.flag(
                    sf,
                    node,
                    "stdlib random is unseeded global state; use a seeded "
                    "np.random.Generator",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            path = canonical_call_path(node.func, aliases)
            if path is None:
                continue
            if path in WALL_CLOCK_CALLS:
                yield self.flag(
                    sf,
                    node,
                    f"{path}() reads the wall clock; results must be "
                    "reproducible from seeds and virtual time",
                )
            elif path.startswith("random."):
                yield self.flag(
                    sf,
                    node,
                    f"{path}() uses the unseeded stdlib RNG; use a seeded "
                    "np.random.Generator",
                )
            elif path == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.flag(
                        sf,
                        node,
                        "np.random.default_rng() without a seed is "
                        "entropy-seeded; pass an explicit seed",
                    )
            elif path.startswith("numpy.random."):
                yield self.flag(
                    sf,
                    node,
                    f"{path}() drives numpy's legacy global RNG; use a "
                    "seeded np.random.Generator",
                )
