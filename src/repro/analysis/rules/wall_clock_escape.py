"""CSD010: wall-clock escape analysis for the virtual-time stack.

CSD005 forbids *importing* ``time``/``datetime`` inside ``repro.net``;
a serving-layer function that calls a helper in another package which
reads the wall clock sails straight past it.  This rule generalizes the
contract interprocedurally: no function transitively reachable from a
``repro.net`` or ``repro.serve`` entry point may call a wall-clock or
ambient-entropy API (``time.time``, ``datetime.now``, ``os.urandom``,
``time.sleep`` …).  ``time.perf_counter`` stays allowed, consistent
with CSD003 — measuring elapsed time changes no computed result — and
propagation stops at the CSD003 allowlist files (CLI surface, bench
runner), whose wall-clock use is documented provenance.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..callgraph import CallGraph
from ..dataflow import external_sink, find_flows, mark_flow_edges
from ..findings import Finding
from ..project import Project
from .base import GraphRule
from .determinism import ALLOWLIST, WALL_CLOCK_CALLS

#: entry surface: everything the virtual-time contract covers
ENTRY_PATHS: Tuple[str, ...] = ("src/repro/net/", "src/repro/serve/")

#: sinks beyond CSD003's computation set: sleeping couples simulated
#: time to real seconds; os.urandom is ambient entropy
EXTRA_SINKS = frozenset({"time.sleep", "os.urandom"})

_SINKS = frozenset(WALL_CLOCK_CALLS) | EXTRA_SINKS


def _is_sink(path: str) -> bool:
    return path in _SINKS


class WallClockEscapeRule(GraphRule):
    rule_id = "CSD010"
    title = "wall-clock-escape"
    waiver_tag = "wall-clock"
    rationale = (
        "The network stack and serving layer run in virtual time so "
        "fault campaigns and checkpoint replays are bit-reproducible; a "
        "wall-clock read anywhere in their transitive call closure "
        "couples results to the host clock.  CSD005 only checks imports "
        "inside repro.net; this rule follows calls across module "
        "boundaries."
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph
        if not isinstance(graph, CallGraph):
            return
        entries = [n.qualname for n in graph.functions_in(ENTRY_PATHS)]
        sanitizers = {
            n.qualname
            for n in graph.functions_in(tuple(ALLOWLIST))
        }
        facts = external_sink(_is_sink)
        for flow in find_flows(graph, entries, facts, sanitizers):
            mark_flow_edges(project.edge_taints, flow, self.title)
            node = graph.function(flow.node)
            assert node is not None
            yield self.flag_at(
                project,
                node.relpath,
                flow.line,
                f"{flow.detail}() is reachable from the virtual-time "
                f"surface: {flow.render_path()}; compute the value from "
                "virtual time / seeded RNG or waive at this site with "
                "'# lint: wall-clock <why>'",
            )
