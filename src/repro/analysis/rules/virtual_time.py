"""CSD005: the network stack lives in virtual time only.

``repro.net`` simulates channels, faults and the recovery transport in
*virtual* time: latency, backoff and stalls are computed quantities, so
runs are bit-reproducible and a simulated slow link costs no real
seconds.  A single ``time.sleep`` or wall-clock read would couple test
wall-clock to simulated bandwidth and break campaign replays, so this
rule forbids importing the ``time``/``datetime`` modules anywhere under
``src/repro/net/``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule

NET_PREFIX = "src/repro/net/"

FORBIDDEN_MODULES = frozenset({"time", "datetime"})


class VirtualTimeRule(Rule):
    rule_id = "CSD005"
    title = "virtual-time"
    waiver_tag = "wall-clock"
    rationale = (
        "Transport retry/backoff and fault stalls are computed in "
        "virtual seconds; importing wall-clock APIs into repro.net "
        "would make recovery timing machine-dependent and campaign "
        "replays irreproducible."
    )

    def applies(self, sf: SourceFile) -> bool:
        return sf.relpath.startswith(NET_PREFIX)

    def visit(self, sf: SourceFile, project: Project) -> Iterable[Finding]:
        if sf.tree is None:
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in FORBIDDEN_MODULES:
                        yield self.flag(
                            sf,
                            node,
                            f"repro.net imports wall-clock module "
                            f"{alias.name!r}; the network stack runs in "
                            "virtual time",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in FORBIDDEN_MODULES:
                    yield self.flag(
                        sf,
                        node,
                        f"repro.net imports from wall-clock module "
                        f"{node.module!r}; the network stack runs in "
                        "virtual time",
                    )
