"""Per-file function summaries: the unit the interprocedural engine links.

The call-graph and dataflow engines never re-walk a file's AST on a warm
run.  Instead every source file is distilled once into a JSON-safe
*summary* — its module name, resolved imports, every function definition
(with the call sites, raises and attribute writes the flow rules care
about) and every class (bases plus an attribute→type map for the
checkpoint-reachability rule).  Summaries are pure data, so they cache
cleanly: :class:`SummaryCache` keys them by a content digest of the file
text and the summary format version, and the engine only summarizes
files whose digest changed since the cached run.

Name resolution is deliberately split: summaries canonicalize what can
be resolved *locally* (import aliases, relative imports against the
module's package) and leave cross-file resolution (class hierarchies,
method dispatch) to :mod:`repro.analysis.callgraph`, which links the
summaries of the whole project.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from .project import SourceFile

#: bump when the summary shape changes; cached entries invalidate
SUMMARY_VERSION = 1

#: call-site kinds emitted by the summarizer (resolution happens at link
#: time in callgraph.py):
#:   name      bare-name call          ``helper(x)``
#:   attr      dotted-path call        ``self.cache.decompress(...)``
#:   method    unknown-receiver call   ``make().close()``
#:   partial   functools.partial(...)  target recorded for a later call
#:   ref       a name *reference* to a function (tables, callbacks)
#:   dynamic   importlib/getattr indirection — documented as imprecise
SITE_KINDS = ("name", "attr", "method", "partial", "ref", "dynamic")

#: canonical call paths that mark dynamic, statically-unresolvable dispatch
_DYNAMIC_CALLS = frozenset(
    {"importlib.import_module", "__import__", "getattr"}
)

#: attribute-value markers the checkpoint-purity rule looks for
_MARKER_LAMBDA = "lambda"
_MARKER_GENERATOR = "generator"
_MARKER_ITERATOR = "iterator"
_MARKER_OPEN_FILE = "open-file"
_MARKER_WALL_CLOCK = "wall-clock"
_MARKER_MODULE = "module-object"

#: call roots whose instances never pickle (threads, sockets, processes)
_UNPICKLABLE_ROOTS = ("threading.", "socket.", "subprocess.", "multiprocessing.")

#: wall-clock reads that poison a pickled attribute
_WALL_CLOCK_VALUES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: str/bytes text-codec methods share names with column codecs; a call
#: like ``name_b.decode("utf-8")`` is marked so decode rules skip it
_TEXT_ENCODINGS = frozenset(
    {"utf-8", "utf8", "ascii", "latin-1", "latin1", "utf-16", "cp1252"}
)


def module_name_for(relpath: str) -> str:
    """Dotted module name of a scanned file (``src/`` layout aware)."""
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def file_digest(text: str) -> str:
    payload = f"{SUMMARY_VERSION}\n".encode() + text.encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_relative(module: str, is_package: bool, level: int) -> str:
    """The absolute package a ``from ...`` import of ``level`` targets."""
    base = module if is_package else module.rsplit(".", 1)[0]
    parts = base.split(".") if base else []
    drop = level - 1
    if drop:
        parts = parts[: max(0, len(parts) - drop)]
    return ".".join(parts)


def module_imports(
    tree: ast.Module, module: str, is_package: bool
) -> Dict[str, str]:
    """Local name -> canonical dotted path, relative imports resolved."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else local
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                pkg = _resolve_relative(module, is_package, node.level)
                sub = node.module or ""
                base = f"{pkg}.{sub}" if pkg and sub else (pkg or sub)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def _annotation_names(node: Optional[ast.AST]) -> List[str]:
    """Class-looking identifiers inside a type annotation."""
    if node is None:
        return []
    names: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            path = _dotted(sub)
            if path is not None:
                names.append(path)
        elif isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.append(sub.value)  # string annotation
    # keep only identifiers that look like class names (CamelCase leaf)
    out = []
    for name in names:
        leaf = name.split(".")[-1].split("[")[0]
        if leaf[:1].isupper():
            out.append(name)
    return out


class _Scope:
    """One executable scope (module body, function or lambda)."""

    def __init__(self, qualname: str, doc: Dict[str, Any]):
        self.qualname = qualname
        self.doc = doc


class _Summarizer(ast.NodeVisitor):
    """Single-pass AST walk producing the summary document."""

    def __init__(self, sf: SourceFile, module: str, aliases: Dict[str, str]):
        self.sf = sf
        self.module = module
        self.aliases = aliases
        self.functions: List[Dict[str, Any]] = []
        self.classes: List[Dict[str, Any]] = []
        self._scopes: List[_Scope] = []
        self._classes: List[Dict[str, Any]] = []
        self._params: List[Dict[str, List[str]]] = []
        self._used_qualnames: Set[str] = set()
        #: qualname parents: functions AND classes interleave here, so a
        #: method's qualname is class-qualified (``mod.<module>.C.run``)
        self._namespace: List[str] = []

    # ----- scope bookkeeping -------------------------------------------

    def _push_function(
        self,
        name: str,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda],
        is_lambda: bool = False,
    ) -> _Scope:
        parent = self._namespace[-1] if self._namespace else self.module
        qualname = f"{parent}.{name}"
        # property/setter pairs, conditional redefinitions and same-name
        # overloads share a dotted path; disambiguate by line so every
        # definition stays a distinct graph node
        if qualname in self._used_qualnames:
            qualname = f"{qualname}:{node.lineno}"
            suffix = 0
            while qualname in self._used_qualnames:
                suffix += 1
                qualname = f"{parent}.{name}:{node.lineno}.{suffix}"
        self._used_qualnames.add(qualname)
        decorators = []
        if not is_lambda:
            for dec in getattr(node, "decorator_list", []):
                target = dec.func if isinstance(dec, ast.Call) else dec
                path = _dotted(target)
                if path is not None:
                    decorators.append(self._canonical(path))
        doc: Dict[str, Any] = {
            "qualname": qualname,
            "name": name,
            "line": node.lineno,
            "cls": self._classes[-1]["qualname"] if self._classes else None,
            "lambda": is_lambda,
            "decorators": decorators,
            "params": self._param_types(node),
            "sites": [],
            "raises": [],
            "refs": [],
            "dynamic": False,
        }
        self.functions.append(doc)
        scope = _Scope(qualname, doc)
        self._scopes.append(scope)
        self._params.append(doc["params"])
        self._namespace.append(qualname)
        return scope

    def _pop_function(self) -> None:
        self._scopes.pop()
        self._params.pop()
        self._namespace.pop()

    def _canonical(self, path: str) -> str:
        head, _, rest = path.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def _param_types(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    ) -> Dict[str, List[str]]:
        if isinstance(node, ast.Lambda):
            return {}
        types: Dict[str, List[str]] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names = [
                self._canonical(n) for n in _annotation_names(arg.annotation)
            ]
            if names:
                types[arg.arg] = names
        return types

    def _site(self, doc: Dict[str, Any]) -> None:
        if self._scopes:
            self._scopes[-1].doc["sites"].append(doc)

    # ----- definitions --------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        doc: Dict[str, Any] = {
            "qualname": f"{self.module}.<module>",
            "name": "<module>",
            "line": 1,
            "cls": None,
            "lambda": False,
            "decorators": [],
            "params": {},
            "sites": [],
            "raises": [],
            "refs": [],
            "dynamic": False,
        }
        self.functions.append(doc)
        self._scopes.append(_Scope(doc["qualname"], doc))
        self._params.append({})
        self._namespace.append(doc["qualname"])
        self.generic_visit(node)
        self._pop_function()

    def _visit_functiondef(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        self._push_function(node.name, node)
        # decorator expressions execute in the enclosing scope; the body
        # belongs to the new scope
        self.generic_visit(node)
        self._pop_function()

    visit_FunctionDef = _visit_functiondef
    visit_AsyncFunctionDef = _visit_functiondef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._push_function(f"<lambda:{node.lineno}>", node, is_lambda=True)
        self.generic_visit(node)
        self._pop_function()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        parent = self._namespace[-1] if self._namespace else self.module
        qualname = f"{parent}.{node.name}"
        doc: Dict[str, Any] = {
            "qualname": qualname,
            "name": node.name,
            "line": node.lineno,
            "bases": [
                self._canonical(p)
                for p in (_dotted(b) for b in node.bases)
                if p is not None
            ],
            "attrs": {},
        }
        self.classes.append(doc)
        self._classes.append(doc)
        self._namespace.append(qualname)
        self._collect_class_body_attrs(node, doc)
        self.generic_visit(node)
        self._namespace.pop()
        self._classes.pop()

    def _collect_class_body_attrs(
        self, node: ast.ClassDef, doc: Dict[str, Any]
    ) -> None:
        """Annotated class-body fields (dataclass fields, slots)."""
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                types = [
                    self._canonical(n)
                    for n in _annotation_names(stmt.annotation)
                ]
                self._record_attr(
                    doc, stmt.target.id, stmt.lineno, types, stmt.value
                )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._record_attr(
                            doc, target.id, stmt.lineno, [], stmt.value
                        )

    def _record_attr(
        self,
        cls_doc: Dict[str, Any],
        attr: str,
        line: int,
        types: Sequence[str],
        value: Optional[ast.AST],
    ) -> None:
        entry = cls_doc["attrs"].setdefault(
            attr, {"types": [], "markers": [], "line": line}
        )
        for t in types:
            if t not in entry["types"]:
                entry["types"].append(t)
        for marker in self._value_markers(value):
            if marker not in entry["markers"]:
                entry["markers"].append(marker)
        for t in self._value_types(value):
            if t not in entry["types"]:
                entry["types"].append(t)

    def _value_types(self, value: Optional[ast.AST]) -> List[str]:
        """Constructor-call types of an attribute's assigned value."""
        if isinstance(value, ast.Call):
            path = _dotted(value.func)
            if path is not None:
                canonical = self._canonical(path)
                leaf = canonical.split(".")[-1]
                if leaf[:1].isupper():
                    return [canonical]
        elif isinstance(value, ast.Name):
            # ``self.x = param`` picks up the parameter's annotation
            params = self._params[-1] if self._params else {}
            return list(params.get(value.id, []))
        elif isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            out: List[str] = []
            for elt in value.elts:
                out.extend(self._value_types(elt))
            return out
        return []

    def _value_markers(self, value: Optional[ast.AST]) -> List[str]:
        """Pickle-hostile / wall-clock markers of an assigned value."""
        if value is None:
            return []
        markers: List[str] = []
        if isinstance(value, ast.Lambda):
            markers.append(_MARKER_LAMBDA)
        elif isinstance(value, ast.GeneratorExp):
            markers.append(_MARKER_GENERATOR)
        elif isinstance(value, ast.Call):
            path = _dotted(value.func)
            canonical = self._canonical(path) if path else None
            if canonical == "open":
                markers.append(_MARKER_OPEN_FILE)
            elif canonical == "iter":
                markers.append(_MARKER_ITERATOR)
            elif canonical in _WALL_CLOCK_VALUES:
                markers.append(_MARKER_WALL_CLOCK)
            elif canonical in _DYNAMIC_CALLS:
                markers.append(_MARKER_MODULE)
            elif canonical and canonical.startswith(_UNPICKLABLE_ROOTS):
                markers.append("unpicklable:" + canonical.split(".")[0])
        return markers

    # ----- attribute writes (``self.x = ...``) -------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._maybe_self_attr(node.targets, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            self._classes
            and isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "self"
        ):
            types = [
                self._canonical(n) for n in _annotation_names(node.annotation)
            ]
            self._record_attr(
                self._classes[-1],
                node.target.attr,
                node.lineno,
                types,
                node.value,
            )
        self.generic_visit(node)

    def _maybe_self_attr(
        self, targets: Sequence[ast.AST], value: ast.AST, line: int
    ) -> None:
        if not self._classes:
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._record_attr(
                    self._classes[-1], target.attr, line, [], value
                )

    # ----- call sites / raises / references ----------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        line = node.lineno
        if isinstance(func, ast.Name):
            canonical = self.aliases.get(func.id, func.id)
            if canonical in _DYNAMIC_CALLS:
                if self._scopes:
                    self._scopes[-1].doc["dynamic"] = True
                self._site({"kind": "dynamic", "line": line})
            elif canonical == "partial" or canonical == "functools.partial":
                self._partial_site(node, line)
            else:
                self._site({"kind": "name", "name": func.id, "line": line})
        elif isinstance(func, ast.Attribute):
            path = _dotted(func)
            if path is None:
                self._site(
                    {"kind": "method", "method": func.attr, "line": line}
                )
            else:
                canonical = self._canonical(path)
                if canonical in _DYNAMIC_CALLS:
                    if self._scopes:
                        self._scopes[-1].doc["dynamic"] = True
                    self._site({"kind": "dynamic", "line": line})
                elif canonical == "functools.partial":
                    self._partial_site(node, line)
                else:
                    site = {"kind": "attr", "path": canonical, "line": line}
                    if self._is_text_codec_call(func.attr, node):
                        site["strcodec"] = True
                    self._site(site)
        else:
            # call on an arbitrary expression: nothing to resolve
            pass
        self.generic_visit(node)

    def _partial_site(self, node: ast.Call, line: int) -> None:
        target: Optional[Dict[str, Any]] = None
        if node.args:
            inner = node.args[0]
            if isinstance(inner, ast.Name):
                target = {"kind": "name", "name": inner.id}
            else:
                path = _dotted(inner)
                if path is not None:
                    target = {"kind": "attr", "path": self._canonical(path)}
        site: Dict[str, Any] = {"kind": "partial", "line": line}
        if target is not None:
            site["target"] = target
        self._site(site)

    @staticmethod
    def _is_text_codec_call(attr: str, node: ast.Call) -> bool:
        if attr not in ("decode", "encode"):
            return False
        if not node.args and not node.keywords:
            # bare .decode()/.encode() defaults to utf-8 only on
            # str/bytes; column codecs always take payload arguments,
            # so argument-less calls stay suspicious
            return False
        first = node.args[0] if node.args else None
        return (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value.lower() in _TEXT_ENCODINGS
        )

    def visit_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None and self._scopes:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            path = _dotted(exc)
            if path is not None:
                name = path.split(".")[-1]
                # re-raising a caught lowercase variable is not a new type
                if name[:1].isupper():
                    self._scopes[-1].doc["raises"].append(
                        {
                            "name": name,
                            "path": self._canonical(path),
                            "line": node.lineno,
                        }
                    )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # bare-name *references* in load context pick up functions used
        # as values: rule tables, callbacks, map(fn, ...) arguments.
        # Deduped per scope; most never resolve to a function and are
        # dropped at link time.
        if isinstance(node.ctx, ast.Load) and self._scopes:
            refs = self._scopes[-1].doc["refs"]
            if node.id not in refs:
                refs.append(node.id)
        self.generic_visit(node)


def summarize_file(sf: SourceFile) -> Dict[str, Any]:
    """Summarize one parsed source file (empty doc if it fails to parse)."""
    module = module_name_for(sf.relpath)
    doc: Dict[str, Any] = {
        "version": SUMMARY_VERSION,
        "path": sf.relpath,
        "module": module,
        "imports": {},
        "functions": [],
        "classes": [],
    }
    if sf.tree is None:
        return doc
    is_package = sf.relpath.endswith("/__init__.py")
    aliases = module_imports(sf.tree, module, is_package)
    walker = _Summarizer(sf, module, aliases)
    walker.visit(sf.tree)
    doc["imports"] = aliases
    doc["functions"] = walker.functions
    doc["classes"] = walker.classes
    return doc


class SummaryCache:
    """Digest-keyed summary store persisted as one JSON file.

    The cache maps ``relpath -> {"digest": ..., "summary": ...}``; a
    lookup hits only when the file's current digest matches, so edits
    invalidate per file and version bumps invalidate everything (the
    digest covers :data:`SUMMARY_VERSION`).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if self.path is not None and self.path.is_file():
            try:
                doc = json.loads(self.path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                doc = {}
            if (
                isinstance(doc, dict)
                and doc.get("version") == SUMMARY_VERSION
                and isinstance(doc.get("files"), dict)
            ):
                self._entries = doc["files"]

    def summary(self, sf: SourceFile) -> Dict[str, Any]:
        digest = file_digest(sf.text)
        entry = self._entries.get(sf.relpath)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            return entry["summary"]
        self.misses += 1
        summary = summarize_file(sf)
        self._entries[sf.relpath] = {"digest": digest, "summary": summary}
        self._dirty = True
        return summary

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        doc = {"version": SUMMARY_VERSION, "files": self._entries}
        try:
            self.path.write_text(
                json.dumps(doc, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            # a read-only checkout still lints; it just stays cold
            return
        self._dirty = False


def summarize_project(
    files: Sequence[SourceFile], cache: Optional[SummaryCache] = None
) -> List[Dict[str, Any]]:
    """Summaries for every file, through the cache when one is given."""
    if cache is None:
        return [summarize_file(sf) for sf in files]
    return [cache.summary(sf) for sf in files]


__all__ = [
    "SUMMARY_VERSION",
    "SummaryCache",
    "file_digest",
    "module_imports",
    "module_name_for",
    "summarize_file",
    "summarize_project",
]
