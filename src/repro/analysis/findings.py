"""Findings: what a rule reports, and how findings are keyed.

A finding is anchored to a file and line but *matched* (against waivers
and the committed baseline) by its stripped source snippet, so findings
survive unrelated edits that only shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""
    #: waiver tag that silences this finding (set by the emitting rule)
    waiver: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
