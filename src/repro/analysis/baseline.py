"""Committed baseline of grandfathered findings.

The baseline file (``lint-baseline.json`` at the project root) lists
findings that are acknowledged but deliberately not fixed, each with a
required human-written ``reason``.  Matching is line-insensitive — an
entry is identified by ``(rule, path, snippet)`` — so baselined findings
survive unrelated edits.  An entry that no longer matches anything is
*stale* and reported as a finding itself: the baseline can only shrink.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from ..errors import AnalysisError
from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    reason: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_doc(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }


class Baseline:
    """A set of grandfathered findings with stale-entry tracking."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries = list(entries)
        self._matched = [False] * len(self.entries)
        self._index: Dict[Tuple[str, str, str], int] = {
            entry.key(): i for i, entry in enumerate(self.entries)
        }

    def covers(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered (marks the entry used)."""
        i = self._index.get(finding.key())
        if i is None:
            return False
        self._matched[i] = True
        return True

    def stale_entries(self) -> List[BaselineEntry]:
        return [
            entry
            for entry, used in zip(self.entries, self._matched)
            if not used
        ]


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} must be an object with version "
            f"{BASELINE_VERSION}"
        )
    entries = []
    for raw in doc.get("entries", []):
        missing = {"rule", "path", "snippet"} - set(raw)
        if missing:
            raise AnalysisError(
                f"baseline {path}: entry {raw!r} lacks {sorted(missing)}"
            )
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                snippet=raw["snippet"],
                reason=raw.get("reason", ""),
            )
        )
    return Baseline(entries)


def write_baseline(
    path: Union[str, Path], findings: Sequence[Finding]
) -> None:
    """Write ``findings`` as a fresh baseline (reasons left as TODOs)."""
    doc: Dict[str, Any] = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
                "reason": "TODO: justify or fix",
            }
            for f in sorted(findings, key=lambda f: f.key())
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
